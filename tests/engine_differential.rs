//! Differential oracle for the calendar event-queue engine (DESIGN.md §14).
//!
//! The simulator's binary-heap event queue was replaced by a two-level
//! calendar queue, and the hypervisor's application table by an arena.
//! Neither is allowed to be observable: a run's report, trace, attribution,
//! and telemetry are defined to be byte-identical regardless of the engine
//! backend. These suites replay randomized seeded workloads — every
//! scheduling policy, full and contended boards, sequential and parallel
//! cluster runs — on both backends (the retired heap stays constructible
//! behind the test-only `legacy-queue` feature) and byte-compare everything
//! observable. They are the retirement procedure for the legacy backend:
//! the day it is deleted, these tests shrink to self-comparisons and the
//! calendar queue becomes its own oracle.

use nimblock::cluster::{ClusterTestbed, DispatchPolicy};
use nimblock::core::{
    FcfsScheduler, NimblockScheduler, NoSharingScheduler, PremaScheduler, RoundRobinScheduler,
    Scheduler, Testbed,
};
use nimblock::fpga::DeviceConfig;
use nimblock::obs::Registry;
use nimblock::workload::{generate, EventSequence, Scenario};
use nimblock_check::{check, check_with, Config, Gen};

/// The five policies of the paper's evaluation (§5.1).
const POLICIES: [&str; 5] = ["nosharing", "fcfs", "rr", "prema", "nimblock"];

fn policy(name: &str) -> Box<dyn Scheduler + Send> {
    match name {
        "nosharing" => Box::new(NoSharingScheduler::new()),
        "fcfs" => Box::new(FcfsScheduler::new()),
        "rr" => Box::new(RoundRobinScheduler::new()),
        "prema" => Box::new(PremaScheduler::new()),
        "nimblock" => Box::new(NimblockScheduler::new()),
        other => panic!("unknown scheduler {other}"),
    }
}

/// A full board (the evaluated ZCU106 overlay) and a contended three-slot
/// cut of it, which forces queueing, preemption, and far richer event
/// interleavings per slot.
fn board(slots: usize) -> DeviceConfig {
    DeviceConfig::zcu106().with_slot_count(slots)
}

/// Everything observable about a single-board run: the report (records,
/// counters, attribution) and the full schedule trace, serialized.
///
/// The Prometheus page is deliberately compared on the cluster path only:
/// single-board registries include wall-clock decision-latency samples,
/// which no two runs share on *any* backend.
fn board_fingerprint(events: &EventSequence, slots: usize, name: &str, legacy: bool) -> String {
    let mut testbed = Testbed::new(policy(name)).with_device_config(board(slots));
    if legacy {
        testbed = testbed.with_legacy_queue();
    }
    let (report, trace) = testbed.run_traced(events);
    let mut out = nimblock_ser::to_string_pretty(&report);
    out.push('\n');
    out.push_str(&nimblock_ser::to_string(&trace));
    out
}

/// Everything observable about a cluster run, including the merged
/// Prometheus page (cluster shards are untimed, hence deterministic).
fn cluster_fingerprint(
    events: &EventSequence,
    boards: usize,
    threads: usize,
    name: &str,
    legacy: bool,
) -> String {
    let registry = Registry::new();
    let mut testbed = ClusterTestbed::new(boards, DispatchPolicy::FewestApps, || policy(name))
        .with_threads(threads)
        .with_tracing()
        .with_metrics(registry.clone());
    if legacy {
        testbed = testbed.with_legacy_queue();
    }
    let report = testbed.run(events);
    let mut out = nimblock_ser::to_string_pretty(report.merged());
    out.push_str(&format!("\nassignments: {:?}", report.assignments()));
    for per_board in report.per_board() {
        out.push('\n');
        out.push_str(&nimblock_ser::to_string(per_board));
    }
    for trace in report.per_board_traces() {
        out.push('\n');
        out.push_str(&nimblock_ser::to_string(trace));
    }
    out.push('\n');
    out.push_str(&registry.render_prometheus());
    out
}

#[test]
fn every_policy_matches_the_legacy_engine_on_fixed_seeds() {
    // A congested fixed-seed stimulus through all five policies on both the
    // full and the contended board — the smoke panel of the oracle.
    let events = generate(1217, 10, Scenario::Stress);
    for name in POLICIES {
        for slots in [10, 3] {
            let legacy = board_fingerprint(&events, slots, name, true);
            let calendar = board_fingerprint(&events, slots, name, false);
            assert_eq!(legacy, calendar, "{name} on {slots} slots diverged");
        }
    }
}

#[test]
fn random_workloads_match_the_legacy_engine() {
    // The main differential sweep: 256 randomized seeded workloads across
    // every policy, all three scenarios, and both board sizes.
    check("random_workloads_match_the_legacy_engine", |g: &mut Gen| {
        let seed = g.u64(0..=100_000);
        let events = generate(
            seed,
            g.usize(1..=8),
            *g.pick(&[Scenario::Standard, Scenario::Stress, Scenario::RealTime]),
        );
        let slots = *g.pick(&[10usize, 3]);
        let name = *g.pick(&POLICIES);
        let legacy = board_fingerprint(&events, slots, name, true);
        let calendar = board_fingerprint(&events, slots, name, false);
        nimblock_check::prop_assert!(
            legacy == calendar,
            "policy {name} on {slots} slots, seed {seed}: backends diverged"
        );
        Ok(())
    });
}

#[test]
fn cluster_runs_match_the_legacy_engine_for_one_two_and_eight_threads() {
    // The acceptance triple (threads ∈ {1, 2, 8}): for each thread count
    // the parallel cluster run must produce the same bytes on both
    // backends — including the merged Prometheus page.
    let events = generate(2023, 14, Scenario::Stress);
    for name in ["nimblock", "prema"] {
        for threads in [1, 2, 8] {
            let legacy = cluster_fingerprint(&events, 3, threads, name, true);
            let calendar = cluster_fingerprint(&events, 3, threads, name, false);
            assert_eq!(legacy, calendar, "{name} with {threads} threads diverged");
        }
    }
}

#[test]
fn random_cluster_runs_match_the_legacy_engine() {
    // Randomized cross-product of the cluster knobs; fewer cases than the
    // single-board sweep because each case runs two whole clusters.
    let config = Config::new().cases(48);
    check_with(config, "random_cluster_runs_match_the_legacy_engine", |g: &mut Gen| {
        let seed = g.u64(0..=100_000);
        let events = generate(seed, g.usize(1..=10), *g.pick(&[Scenario::Standard, Scenario::Stress]));
        let boards = g.usize(1..=4);
        let threads = *g.pick(&[1usize, 2, 8]);
        let name = *g.pick(&POLICIES);
        let legacy = cluster_fingerprint(&events, boards, threads, name, true);
        let calendar = cluster_fingerprint(&events, boards, threads, name, false);
        nimblock_check::prop_assert!(
            legacy == calendar,
            "policy {name}, {boards} boards, {threads} threads, seed {seed}: backends diverged"
        );
        Ok(())
    });
}
