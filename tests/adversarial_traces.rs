//! Adversarial fixture traces for the invariant verifier.
//!
//! Each fixture is a hand-built schedule that is legal in *every* respect
//! except one: it violates exactly one named invariant, and the test pins
//! the rule id the verifier must report. The traces are committed as JSON
//! under `tests/fixtures/` and verified from their *parsed* form, so the
//! suite also exercises the serde roundtrip an external trace would take
//! through `nimblock-cli analyze trace` / `nimblock-analyze trace`.
//!
//! Regenerate the committed fixtures with
//! `NIMBLOCK_REGEN_GOLDENS=1 cargo test --test adversarial_traces`.

use std::fs;
use std::path::Path;

use nimblock::analyze::invariants::{verify_trace, InvariantConfig, InvariantRule};
use nimblock::app::{Priority, TaskId};
use nimblock::core::{AppId, Trace, TraceEvent};
use nimblock::fpga::SlotId;
use nimblock::sim::SimTime;
use nimblock_ser::{from_str, to_string_pretty};

// ---------------------------------------------------------------------------
// Trace-building helpers (times in milliseconds).
// ---------------------------------------------------------------------------

fn ms(v: u64) -> SimTime {
    SimTime::from_millis(v)
}

fn arrival(app: u64, name: &str, batch: u32, priority: Priority, at: u64) -> TraceEvent {
    TraceEvent::Arrival {
        app: AppId::new(app),
        name: name.to_owned(),
        batch,
        priority,
        at: ms(at),
    }
}

fn reconfig(slot: u32, app: u64, task: u32, from: u64, to: u64) -> TraceEvent {
    TraceEvent::Reconfig {
        slot: SlotId::new(slot),
        app: AppId::new(app),
        task: TaskId::new(task),
        at: ms(from),
        until: ms(to),
    }
}

fn item(slot: u32, app: u64, task: u32, item: u32, from: u64, to: u64) -> TraceEvent {
    TraceEvent::Item {
        slot: SlotId::new(slot),
        app: AppId::new(app),
        task: TaskId::new(task),
        item,
        at: ms(from),
        until: ms(to),
    }
}

fn preempt(slot: u32, app: u64, task: u32, at: u64) -> TraceEvent {
    TraceEvent::Preempt {
        slot: SlotId::new(slot),
        app: AppId::new(app),
        task: TaskId::new(task),
        at: ms(at),
    }
}

fn retire(app: u64, at: u64) -> TraceEvent {
    TraceEvent::Retire { app: AppId::new(app), at: ms(at) }
}

fn trace_of(slot_count: usize, events: Vec<TraceEvent>) -> Trace {
    let mut trace = Trace::with_slots(slot_count);
    for event in events {
        trace.record(event);
    }
    trace
}

// ---------------------------------------------------------------------------
// Fixture plumbing: write-on-regen, then verify the PARSED committed JSON.
// ---------------------------------------------------------------------------

/// Serializes `trace`, syncs it with the committed fixture under
/// `tests/fixtures/`, and returns the trace re-parsed from the on-disk JSON.
fn fixture(name: &str, trace: &Trace) -> Trace {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures");
    let path = dir.join(format!("{name}.json"));
    let fresh = to_string_pretty(trace);
    if std::env::var_os("NIMBLOCK_REGEN_GOLDENS").is_some() || !path.exists() {
        fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
        fs::write(&path, &fresh).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
    let on_disk = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    assert_eq!(
        on_disk, fresh,
        "committed fixture {name}.json drifted from the in-code trace; \
         rerun with NIMBLOCK_REGEN_GOLDENS=1 if the change is intentional"
    );
    from_str::<Trace>(&on_disk)
        .unwrap_or_else(|e| panic!("fixture {name}.json does not parse: {e}"))
}

/// Asserts the trace violates `rule` — and *only* `rule` — under the full
/// default configuration (Nimblock policy rules on).
fn assert_fires_exactly(name: &str, trace: &Trace, rule: InvariantRule) {
    let parsed = fixture(name, trace);
    let report = verify_trace(&parsed, &InvariantConfig::default());
    assert!(
        !report.is_clean(),
        "{name}: expected a {} violation, got a clean report",
        rule.id()
    );
    let fired = report.rules_fired();
    assert!(
        fired.contains(&rule),
        "{name}: expected rule {} to fire, fired: {:?}\n{report}",
        rule.id(),
        fired.iter().map(|r| r.id()).collect::<Vec<_>>()
    );
    assert_eq!(
        fired.len(),
        1,
        "{name}: expected ONLY {} to fire, fired: {:?}\n{report}",
        rule.id(),
        fired.iter().map(|r| r.id()).collect::<Vec<_>>()
    );
    assert!(!report.of_rule(rule).is_empty());
}

// ---------------------------------------------------------------------------
// The adversarial fixtures.
// ---------------------------------------------------------------------------

/// Two reconfigurations stream through the configuration access port at
/// once: slot 1 starts loading at t=40 while slot 0's load runs to t=80.
/// Everything downstream is a legal LeNet batch-1 run.
#[test]
fn overlapping_cap_windows_fire_cap_exclusive() {
    let trace = trace_of(
        3,
        vec![
            arrival(0, "LeNet", 1, Priority::Medium, 0),
            reconfig(0, 0, 0, 0, 80),
            reconfig(1, 0, 1, 40, 120), // CAP still busy until t=80.
            item(0, 0, 0, 0, 80, 140),
            item(1, 0, 1, 0, 140, 180),
            reconfig(2, 0, 2, 180, 260),
            item(2, 0, 2, 0, 260, 280),
            retire(0, 280),
        ],
    );
    assert_fires_exactly("cap_overlap", &trace, InvariantRule::CapExclusive);
}

/// Slot 0 is double-booked: a reconfiguration for task 1 starts at t=100
/// while task 0's item still executes until t=140 (and no preemption was
/// traced that would have vacated the slot).
#[test]
fn double_booked_slot_fires_slot_overlap() {
    let trace = trace_of(
        2,
        vec![
            arrival(0, "LeNet", 1, Priority::Medium, 0),
            reconfig(0, 0, 0, 0, 80),
            item(0, 0, 0, 0, 80, 140),
            reconfig(0, 0, 1, 100, 180), // overlaps the item span on slot 0.
            item(0, 0, 1, 0, 180, 220),
            reconfig(1, 0, 2, 220, 300),
            item(1, 0, 2, 0, 300, 320),
            retire(0, 320),
        ],
    );
    assert_fires_exactly("double_booked_slot", &trace, InvariantRule::SlotOverlap);
}

/// A preemption strikes in the middle of an executing batch item (t=100,
/// inside the [80, 140) span) on an overlay without checkpoint support.
/// The aborted item is re-run after the slot is reloaded, so token
/// conservation still holds — only the preemption boundary rule is broken.
#[test]
fn mid_item_preemption_fires_preempt_boundary() {
    let trace = trace_of(
        3,
        vec![
            arrival(0, "LeNet", 1, Priority::Medium, 0),
            reconfig(0, 0, 0, 0, 80),
            item(0, 0, 0, 0, 80, 140), // truncated at t=100 by the preemption.
            preempt(0, 0, 0, 100),
            reconfig(0, 0, 0, 120, 200), // reload and...
            item(0, 0, 0, 0, 200, 260),  // ...re-run the aborted item.
            reconfig(1, 0, 1, 260, 340),
            item(1, 0, 1, 0, 340, 380),
            reconfig(2, 0, 2, 380, 460),
            item(2, 0, 2, 0, 460, 480),
            retire(0, 480),
        ],
    );
    assert_fires_exactly("mid_item_preempt", &trace, InvariantRule::PreemptBoundary);
}

/// A batch-2 LeNet run retires with task 2 having processed only one of
/// its two batch items: a token leaked. Every executed span is otherwise
/// legal.
#[test]
fn missing_batch_item_fires_token_conservation() {
    let trace = trace_of(
        3,
        vec![
            arrival(0, "LeNet", 2, Priority::Medium, 0),
            reconfig(0, 0, 0, 0, 80),
            reconfig(1, 0, 1, 80, 160),
            item(0, 0, 0, 0, 80, 140),
            item(0, 0, 0, 1, 140, 200),
            reconfig(2, 0, 2, 160, 240),
            item(1, 0, 1, 0, 200, 240),
            item(1, 0, 1, 1, 240, 280),
            item(2, 0, 2, 0, 280, 300),
            // item 1 of task 2 never runs.
            retire(0, 300),
        ],
    );
    assert_fires_exactly("token_leak", &trace, InvariantRule::TokenConservation);
}

/// A high-priority application is evicted from its *only* slot by a
/// low-priority preemptor while the board has room for every live
/// application (2 apps, 2 slots) — the allocator's priority floor (paper
/// §4.1) forbids this. The preemption itself lands on an item boundary
/// mid-batch, so no mechanism rule fires; both applications then run to a
/// fully legal completion.
#[test]
fn low_priority_eviction_fires_preempt_priority() {
    let trace = trace_of(
        2,
        vec![
            arrival(0, "LeNet", 2, Priority::High, 0),
            arrival(1, "LeNet", 1, Priority::Low, 0),
            reconfig(0, 0, 0, 0, 80),
            item(0, 0, 0, 0, 80, 140), // 1 of 2 batch items done: mid-batch.
            preempt(0, 0, 0, 140),     // item boundary, so mechanically legal...
            reconfig(0, 1, 0, 140, 220), // ...but the preemptor is Low priority.
            item(0, 1, 0, 0, 220, 280),
            reconfig(1, 1, 1, 280, 360),
            item(1, 1, 1, 0, 360, 400),
            reconfig(0, 1, 2, 400, 480),
            item(0, 1, 2, 0, 480, 500),
            retire(1, 500),
            reconfig(0, 0, 0, 500, 580), // the victim resumes where it left off.
            item(0, 0, 0, 1, 580, 640),
            reconfig(1, 0, 1, 640, 720),
            item(1, 0, 1, 0, 720, 760),
            item(1, 0, 1, 1, 760, 800),
            reconfig(0, 0, 2, 800, 880),
            item(0, 0, 2, 0, 880, 900),
            item(0, 0, 2, 1, 900, 920),
            retire(0, 920),
        ],
    );
    assert_fires_exactly("priority_inversion", &trace, InvariantRule::PreemptPriority);
}

/// Sanity check on the harness itself: the priority-inversion timeline with
/// the priorities swapped back to legal (victim not High) verifies clean —
/// proving the fixtures isolate exactly one bad decision each.
#[test]
fn the_same_schedule_with_legal_priorities_is_clean() {
    let trace = trace_of(
        2,
        vec![
            arrival(0, "LeNet", 2, Priority::Low, 0),
            arrival(1, "LeNet", 1, Priority::High, 0),
            reconfig(0, 0, 0, 0, 80),
            item(0, 0, 0, 0, 80, 140),
            preempt(0, 0, 0, 140),
            reconfig(0, 1, 0, 140, 220),
            item(0, 1, 0, 0, 220, 280),
            reconfig(1, 1, 1, 280, 360),
            item(1, 1, 1, 0, 360, 400),
            reconfig(0, 1, 2, 400, 480),
            item(0, 1, 2, 0, 480, 500),
            retire(1, 500),
            reconfig(0, 0, 0, 500, 580),
            item(0, 0, 0, 1, 580, 640),
            reconfig(1, 0, 1, 640, 720),
            item(1, 0, 1, 0, 720, 760),
            item(1, 0, 1, 1, 760, 800),
            reconfig(0, 0, 2, 800, 880),
            item(0, 0, 2, 0, 880, 900),
            item(0, 0, 2, 1, 900, 920),
            retire(0, 920),
        ],
    );
    let report = verify_trace(&trace, &InvariantConfig::default());
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.apps_seen, 2);
}

/// The mechanism-only configuration (for traces of non-Nimblock preempting
/// policies) must still catch hardware violations while staying silent on
/// the policy rules the priority-inversion fixture trips.
#[test]
fn mechanism_only_ignores_policy_rules_but_keeps_hardware_rules() {
    let inversion = fixture_path("priority_inversion");
    if let Ok(text) = fs::read_to_string(&inversion) {
        let trace: Trace = from_str(&text).expect("committed fixture parses");
        let report = verify_trace(&trace, &InvariantConfig::mechanism_only());
        assert!(
            report.is_clean(),
            "mechanism-only must not fire policy rules: {report}"
        );
    }
    let hw = fixture_path("cap_overlap");
    if let Ok(text) = fs::read_to_string(&hw) {
        let trace: Trace = from_str(&text).expect("committed fixture parses");
        let report = verify_trace(&trace, &InvariantConfig::mechanism_only());
        assert!(report.rules_fired().contains(&InvariantRule::CapExclusive));
    }
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(format!("{name}.json"))
}

// ---------------------------------------------------------------------------
// Calendar-queue rollover tie (microsecond-precision fixture).
// ---------------------------------------------------------------------------

fn us(v: u64) -> SimTime {
    SimTime::from_micros(v)
}

fn reconfig_us(slot: u32, app: u64, task: u32, from: u64, to: u64) -> TraceEvent {
    TraceEvent::Reconfig {
        slot: SlotId::new(slot),
        app: AppId::new(app),
        task: TaskId::new(task),
        at: us(from),
        until: us(to),
    }
}

fn item_us(slot: u32, app: u64, task: u32, item: u32, from: u64, to: u64) -> TraceEvent {
    TraceEvent::Item {
        slot: SlotId::new(slot),
        app: AppId::new(app),
        task: TaskId::new(task),
        item,
        at: us(from),
        until: us(to),
    }
}

/// Builds the rollover timeline: application 0's last item ends — and its
/// retirement fires — at exactly `tie` µs, where application 1's
/// reconfiguration of the *same slot* begins in the same instant. With
/// half-open spans the schedule is legal iff the retirement orders before
/// the reconfiguration; `skew` pulls the reconfiguration earlier to model
/// the misordering a broken tie-break would produce.
fn rollover_trace(tie: u64, skew: u64) -> Trace {
    const RECONFIG: u64 = 80_000; // the ZCU106's 80 ms, in µs
    let grab = tie - skew;
    trace_of(
        2,
        vec![
            TraceEvent::Arrival {
                app: AppId::new(0),
                name: "LeNet".to_owned(),
                batch: 1,
                priority: Priority::Medium,
                at: us(0),
            },
            TraceEvent::Arrival {
                app: AppId::new(1),
                name: "LeNet".to_owned(),
                batch: 1,
                priority: Priority::Medium,
                at: us(100_000),
            },
            // Application 0: a legal three-task chain whose final item is
            // stretched to end exactly on the calendar rollover boundary.
            reconfig_us(0, 0, 0, 0, 80_000),
            item_us(0, 0, 0, 0, 80_000, 200_000),
            reconfig_us(1, 0, 1, 80_000, 160_000),
            item_us(1, 0, 1, 0, 200_000, 300_000),
            reconfig_us(0, 0, 2, 200_000, 280_000),
            item_us(0, 0, 2, 0, 300_000, tie),
            TraceEvent::Retire { app: AppId::new(0), at: us(tie) },
            // Application 1 claims the just-vacated slot 0 in the same
            // microsecond (or `skew` µs too early).
            reconfig_us(0, 1, 0, grab, grab + RECONFIG),
            item_us(0, 1, 0, 0, 604_288, 700_000),
            reconfig_us(1, 1, 1, 604_288, 684_288),
            item_us(1, 1, 1, 0, 700_000, 800_000),
            reconfig_us(0, 1, 2, 700_000, 780_000),
            item_us(0, 1, 2, 0, 800_000, 900_000),
            TraceEvent::Retire { app: AppId::new(1), at: us(900_000) },
        ],
    )
}

/// Two events share a timestamp exactly at the calendar queue's rollover
/// boundary: application 0 retires — freeing slot 0 — at t = 524,288 µs,
/// the first tick past the near window (a bucket boundary *and* the full
/// window-span rollover), and application 1's reconfiguration of that slot
/// starts in the same microsecond. The engine must pop the tie in push
/// (FIFO) order for the schedule to be legal; all eleven invariant rules
/// agree the committed trace is clean.
#[test]
fn same_timestamp_events_across_the_rollover_boundary_stay_ordered() {
    let tie = nimblock::sim::EventQueue::<u64>::CALENDAR_SPAN_MICROS;
    assert_eq!(tie, 524_288, "fixture timeline is written against this span");
    assert_eq!(tie % nimblock::sim::EventQueue::<u64>::CALENDAR_BUCKET_MICROS, 0);
    let parsed = fixture("rollover_tie", &rollover_trace(tie, 0));
    assert_eq!(InvariantRule::ALL.len(), 11);
    let report = verify_trace(&parsed, &InvariantConfig::default());
    assert!(report.is_clean(), "rollover tie misordered: {report}");
    assert_eq!(report.apps_seen, 2);
}

/// The same timeline with the tie broken the wrong way by a single
/// microsecond double-books slot 0 — proving the clean verdict above
/// certifies ordering, not verifier leniency.
#[test]
fn a_misordered_rollover_tie_is_caught() {
    let tie = nimblock::sim::EventQueue::<u64>::CALENDAR_SPAN_MICROS;
    let report = verify_trace(&rollover_trace(tie, 1), &InvariantConfig::default());
    assert!(
        report.rules_fired().contains(&InvariantRule::SlotOverlap),
        "expected slot-overlap, got: {report}"
    );
}
