//! Golden-file tests for the telemetry exports: the Prometheus exposition
//! text of an instrumented run and its Chrome trace-event JSON, plus
//! property tests over the histogram bucketing.
//!
//! The goldens share the stimulus of `golden_roundtrip.rs` (seed 7,
//! 3 events, batch 2, 100 ms spacing) so one deterministic run anchors
//! every wire format. Regenerate after an *intentional* format change:
//!
//! ```text
//! NIMBLOCK_REGEN_GOLDENS=1 cargo test -q --test golden_telemetry
//! ```
//!
//! One series is excluded from the Prometheus golden:
//! `hv_decision_latency_nanos` measures *wall-clock* scheduler decision
//! time and therefore differs between runs by design. The exclusion is
//! sample-lines-only; its HELP/TYPE header stays under golden control.

use std::path::PathBuf;

use nimblock::core::{NimblockScheduler, Testbed, Trace};
use nimblock::metrics::Report;
use nimblock::obs::Registry;
use nimblock::sim::SimDuration;
use nimblock::workload::fixed_batch_sequence;
use nimblock_check::{check, prop_assert, prop_assert_eq};

/// The deterministic instrumented run behind both goldens.
fn run() -> (Registry, Report, Trace) {
    let events = fixed_batch_sequence(7, 3, 2, SimDuration::from_millis(100));
    let registry = Registry::new();
    let (report, trace) = Testbed::new(NimblockScheduler::default())
        .with_metrics(registry.clone())
        .run_traced(&events);
    (registry, report, trace)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join(name)
}

/// Reads the golden, or rewrites it when `NIMBLOCK_REGEN_GOLDENS` is set.
fn golden(name: &str, fresh: &str) -> String {
    let path = golden_path(name);
    if std::env::var("NIMBLOCK_REGEN_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fresh).unwrap();
    }
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with NIMBLOCK_REGEN_GOLDENS=1",
            path.display()
        )
    })
}

/// Drops the sample lines of the wall-clock decision-latency series (they
/// legitimately differ between runs); everything else is deterministic.
fn deterministic_lines(text: &str) -> String {
    let mut out: String = text
        .lines()
        .filter(|line| line.starts_with('#') || !line.contains("hv_decision_latency_nanos"))
        .collect::<Vec<_>>()
        .join("\n");
    out.push('\n');
    out
}

#[test]
fn prometheus_exposition_matches_golden() {
    let (registry, report, _) = run();
    let full = registry.render_prometheus();
    // The full text (wall-clock series included) must always validate.
    nimblock::obs::validate_prometheus(&full).expect("exposition text validates");

    let fresh = deterministic_lines(&full);
    let golden = golden("metrics.prom", &fresh);
    assert_eq!(
        fresh, golden,
        "Prometheus exposition drifted from tests/goldens/metrics.prom"
    );
    // The text agrees with the report's own counters.
    assert!(
        golden.contains(&format!("hv_arrivals_total {}", report.counters().arrivals)),
        "{golden}"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let (_, _, trace) = run();
    let fresh = trace.to_chrome();
    let golden = golden("trace.chrome.json", &fresh);
    assert_eq!(
        fresh, golden,
        "Chrome trace export drifted from tests/goldens/trace.chrome.json"
    );
    // The golden must stay loadable: envelope + per-event required fields.
    nimblock::obs::validate_chrome_trace(&golden).expect("golden chrome trace validates");
    // And parse as plain JSON with the trace-event envelope.
    let value = nimblock_ser::parse(&golden).expect("golden parses as JSON");
    assert!(value.get("traceEvents").is_some());
}

#[test]
fn histogram_bucket_counts_sum_to_total_observations() {
    check("histogram_bucket_counts_sum_to_total_observations", |g| {
        let h = nimblock::obs::Histogram::detached();
        // Bounded so the checked `sum` below cannot overflow u64.
        let values = g.vec(0..=200, |g| g.u64(0..=1 << 40));
        let mut sum = 0u64;
        for &v in &values {
            h.observe(v);
            sum += v;
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), sum);
        // Non-cumulative buckets partition the observations.
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
        // The cumulative view is monotone and ends at the total count.
        let cumulative = h.cumulative();
        for pair in cumulative.windows(2) {
            prop_assert!(pair[0].1 <= pair[1].1);
        }
        prop_assert_eq!(cumulative.last().unwrap().1, values.len() as u64);
        prop_assert!(cumulative.last().unwrap().0.is_none(), "last bucket is +Inf");
        Ok(())
    });
}

#[test]
fn every_observation_lands_at_or_below_its_bucket_bound() {
    check("every_observation_lands_at_or_below_its_bucket_bound", |g| {
        let v = g.u64(0..=1 << 50);
        let h = nimblock::obs::Histogram::detached();
        h.observe(v);
        // The first bucket whose cumulative count reaches 1 must have an
        // upper bound >= v (or be the +Inf overflow bucket).
        let (bound, _) = *h
            .cumulative()
            .iter()
            .find(|&&(_, c)| c == 1)
            .expect("one observation recorded");
        match bound {
            Some(bound) => {
                prop_assert!(v <= bound, "v={v} bound={bound}");
                // And it is the *tightest* power-of-two bound.
                prop_assert!(bound == 1 || v > bound / 2, "v={v} bound={bound}");
            }
            None => prop_assert!(v > 1 << 47, "only huge values overflow, v={v}"),
        }
        Ok(())
    });
}
