//! Shape assertions against the paper's headline results (scaled-down
//! stimuli; the full-scale numbers come from the `nimblock-bench`
//! binaries and are recorded in EXPERIMENTS.md).

use nimblock::app::Priority;
use nimblock::core::{
    FcfsScheduler, NimblockConfig, NimblockScheduler, NoSharingScheduler, PremaScheduler,
    RoundRobinScheduler, Testbed,
};
use nimblock::metrics::{harmonic_speedup, violation_rate, Report};
use nimblock::sim::SimDuration;
use nimblock::workload::{deadline, fixed_batch_sequence, generate_suite, Scenario};

fn pooled_harmonic(bases: &[Report], reports: &[Report]) -> f64 {
    let mut total_events = 0.0;
    let mut sum_inverse = 0.0;
    for (base, report) in bases.iter().zip(reports) {
        let h = harmonic_speedup(base, report);
        let n = report.records().len() as f64;
        total_events += n;
        sum_inverse += n / h;
    }
    total_events / sum_inverse
}

#[test]
fn figure5_shape_nimblock_wins_the_standard_test() {
    let suite = generate_suite(2023, 3, 20, Scenario::Standard);
    let bases: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(NoSharingScheduler::new()).run(s))
        .collect();
    let nimblock: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(NimblockScheduler::default()).run(s))
        .collect();
    let prema: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(PremaScheduler::new()).run(s))
        .collect();
    let fcfs: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(FcfsScheduler::new()).run(s))
        .collect();
    let rr: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(RoundRobinScheduler::new()).run(s))
        .collect();

    let nb = pooled_harmonic(&bases, &nimblock);
    let pr = pooled_harmonic(&bases, &prema);
    let fc = pooled_harmonic(&bases, &fcfs);
    let r = pooled_harmonic(&bases, &rr);
    // Paper Figure 5 (standard): Nimblock ~4.7x, best of all; PREMA next.
    assert!(nb > 2.0, "Nimblock reduction {nb} should be substantial");
    assert!(nb > pr, "Nimblock {nb} must beat PREMA {pr}");
    assert!(nb > fc, "Nimblock {nb} must beat FCFS {fc}");
    assert!(nb > r, "Nimblock {nb} must beat RR {r}");
}

#[test]
fn figure7_shape_nimblock_has_fewest_tight_deadline_violations() {
    let reconfig = SimDuration::from_millis(80);
    let suite = generate_suite(2023, 2, 20, Scenario::Stress);
    let tight = |report: &Report, seq: &nimblock::workload::EventSequence| {
        violation_rate(report, Some(Priority::High), |i| {
            Some(deadline::deadline_for(&seq.events()[i], 1.0, reconfig))
        })
    };
    let mut nimblock_rate = 0.0;
    let mut others_min: f64 = 1.0;
    for seq in &suite {
        nimblock_rate += tight(&Testbed::new(NimblockScheduler::default()).run(seq), seq);
        for rate in [
            tight(&Testbed::new(PremaScheduler::new()).run(seq), seq),
            tight(&Testbed::new(FcfsScheduler::new()).run(seq), seq),
            tight(&Testbed::new(RoundRobinScheduler::new()).run(seq), seq),
        ] {
            others_min = others_min.min(rate);
        }
    }
    nimblock_rate /= suite.len() as f64;
    // Paper: ~44-49% fewer violations than every other algorithm at the
    // tightest deadline.
    assert!(
        nimblock_rate < others_min,
        "Nimblock tight-deadline rate {nimblock_rate} must undercut the best other {others_min}"
    );
}

#[test]
fn figure9_shape_ablations_cost_performance() {
    let seq = fixed_batch_sequence(7, 20, 10, SimDuration::from_millis(175));
    let full = Testbed::new(NimblockScheduler::default()).run(&seq);
    let mean_ratio = |variant: &Report| {
        let mut ratios = Vec::new();
        for record in variant.records() {
            let base = full.record_for_event(record.event_index).unwrap();
            ratios.push(record.response_time().as_secs_f64() / base.response_time().as_secs_f64());
        }
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };
    let no_preempt = mean_ratio(
        &Testbed::new(NimblockScheduler::with_config(NimblockConfig::no_preemption())).run(&seq),
    );
    let no_pipe = mean_ratio(
        &Testbed::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining())).run(&seq),
    );
    let neither = mean_ratio(
        &Testbed::new(NimblockScheduler::with_config(
            NimblockConfig::no_preemption_no_pipelining(),
        ))
        .run(&seq),
    );
    // Paper Figure 9: removing preemption costs 1.07-1.14x; removing
    // pipelining ~1.2x; removing both overlaps removing pipelining.
    assert!(no_preempt > 1.02, "preemption should matter, got {no_preempt}");
    assert!(no_pipe > 1.1, "pipelining should matter, got {no_pipe}");
    assert!(
        (neither - no_pipe).abs() / no_pipe < 0.10,
        "NoPreemptNoPipe ({neither}) should track NoPipe ({no_pipe})"
    );
}

#[test]
fn benchmark_characteristics_nimblock_best_for_long_apps() {
    // Table 3 shape: Nimblock beats PREMA and RR on the long-running
    // OpticalFlow benchmark.
    let suite: Vec<_> = (0..2)
        .map(|i| fixed_batch_sequence(2023 + i, 20, 5, SimDuration::from_millis(500)))
        .collect();
    let mean_of = |reports: &[Report]| {
        let samples: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.records().iter())
            .filter(|r| r.app_name == "OpticalFlow")
            .map(|r| r.response_time().as_secs_f64())
            .collect();
        samples.iter().sum::<f64>() / samples.len() as f64
    };
    let nimblock: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(NimblockScheduler::default()).run(s))
        .collect();
    let prema: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(PremaScheduler::new()).run(s))
        .collect();
    let rr: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(RoundRobinScheduler::new()).run(s))
        .collect();
    assert!(mean_of(&nimblock) < mean_of(&prema));
    assert!(mean_of(&nimblock) < mean_of(&rr));
}
