//! Failure injection: exhausted buffer memory, degraded configuration
//! ports, tiny devices, and livelock detection.

use nimblock::app::{benchmarks, Priority};
use nimblock::core::{Hypervisor, HvEvent, NimblockScheduler, NoSharingScheduler, Testbed};
use nimblock::fpga::{Device, DeviceConfig};
use nimblock::sim::{SimDuration, SimTime, Simulation};
use nimblock::workload::{generate, ArrivalEvent, EventSequence, Scenario};

fn three_apps() -> EventSequence {
    EventSequence::new(vec![
        ArrivalEvent::new(benchmarks::lenet(), 3, Priority::High, SimTime::ZERO),
        ArrivalEvent::new(benchmarks::image_compression(), 2, Priority::Low, SimTime::from_millis(100)),
        ArrivalEvent::new(benchmarks::rendering_3d(), 2, Priority::Medium, SimTime::from_millis(200)),
    ])
}

#[test]
fn tight_memory_stalls_launches_but_completes() {
    // Room for only two 1 MiB task buffers at a time: launches must stall
    // and retry as buffers are relinquished, but everything retires.
    let mut config = DeviceConfig::zcu106();
    config.memory_bytes = 2 << 20;
    let device = Device::new(config);
    let events = three_apps();
    let hypervisor = Hypervisor::new(
        device,
        NimblockScheduler::default(),
        events.events().to_vec(),
    );
    let mut sim = Simulation::new(hypervisor);
    for (index, event) in events.iter().enumerate() {
        sim.queue_mut().push(event.arrival(), HvEvent::Arrival(index));
    }
    sim.queue_mut()
        .push(SimTime::ZERO + SimDuration::from_millis(400), HvEvent::Tick);
    sim.run();
    assert!(sim.handler().finished(), "apps must retire despite stalls");
    assert!(
        sim.handler().alloc_stalls() > 0,
        "a 2 MiB pool must cause allocation stalls"
    );
    assert_eq!(sim.handler().device().memory().in_use(), 0);
}

#[test]
fn zero_memory_never_launches_and_the_horizon_catches_it() {
    let mut config = DeviceConfig::zcu106();
    config.memory_bytes = 0;
    let result = std::panic::catch_unwind(|| {
        Testbed::new(NimblockScheduler::default())
            .with_device_config(config)
            .with_horizon(SimTime::from_secs(100))
            .run(&three_apps())
    });
    assert!(result.is_err(), "livelock horizon must fire");
}

#[test]
fn slow_configuration_port_still_completes() {
    // A CAP ten times slower (800 ms per slot) changes latencies, not
    // correctness.
    let mut config = DeviceConfig::zcu106();
    config.cap_bandwidth_bytes_per_sec /= 10;
    let events = three_apps();
    let fast = Testbed::new(NimblockScheduler::default()).run(&events);
    let slow = Testbed::new(NimblockScheduler::default())
        .with_device_config(config)
        .run(&events);
    assert_eq!(slow.records().len(), 3);
    for (s, f) in slow.records().iter().zip(fast.records()) {
        assert!(
            s.response_time() >= f.response_time(),
            "slower reconfiguration cannot speed {} up",
            s.app_name
        );
    }
}

#[test]
fn sd_card_loading_adds_first_use_latency_only() {
    let mut config = DeviceConfig::zcu106();
    config.sd_bandwidth_bytes_per_sec = 100 << 20; // 100 MiB/s SD card
    let events = three_apps();
    let preloaded = Testbed::new(NimblockScheduler::default()).run(&events);
    let sd = Testbed::new(NimblockScheduler::default())
        .with_device_config(config)
        .run(&events);
    assert_eq!(sd.records().len(), 3);
    // Loading 32 MiB bitstreams at 100 MiB/s adds latency overall.
    assert!(sd.finished_at() >= preloaded.finished_at());
}

#[test]
fn single_slot_device_serializes_everything_but_works() {
    let config = DeviceConfig::zcu106().with_slot_count(1);
    let events = generate(9, 5, Scenario::Standard);
    for scheduler in [
        "nosharing",
        "nimblock",
    ] {
        let report = match scheduler {
            "nosharing" => Testbed::new(Box::new(NoSharingScheduler::new()) as Box<dyn nimblock::core::Scheduler>)
                .with_device_config(config.clone())
                .run(&events),
            _ => Testbed::new(Box::new(NimblockScheduler::default()) as Box<dyn nimblock::core::Scheduler>)
                .with_device_config(config.clone())
                .run(&events),
        };
        assert_eq!(report.records().len(), 5, "{scheduler}");
    }
}

#[test]
fn two_slot_device_allows_minimal_pipelining() {
    let config = DeviceConfig::zcu106().with_slot_count(2);
    let events = EventSequence::new(vec![ArrivalEvent::new(
        benchmarks::optical_flow(),
        10,
        Priority::High,
        SimTime::ZERO,
    )]);
    let one = Testbed::new(NimblockScheduler::default())
        .with_device_config(DeviceConfig::zcu106().with_slot_count(1))
        .run(&events);
    let two = Testbed::new(NimblockScheduler::default())
        .with_device_config(config)
        .run(&events);
    assert!(
        two.records()[0].response_time() < one.records()[0].response_time(),
        "a second slot must help a batched chain"
    );
}

#[test]
fn ring_noc_speeds_up_fine_grained_pipelines() {
    use nimblock::fpga::Interconnect;
    let events = EventSequence::new(vec![ArrivalEvent::new(
        benchmarks::image_compression(),
        30,
        Priority::Medium,
        SimTime::ZERO,
    )]);
    let slow_ps = Testbed::new(NimblockScheduler::default())
        .with_interconnect(Interconnect::ThroughPs {
            per_transfer: SimDuration::from_millis(20),
        })
        .run(&events);
    let noc = Testbed::new(NimblockScheduler::default())
        .with_interconnect(Interconnect::RingNoc {
            base: SimDuration::from_micros(50),
            per_hop: SimDuration::from_micros(10),
            ps_transfer: SimDuration::from_millis(20),
        })
        .run(&events);
    assert!(
        noc.records()[0].response_time() < slow_ps.records()[0].response_time(),
        "a NoC must beat staging every inter-stage transfer through a slow PS"
    );
}

#[test]
fn interconnect_default_matches_legacy_per_item_overhead() {
    // The ThroughPs default must reproduce the flat 1 ms per-item model the
    // calibration was built on.
    let events = three_apps();
    let default_run = Testbed::new(NimblockScheduler::default()).run(&events);
    let explicit = Testbed::new(NimblockScheduler::default())
        .with_per_item_overhead(SimDuration::from_millis(1))
        .run(&events);
    assert_eq!(default_run.records(), explicit.records());
}
