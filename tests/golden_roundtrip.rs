//! Golden-file round-trip tests for the JSON layer.
//!
//! Each golden under `tests/goldens/` is the pretty-printed encoding of a
//! deterministic testbed run. The tests assert, for reports and traces:
//!
//! 1. **encode**: the freshly produced value encodes byte-identically to
//!    the golden (catches wire-format drift: field order, number
//!    formatting, enum tagging);
//! 2. **decode**: the golden decodes to the same in-memory value;
//! 3. **re-encode**: decode(golden) re-encodes byte-identically (the
//!    encode→decode→encode fixed point).
//!
//! To regenerate after an *intentional* format or generator change:
//!
//! ```text
//! NIMBLOCK_REGEN_GOLDENS=1 cargo test -q --test golden_roundtrip
//! ```

use std::path::PathBuf;

use nimblock::core::{NimblockScheduler, Testbed, Trace};
use nimblock::metrics::Report;
use nimblock::sim::SimDuration;
use nimblock::workload::fixed_batch_sequence;

/// The deterministic stimulus behind every golden: seed 7, 3 events,
/// batch 2, 100 ms spacing.
fn run() -> (Report, Trace) {
    let events = fixed_batch_sequence(7, 3, 2, SimDuration::from_millis(100));
    Testbed::new(NimblockScheduler::default()).run_traced(&events)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join(name)
}

/// Reads the golden, or rewrites it when `NIMBLOCK_REGEN_GOLDENS` is set.
fn golden(name: &str, fresh: &str) -> String {
    let path = golden_path(name);
    if std::env::var("NIMBLOCK_REGEN_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fresh).unwrap();
    }
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {} ({e}); regenerate with NIMBLOCK_REGEN_GOLDENS=1", path.display()))
}

#[test]
fn report_matches_golden_and_roundtrips() {
    let (report, _) = run();
    let fresh = nimblock_ser::to_string_pretty(&report);
    let golden = golden("report.json", &fresh);
    assert_eq!(fresh, golden, "report encoding drifted from tests/goldens/report.json");

    let decoded: Report = nimblock_ser::from_str(&golden).expect("golden report parses");
    assert_eq!(decoded, report, "golden decodes to a different report");
    assert_eq!(
        nimblock_ser::to_string_pretty(&decoded),
        golden,
        "re-encoding the decoded report is not byte-stable"
    );
}

#[test]
fn trace_matches_golden_and_roundtrips() {
    let (_, trace) = run();
    let fresh = nimblock_ser::to_string_pretty(&trace);
    let golden = golden("trace.json", &fresh);
    assert_eq!(fresh, golden, "trace encoding drifted from tests/goldens/trace.json");

    let decoded: Trace = nimblock_ser::from_str(&golden).expect("golden trace parses");
    assert_eq!(decoded, trace, "golden decodes to a different trace");
    assert_eq!(
        nimblock_ser::to_string_pretty(&decoded),
        golden,
        "re-encoding the decoded trace is not byte-stable"
    );
}

#[test]
fn stimulus_matches_golden_and_roundtrips() {
    let events = fixed_batch_sequence(7, 3, 2, SimDuration::from_millis(100));
    let fresh = nimblock_ser::to_string_pretty(&events);
    let golden = golden("stimulus.json", &fresh);
    assert_eq!(fresh, golden, "stimulus encoding drifted from tests/goldens/stimulus.json");

    let decoded: nimblock::workload::EventSequence =
        nimblock_ser::from_str(&golden).expect("golden stimulus parses");
    assert_eq!(decoded, events);
    assert_eq!(nimblock_ser::to_string_pretty(&decoded), golden);
}

#[test]
fn compact_and_pretty_encodings_agree() {
    // The two writers must describe the same value: parsing either form
    // yields the same `Json`.
    let (report, trace) = run();
    let compact = nimblock_ser::parse(&nimblock_ser::to_string(&report)).unwrap();
    let pretty = nimblock_ser::parse(&nimblock_ser::to_string_pretty(&report)).unwrap();
    assert_eq!(compact, pretty);
    let compact = nimblock_ser::parse(&nimblock_ser::to_string(&trace)).unwrap();
    let pretty = nimblock_ser::parse(&nimblock_ser::to_string_pretty(&trace)).unwrap();
    assert_eq!(compact, pretty);
}

#[test]
fn csv_export_is_stable_for_the_golden_report() {
    // The CSV exporter has no parser, so its guard is shape-based: one
    // data line per record, a fixed header, and the same app names as the
    // JSON golden.
    let (report, _) = run();
    let csv = nimblock::metrics::report_to_csv(&report);
    let mut lines = csv.lines();
    let header = lines.next().expect("csv has a header");
    assert_eq!(
        header,
        "event,app,batch,priority,arrival_s,response_s,wait_s,execution_s,run_s,reconfig_s,preemptions",
        "csv header drifted"
    );
    let data: Vec<&str> = lines.collect();
    assert_eq!(data.len(), report.records().len());
    for (line, record) in data.iter().zip(report.records()) {
        assert!(line.contains(&record.app_name), "{line}");
    }
}
