//! Verifies the latency calibration of DESIGN.md §6: under the no-sharing
//! baseline at batch size 5, each benchmark's execution time reproduces
//! Table 3 of the paper.

use nimblock::app::{benchmarks, Priority};
use nimblock::core::{NoSharingScheduler, Testbed};
use nimblock::sim::SimTime;
use nimblock::workload::{ArrivalEvent, EventSequence};

/// (benchmark, Table 3 baseline execution time in seconds)
const TABLE3_EXEC: [(&str, f64); 6] = [
    ("LeNet", 0.73),
    ("AlexNet", 65.44),
    ("ImageCompression", 0.56),
    ("OpticalFlow", 22.91),
    ("3DRendering", 1.55),
    ("DigitRecognition", 984.23),
];

#[test]
fn baseline_execution_times_match_table3() {
    for (name, expected) in TABLE3_EXEC {
        let app = benchmarks::by_name(name).expect("benchmark exists");
        let events = EventSequence::new(vec![ArrivalEvent::new(
            app,
            5,
            Priority::Medium,
            SimTime::ZERO,
        )]);
        let report = Testbed::new(NoSharingScheduler::new()).run(&events);
        let exec = report.records()[0].execution_time().as_secs_f64();
        let error = (exec - expected).abs() / expected;
        assert!(
            error < 0.15,
            "{name}: simulated execution {exec:.3}s vs Table 3 {expected}s ({:.1}% off)",
            error * 100.0
        );
    }
}

#[test]
fn response_time_exceeds_execution_time_by_initial_reconfig() {
    // An uncontended application's response = wait (first reconfiguration)
    // + execution.
    let events = EventSequence::new(vec![ArrivalEvent::new(
        benchmarks::lenet(),
        5,
        Priority::Low,
        SimTime::ZERO,
    )]);
    let report = Testbed::new(NoSharingScheduler::new()).run(&events);
    let record = &report.records()[0];
    assert_eq!(record.wait_time().as_millis(), 80);
    assert_eq!(
        record.response_time(),
        record.wait_time() + record.execution_time()
    );
}

#[test]
fn single_slot_latency_bounds_every_schedule_from_below_at_batch_one_chain() {
    // For a chain at batch 1 nothing can pipeline, so no scheduler beats
    // the single-slot latency minus reconfiguration overlap headroom.
    let app = benchmarks::optical_flow();
    let compute = app.graph().total_latency();
    let events = EventSequence::new(vec![ArrivalEvent::new(
        app,
        1,
        Priority::High,
        SimTime::ZERO,
    )]);
    let report = Testbed::new(Box::new(nimblock::core::NimblockScheduler::default())
        as Box<dyn nimblock::core::Scheduler>)
    .run(&events);
    assert!(
        report.records()[0].response_time() >= compute,
        "response cannot beat pure compute"
    );
}
