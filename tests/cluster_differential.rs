//! Differential tests for the parallel cluster engine.
//!
//! The sequential cluster run (`--cluster-threads 1`) is the oracle: the
//! plan → execute → merge pipeline is defined to produce byte-identical
//! output for every thread count (DESIGN.md §12). These tests hold the
//! parallel engine to that definition across randomized workloads,
//! dispatch policies, scheduler policies, and board counts, and then run
//! the schedule-invariant verifier over the per-board traces of a
//! parallel run — parallelism must not be able to manufacture a schedule
//! the sequential verifier would reject.

use nimblock::cluster::{ClusterTestbed, DispatchPolicy};
use nimblock::core::{
    FcfsScheduler, NimblockScheduler, PremaScheduler, RoundRobinScheduler, Scheduler,
};
use nimblock::obs::Registry;
use nimblock::workload::{generate, EventSequence, Scenario};
use nimblock_check::{check, prop_assert, prop_assert_eq, Gen};

/// Everything observable about a cluster run, serialized for byte-compare.
fn fingerprint(
    events: &EventSequence,
    boards: usize,
    dispatch: DispatchPolicy,
    threads: usize,
    factory: impl Fn() -> Box<dyn Scheduler + Send> + Sync,
) -> String {
    let registry = Registry::new();
    // Attach a continuous monitor with rules from every SLO family so the
    // windowed series, merge, and burn-rate engine are all under the
    // byte-compare too (1 s windows keep long stress runs inside the
    // window-capacity bound).
    let monitor = nimblock::obs::MonitorConfig::with_window_micros(1_000_000).rules(
        nimblock::obs::parse_rules(&[
            "util>=20%".into(),
            "queue<=4".into(),
            "resp:med:p95<=50ms".into(),
            "burn:low:p50<=100ms@3/5".into(),
        ])
        .expect("differential SLO rules parse"),
    );
    let report = ClusterTestbed::new(boards, dispatch, factory)
        .with_threads(threads)
        .with_tracing()
        .with_metrics(registry.clone())
        .with_monitor(monitor)
        .run(events);
    let mut out = nimblock_ser::to_string_pretty(report.merged());
    out.push('\n');
    out.push_str(&nimblock_ser::to_string_pretty(
        report.monitor().expect("monitored run carries a doc"),
    ));
    out.push_str(&format!("\nassignments: {:?}", report.assignments()));
    out.push_str(&format!("\nboard_loads: {:?}", report.board_loads()));
    for per_board in report.per_board() {
        out.push('\n');
        out.push_str(&nimblock_ser::to_string(per_board));
    }
    for trace in report.per_board_traces() {
        out.push('\n');
        out.push_str(&nimblock_ser::to_string(trace));
    }
    out.push('\n');
    out.push_str(&registry.render_prometheus());
    out
}

fn scheduler_factory(name: &str) -> impl Fn() -> Box<dyn Scheduler + Send> + Sync + '_ {
    move || -> Box<dyn Scheduler + Send> {
        match name {
            "fcfs" => Box::new(FcfsScheduler::new()),
            "rr" => Box::new(RoundRobinScheduler::new()),
            "prema" => Box::new(PremaScheduler::new()),
            "nimblock" => Box::new(NimblockScheduler::new()),
            other => panic!("unknown scheduler {other}"),
        }
    }
}

#[test]
fn fixed_seed_cluster_runs_are_identical_for_one_two_and_eight_threads() {
    // The acceptance-criterion triple (N ∈ {1, 2, 8}) on a congested
    // stimulus, for every dispatch policy.
    let events = generate(2023, 16, Scenario::Stress);
    for dispatch in DispatchPolicy::ALL {
        let oracle = fingerprint(&events, 4, dispatch, 1, scheduler_factory("nimblock"));
        for threads in [2, 8] {
            let parallel = fingerprint(&events, 4, dispatch, threads, scheduler_factory("nimblock"));
            assert_eq!(oracle, parallel, "{dispatch:?} with {threads} threads diverged");
        }
    }
}

#[test]
fn fixed_seed_front_door_reports_are_identical_for_one_two_and_eight_threads() {
    // Same acceptance-criterion triple, one layer up: the serving front
    // door (DESIGN.md §17) drives the cluster dispatcher through its
    // streaming admission path, and its full report — counters, class
    // quantiles, shed explanations, tenant ledgers — must be
    // byte-identical for every worker-thread count.
    use nimblock::faas::{FrontDoor, FrontDoorConfig, FunctionRegistry, TenantPolicy};
    let mut config = FrontDoorConfig::new(2023);
    config.invocations = 4_000;
    config.process =
        nimblock::workload::ArrivalProcess::parse("bursty:2000").expect("process parses");
    config.shed_horizon = nimblock::sim::SimDuration::from_millis(200);
    config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
    let oracle = nimblock_ser::to_string_pretty(
        &FrontDoor::new(FunctionRegistry::benchmark_suite(), config.clone()).run(),
    );
    for threads in [2, 8] {
        let mut parallel = config.clone();
        parallel.threads = threads;
        let fresh = nimblock_ser::to_string_pretty(
            &FrontDoor::new(FunctionRegistry::benchmark_suite(), parallel).run(),
        );
        assert_eq!(oracle, fresh, "front door with {threads} threads diverged");
    }
}

#[test]
fn random_cluster_runs_match_the_sequential_oracle() {
    check("random_cluster_runs_match_the_sequential_oracle", |g: &mut Gen| {
        let seed = g.u64(0..=10_000);
        let events = generate(
            seed,
            g.usize(1..=14),
            *g.pick(&[Scenario::Standard, Scenario::Stress, Scenario::RealTime]),
        );
        let boards = g.usize(1..=5);
        let dispatch = *g.pick(&DispatchPolicy::ALL);
        let scheduler = *g.pick(&["fcfs", "rr", "prema", "nimblock"]);
        let threads = g.usize(2..=8);

        let oracle = fingerprint(&events, boards, dispatch, 1, scheduler_factory(scheduler));
        let parallel = fingerprint(&events, boards, dispatch, threads, scheduler_factory(scheduler));
        prop_assert_eq!(oracle, parallel);
        Ok(())
    });
}

#[test]
fn parallel_per_board_traces_uphold_the_schedule_invariants() {
    check("parallel_per_board_traces_uphold_the_schedule_invariants", |g: &mut Gen| {
        let seed = g.u64(0..=10_000);
        let events = generate(
            seed,
            g.usize(2..=12),
            *g.pick(&[Scenario::Stress, Scenario::RealTime]),
        );
        let boards = g.usize(1..=4);
        let report = ClusterTestbed::new(boards, DispatchPolicy::FewestApps, || {
            NimblockScheduler::new()
        })
        .with_threads(g.usize(2..=8))
        .with_tracing()
        .run(&events);

        prop_assert_eq!(report.per_board_traces().len(), boards);
        let config = nimblock::analyze::InvariantConfig::default();
        for (board, trace) in report.per_board_traces().iter().enumerate() {
            let verdict = nimblock::analyze::verify_trace(trace, &config);
            prop_assert!(
                verdict.is_clean(),
                "board {} schedule violates invariants: {}",
                board,
                verdict
            );
        }
        Ok(())
    });
}
