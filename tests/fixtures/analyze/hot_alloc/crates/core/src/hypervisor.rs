// Adversarial fixture for `nimblock-analyze deep`: exactly one
// hot-path-no-alloc finding — the boxed journal entry allocated in
// `bump`, reached from the `Hypervisor::handle` root. The
// capacity-guarded `push` two lines below it must NOT fire, pinning the
// guard exemption. The decoy `Hypervisor` never contaminates the
// workspace model because fixture paths are excluded from it.

pub struct Entry {
    pub at: u64,
}

pub struct Hypervisor {
    journal: Vec<Box<Entry>>,
    depth: u64,
}

impl Hypervisor {
    pub fn handle(&mut self, at: u64) {
        self.depth += 1;
        self.bump(at);
    }

    fn bump(&mut self, at: u64) {
        if self.journal.len() == self.journal.capacity() {
            self.journal.reserve(16);
        }
        self.journal.push(Box::new(Entry { at }));
    }
}
