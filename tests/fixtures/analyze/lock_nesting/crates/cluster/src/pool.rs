// Adversarial fixture for `nimblock-analyze deep`: exactly one
// lock-discipline finding — the second `.lock()` acquired while the
// bound `queue` guard is still live. The statement-temporary lock in
// `peek_depth` must NOT fire, pinning the temporary-vs-guard
// distinction.

use std::collections::VecDeque;
use std::sync::Mutex;

pub struct Pool {
    queue: Mutex<VecDeque<u64>>,
    results: Mutex<Vec<u64>>,
}

impl Pool {
    pub fn drain_one(&self) -> Option<u64> {
        let mut queue = self.queue.lock().expect("queue poisoned");
        let results = self.results.lock().expect("results poisoned");
        let next = queue.pop_front();
        drop(results);
        next
    }

    pub fn peek_depth(&self) -> usize {
        self.queue.lock().expect("queue poisoned").len()
    }
}
