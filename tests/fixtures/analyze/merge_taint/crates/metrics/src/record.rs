// Adversarial fixture for `nimblock-analyze deep`: exactly one
// determinism-taint finding — the `HashMap` field iterated inside the
// `Report::merged` root. The `Vec` field iterated next to it must NOT
// fire, pinning the ordered-container exemption.

use std::collections::HashMap;

pub struct Report {
    counts: HashMap<String, u64>,
    order: Vec<u64>,
}

impl Report {
    pub fn merged(&self) -> u64 {
        let mut total = 0;
        for (_, value) in self.counts.iter() {
            total += value;
        }
        for value in self.order.iter() {
            total += value;
        }
        total
    }
}
