//! The deep analyzer against its adversarial fixtures and the workspace
//! itself.
//!
//! Each fixture tree under `tests/fixtures/analyze/` is engineered to
//! trip **exactly one** pass — one finding, from the named pass, in the
//! named function — and to stay silent everywhere else (lint included).
//! Together with the workspace-cleanliness test this pins both
//! directions: the passes fire on the constructs they claim to catch,
//! and the shipped tree plus its committed suppressions is clean.

use std::path::PathBuf;

use nimblock::analyze::{deep_tree, DeepReport};

fn repo_path(parts: &[&str]) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for part in parts {
        path.push(part);
    }
    path
}

/// Runs `deep` over one fixture tree.
fn analyze_fixture(name: &str) -> DeepReport {
    let root = repo_path(&["tests", "fixtures", "analyze", name]);
    deep_tree(&root)
        .unwrap_or_else(|e| panic!("cannot analyze fixture {name}: {e}"))
        .report
}

/// Asserts the fixture fired exactly one finding, from `pass`, in
/// `function`, with nothing else dirty.
fn assert_single_finding(name: &str, pass: &str, function: &str) {
    let report = analyze_fixture(name);
    assert_eq!(
        report.findings.len(),
        1,
        "fixture {name} must trip exactly one finding: {:?}",
        report.findings
    );
    let finding = &report.findings[0];
    assert_eq!(finding.pass, pass, "fixture {name} fired the wrong pass: {finding}");
    assert_eq!(
        finding.function, function,
        "fixture {name} fired in the wrong function: {finding}"
    );
    assert!(report.lint.is_empty(), "fixture {name} must be lint-clean: {:?}", report.lint);
    assert!(
        report.unused_suppressions.is_empty(),
        "fixture {name} has stale suppressions: {:?}",
        report.unused_suppressions
    );
}

#[test]
fn hot_alloc_fixture_trips_exactly_the_hot_path_pass() {
    assert_single_finding("hot_alloc", "hot-path-no-alloc", "Hypervisor::bump");
}

#[test]
fn hot_alloc_finding_is_the_boxed_entry_not_the_guarded_push() {
    let report = analyze_fixture("hot_alloc");
    let finding = &report.findings[0];
    assert!(finding.message.contains("Box"), "{finding}");
    assert!(
        finding.message.contains("Hypervisor::handle -> Hypervisor::bump"),
        "finding must carry the root-to-sink chain: {finding}"
    );
}

#[test]
fn merge_taint_fixture_trips_exactly_the_determinism_pass() {
    assert_single_finding("merge_taint", "determinism-taint", "Report::merged");
    let report = analyze_fixture("merge_taint");
    assert!(
        report.findings[0].message.contains("self.counts.iter()"),
        "the HashMap field, not the Vec field, must fire: {}",
        report.findings[0]
    );
}

#[test]
fn lock_nesting_fixture_trips_exactly_the_lock_pass() {
    assert_single_finding("lock_nesting", "lock-discipline", "Pool::drain_one");
    let report = analyze_fixture("lock_nesting");
    assert!(
        report.findings[0].message.contains("nested Mutex acquisition"),
        "{}",
        report.findings[0]
    );
}

#[test]
fn workspace_deep_analysis_is_clean() {
    let analysis = deep_tree(&repo_path(&[])).expect("workspace analyzes");
    let report = analysis.report;
    assert!(
        report.is_clean(),
        "workspace deep analysis must stay clean — fix the finding or add a \
         justified suppression:\n{}",
        report.render(nimblock::analyze::ExplainFormat::Text)
    );
    // The committed suppression file is load-bearing: if triage ever
    // drops to zero suppressed findings the file should be deleted, not
    // silently ignored.
    assert!(report.suppressed > 0, "expected the committed suppressions to fire");
}
