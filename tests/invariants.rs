//! Whole-system invariants, checked by driving the hypervisor directly so
//! its final state is inspectable.

use nimblock::core::{Hypervisor, HvEvent, Scheduler};
use nimblock::fpga::{Device, DeviceConfig};
use nimblock::sim::{SimDuration, SimTime, Simulation};
use nimblock::workload::{generate, EventSequence, Scenario};

/// Runs `scheduler` over `events` and returns the final hypervisor.
fn run_to_completion(
    scheduler: Box<dyn Scheduler>,
    events: &EventSequence,
) -> Hypervisor<Box<dyn Scheduler>> {
    let device = Device::new(DeviceConfig::zcu106());
    let hypervisor = Hypervisor::new(device, scheduler, events.events().to_vec());
    let mut sim = Simulation::new(hypervisor);
    for (index, event) in events.iter().enumerate() {
        sim.queue_mut().push(event.arrival(), HvEvent::Arrival(index));
    }
    sim.queue_mut()
        .push(SimTime::ZERO + SimDuration::from_millis(400), HvEvent::Tick);
    sim.run();
    assert!(sim.handler().finished(), "system must drain");
    sim.into_handler()
}

fn policies() -> Vec<Box<dyn Scheduler>> {
    use nimblock::core::*;
    vec![
        Box::new(NoSharingScheduler::new()),
        Box::new(FcfsScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(PremaScheduler::new()),
        Box::new(PremaScheduler::with_backfill()),
        Box::new(NimblockScheduler::default()),
        Box::new(NimblockScheduler::with_config(NimblockConfig::no_preemption())),
        Box::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining())),
    ]
}

#[test]
fn all_buffers_are_relinquished_at_drain() {
    let events = generate(31, 10, Scenario::Stress);
    for scheduler in policies() {
        let name = scheduler.name();
        let hv = run_to_completion(scheduler, &events);
        assert_eq!(
            hv.device().memory().in_use(),
            0,
            "{name}: leaked {} bytes of buffer memory",
            hv.device().memory().in_use()
        );
        assert_eq!(hv.device().memory().live_buffers(), 0, "{name}");
    }
}

#[test]
fn cap_is_idle_and_all_slots_released_at_drain() {
    let events = generate(32, 8, Scenario::RealTime);
    for scheduler in policies() {
        let name = scheduler.name();
        let hv = run_to_completion(scheduler, &events);
        assert!(hv.device().cap().is_idle(), "{name}: CAP busy after drain");
        for slot in hv.device().slots() {
            assert!(
                slot.state().reconfigurable(),
                "{name}: {} stuck in {:?}",
                slot.id(),
                slot.state()
            );
        }
    }
}

#[test]
fn reconfiguration_accounting_is_conserved() {
    // Per-application PR time sums to the CAP's total busy time.
    let events = generate(33, 10, Scenario::Standard);
    for scheduler in policies() {
        let name = scheduler.name();
        let hv = run_to_completion(scheduler, &events);
        let per_app: u64 = hv
            .records()
            .iter()
            .map(|r| r.reconfig_time.as_micros())
            .sum();
        let cap_busy = hv.device().cap().busy_time().as_micros();
        assert_eq!(per_app, cap_busy, "{name}: PR accounting mismatch");
        // Each completed reconfiguration took the nominal 80 ms.
        assert_eq!(
            cap_busy,
            hv.device().cap().completed() * 80_000,
            "{name}: unexpected per-reconfiguration latency"
        );
    }
}

#[test]
fn non_preemptive_policies_never_preempt() {
    let events = generate(34, 12, Scenario::Stress);
    for scheduler in policies() {
        let name = scheduler.name();
        if name == "Nimblock" || name == "NimblockNoPipe" {
            continue; // the preemption-enabled configurations
        }
        let hv = run_to_completion(scheduler, &events);
        let preemptions: u32 = hv.records().iter().map(|r| r.preemptions).sum();
        assert_eq!(preemptions, 0, "{name} must not preempt");
    }
}

#[test]
fn run_time_equals_batch_times_task_latencies() {
    // Whatever the schedule, total run time of an application is exactly
    // batch × Σ task latencies (work conservation: preemption at batch
    // boundaries never discards completed items).
    let events = generate(35, 10, Scenario::Stress);
    for scheduler in policies() {
        let name = scheduler.name();
        let hv = run_to_completion(scheduler, &events);
        for record in hv.records() {
            let app = nimblock::app::benchmarks::by_name(&record.app_name).unwrap();
            let expected = app
                .graph()
                .total_latency()
                .saturating_mul(u64::from(record.batch_size));
            assert_eq!(
                record.run_time, expected,
                "{name}: {} run-time mismatch",
                record.app_name
            );
        }
    }
}

#[test]
fn responses_are_causally_ordered() {
    let events = generate(36, 10, Scenario::RealTime);
    for scheduler in policies() {
        let name = scheduler.name();
        let hv = run_to_completion(scheduler, &events);
        for record in hv.records() {
            let first = record.first_launch.expect("every app ran");
            assert!(first >= record.arrival, "{name}: launch before arrival");
            assert!(record.retired > first, "{name}: retire before launch");
            // The first launch follows at least one reconfiguration.
            assert!(
                first >= record.arrival + SimDuration::from_millis(80),
                "{name}: {} launched before its first bitstream could load",
                record.app_name
            );
        }
    }
}

#[test]
fn preempted_work_is_never_lost() {
    // Under heavy preemption pressure, per-app run time still matches the
    // full batch (batch-preemption saves batch state, paper §3.2).
    use nimblock::app::{benchmarks, Priority};
    use nimblock::workload::ArrivalEvent;
    let mut events = vec![ArrivalEvent::new(
        benchmarks::alexnet(),
        20,
        Priority::Low,
        SimTime::ZERO,
    )];
    for i in 0..12u64 {
        events.push(ArrivalEvent::new(
            benchmarks::lenet(),
            3,
            Priority::High,
            SimTime::from_millis(1_000 + 150 * i),
        ));
    }
    let events = EventSequence::new(events);
    let hv = run_to_completion(
        Box::new(nimblock::core::NimblockScheduler::default()),
        &events,
    );
    let alexnet = hv
        .records()
        .iter()
        .find(|r| r.app_name == "AlexNet")
        .unwrap();
    let expected = benchmarks::alexnet()
        .graph()
        .total_latency()
        .saturating_mul(20);
    assert_eq!(alexnet.run_time, expected, "preempted items must not rerun");
}

#[test]
fn response_times_respect_information_theoretic_lower_bounds() {
    // No schedule can beat: one reconfiguration, plus the critical path for
    // one item, plus the bottleneck stage for the remaining items (a stage
    // processes items serially on one slot).
    let events = generate(37, 10, Scenario::Stress);
    for scheduler in policies() {
        let name = scheduler.name();
        let hv = run_to_completion(scheduler, &events);
        for record in hv.records() {
            let app = nimblock::app::benchmarks::by_name(&record.app_name).unwrap();
            let critical = app.graph().critical_path_latency();
            let bottleneck = app
                .graph()
                .tasks()
                .map(|(_, t)| t.latency())
                .max()
                .unwrap()
                .saturating_mul(u64::from(record.batch_size - 1));
            let bound = SimDuration::from_millis(80) + critical + bottleneck;
            assert!(
                record.response_time() >= bound,
                "{name}: {} response {} beats the lower bound {}",
                record.app_name,
                record.response_time(),
                bound
            );
        }
    }
}
