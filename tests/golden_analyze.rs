//! Golden-file tests byte-pinning the analyzer's machine-readable wire
//! formats: `analyze lint --format json` and `analyze deep --format json`
//! over this workspace.
//!
//! Both reports are clean by construction (the lint and deep CI stages
//! enforce that), so the goldens pin the *shape* of the JSON — field
//! names, ordering, and the summary counters tooling scrapes — plus the
//! workspace-size counters, which change whenever files, functions, or
//! suppressions are added. That coupling is deliberate: a PR that grows
//! the tree re-records the counters in review. Regenerate after an
//! intentional change:
//!
//! ```text
//! NIMBLOCK_REGEN_GOLDENS=1 cargo test -q --test golden_analyze
//! ```

use std::path::PathBuf;

use nimblock::analyze::{deep_tree, lint_tree};

fn repo_path(parts: &[&str]) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    for part in parts {
        path.push(part);
    }
    path
}

/// Reads the golden, or rewrites it when `NIMBLOCK_REGEN_GOLDENS` is set.
fn golden(name: &str, fresh: &str) -> String {
    let path = repo_path(&["tests", "goldens", name]);
    if std::env::var("NIMBLOCK_REGEN_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fresh).unwrap();
    }
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with NIMBLOCK_REGEN_GOLDENS=1",
            path.display()
        )
    })
}

#[test]
fn lint_json_report_matches_golden() {
    let report = lint_tree(&repo_path(&[])).expect("workspace lints");
    let fresh = format!("{}\n", nimblock_ser::to_string_pretty(&report));
    assert_eq!(
        golden("analyze_lint.json", &fresh),
        fresh,
        "lint JSON drifted; regenerate with NIMBLOCK_REGEN_GOLDENS=1 if intentional"
    );
}

#[test]
fn deep_json_report_matches_golden() {
    let analysis = deep_tree(&repo_path(&[])).expect("workspace analyzes");
    let fresh = format!("{}\n", nimblock_ser::to_string_pretty(&analysis.report));
    assert_eq!(
        golden("analyze_deep.json", &fresh),
        fresh,
        "deep JSON drifted; regenerate with NIMBLOCK_REGEN_GOLDENS=1 if intentional"
    );
}
