//! Property-based tests over the core data structures and the end-to-end
//! system, ported to the in-repo `nimblock-check` harness (256 cases per
//! property, replayable via `NIMBLOCK_CHECK_SEED`).

use nimblock_check::{check, prop_assert, prop_assert_eq, Gen};

use nimblock::app::{AppSpec, Priority, TaskGraph, TaskGraphBuilder, TaskId, TaskSpec};
use nimblock::ilp::{EstimatorConfig, PipelineEstimator};
use nimblock::sim::{EventQueue, SimDuration, SimTime};
use nimblock::workload::{ArrivalEvent, EventSequence};

/// Generator: a random DAG with `n` tasks whose edges always point from a
/// lower to a higher task index (guaranteeing acyclicity by construction).
fn arb_dag(g: &mut Gen) -> TaskGraph {
    let n = g.usize(2..=11);
    let latencies = g.vec(n..=n, |g| g.u64(1..=1_999));
    let edges = g.vec(0..=(n * 2).saturating_sub(1), |g| {
        (g.usize(0..=n - 2), g.usize(1..=n - 1))
    });
    let mut builder = TaskGraphBuilder::new();
    let ids: Vec<TaskId> = latencies
        .iter()
        .enumerate()
        .map(|(i, &ms)| {
            builder.add_task(TaskSpec::new(format!("t{i}"), SimDuration::from_millis(ms)))
        })
        .collect();
    for (a, b) in edges {
        let (from, to) = (a.min(b), a.max(b).max(a.min(b) + 1).min(ids.len() - 1));
        if from != to {
            // Duplicate edges are rejected; ignore those.
            let _ = builder.add_edge(ids[from], ids[to]);
        }
    }
    builder.build().expect("forward edges cannot form a cycle")
}

#[test]
fn topological_order_is_a_valid_permutation() {
    check("topological_order_is_a_valid_permutation", |g| {
        let graph = arb_dag(g);
        let topo = graph.topological_order();
        prop_assert_eq!(topo.len(), graph.task_count());
        let position = |t: TaskId| topo.iter().position(|&x| x == t).unwrap();
        for &(from, to) in graph.edges() {
            prop_assert!(position(from) < position(to));
        }
        Ok(())
    });
}

#[test]
fn levels_strictly_increase_along_edges() {
    check("levels_strictly_increase_along_edges", |g| {
        let graph = arb_dag(g);
        for &(from, to) in graph.edges() {
            prop_assert!(graph.level(from) < graph.level(to));
        }
        prop_assert_eq!(
            graph.level_widths().iter().sum::<usize>(),
            graph.task_count()
        );
        Ok(())
    });
}

#[test]
fn critical_path_bounds() {
    check("critical_path_bounds", |g| {
        let graph = arb_dag(g);
        let critical = graph.critical_path_latency();
        let total = graph.total_latency();
        let longest_task = graph.tasks().map(|(_, t)| t.latency()).max().unwrap();
        prop_assert!(critical <= total);
        prop_assert!(critical >= longest_task);
        Ok(())
    });
}

#[test]
fn estimator_makespan_monotone_in_slots() {
    check("estimator_makespan_monotone_in_slots", |g| {
        let graph = arb_dag(g);
        let batch = g.u32(1..=7);
        let estimator = PipelineEstimator::new(EstimatorConfig {
            reconfig: SimDuration::from_millis(80),
            pipelining: true,
        });
        let mut previous = estimator.makespan(&graph, batch, 1);
        for slots in 2..=6 {
            let makespan = estimator.makespan(&graph, batch, slots);
            prop_assert!(makespan <= previous, "slots {slots}: {makespan} > {previous}");
            previous = makespan;
        }
        Ok(())
    });
}

#[test]
fn estimator_pipelining_never_slower_than_bulk() {
    check("estimator_pipelining_never_slower_than_bulk", |g| {
        let graph = arb_dag(g);
        let batch = g.u32(1..=7);
        let pipe = PipelineEstimator::new(EstimatorConfig {
            reconfig: SimDuration::from_millis(80),
            pipelining: true,
        });
        let bulk = PipelineEstimator::new(EstimatorConfig {
            reconfig: SimDuration::from_millis(80),
            pipelining: false,
        });
        let slots = 4;
        prop_assert!(pipe.makespan(&graph, batch, slots) <= bulk.makespan(&graph, batch, slots));
        Ok(())
    });
}

#[test]
fn estimator_makespan_bounded_below_by_work_over_slots() {
    check("estimator_makespan_bounded_below_by_work_over_slots", |g| {
        let graph = arb_dag(g);
        let batch = g.u32(1..=5);
        // Total compute work / slot count is an unbeatable lower bound.
        let estimator = PipelineEstimator::default();
        let slots = 3;
        let work = graph.total_latency().saturating_mul(u64::from(batch));
        let makespan = estimator.makespan(&graph, batch, slots);
        prop_assert!(makespan.as_micros() >= work.as_micros() / slots as u64);
        Ok(())
    });
}

#[test]
fn event_queue_pops_sorted() {
    check("event_queue_pops_sorted", |g| {
        let entries = g.vec(1..=199, |g| (g.u64(0..=999), g.u32(0..=99)));
        let mut queue = EventQueue::new();
        for &(at, payload) in &entries {
            queue.push(SimTime::from_millis(at), payload);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = queue.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, entries.len());
        Ok(())
    });
}

#[test]
fn random_graph_applications_complete_under_nimblock() {
    check("random_graph_applications_complete_under_nimblock", |g| {
        let graph = arb_dag(g);
        let batch = g.u32(1..=5);
        let priority_index = g.usize(0..=2);
        let app = AppSpec::new("random", graph);
        let events = EventSequence::new(vec![ArrivalEvent::new(
            app,
            batch,
            Priority::ALL[priority_index],
            SimTime::ZERO,
        )]);
        let report = nimblock::core::Testbed::new(nimblock::core::NimblockScheduler::default())
            .run(&events);
        prop_assert_eq!(report.records().len(), 1);
        // Response is at least one reconfiguration plus the critical path.
        let record = &report.records()[0];
        prop_assert!(record.response_time() >= SimDuration::from_millis(80));
        Ok(())
    });
}

#[test]
fn single_slot_latency_scales_linearly_in_batch() {
    check("single_slot_latency_scales_linearly_in_batch", |g| {
        let graph = arb_dag(g);
        let batch = g.u32(1..=19);
        let app = AppSpec::new("x", graph);
        let r = SimDuration::from_millis(80);
        let base = app.single_slot_latency(0, r);
        let at_batch = app.single_slot_latency(batch, r);
        let per_item = app.graph().total_latency();
        prop_assert_eq!(at_batch - base, per_item.saturating_mul(u64::from(batch)));
        Ok(())
    });
}

// The ILP solver agrees with brute force on random 0/1 knapsacks.
#[test]
fn ilp_matches_bruteforce_knapsack() {
    check("ilp_matches_bruteforce_knapsack", |g| {
        use nimblock::ilp::{Problem, Relation, Sense};

        let items = g.vec(1..=9, |g| (g.u32(1..=39), g.u32(1..=99)));
        let capacity = g.u32(10..=119);

        let mut problem = Problem::new(Sense::Maximize);
        let vars: Vec<_> = items
            .iter()
            .map(|&(_, value)| problem.add_integer_var(0.0, 1.0, f64::from(value)))
            .collect();
        let weights: Vec<_> = vars
            .iter()
            .zip(&items)
            .map(|(&v, &(w, _))| (v, f64::from(w)))
            .collect();
        problem.add_constraint(&weights, Relation::LessEq, f64::from(capacity));
        let solution = problem.solve().expect("knapsack is feasible (empty set)");

        // Brute force over all subsets.
        let mut best = 0u32;
        for mask in 0u32..(1 << items.len()) {
            let (mut weight, mut value) = (0u32, 0u32);
            for (i, &(w, v)) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    weight += w;
                    value += v;
                }
            }
            if weight <= capacity {
                best = best.max(value);
            }
        }
        prop_assert!(
            (solution.objective() - f64::from(best)).abs() < 1e-6,
            "ILP {} vs brute force {best}",
            solution.objective()
        );
        Ok(())
    });
}

/// Fixed-seed regression cases: concrete DAGs from pinned seeds, exercising
/// the full topo/level/critical-path contract on stable inputs.
#[test]
fn fixed_seed_regressions() {
    for seed in [0u64, 17, 2023, 0xFACE] {
        let mut g = Gen::from_seed(seed);
        let graph = arb_dag(&mut g);
        let topo = graph.topological_order();
        assert_eq!(topo.len(), graph.task_count(), "seed {seed}");
        for &(from, to) in graph.edges() {
            assert!(graph.level(from) < graph.level(to), "seed {seed}");
        }
        assert!(
            graph.critical_path_latency() <= graph.total_latency(),
            "seed {seed}"
        );
    }
}
