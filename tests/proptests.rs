//! Property-based tests over the core data structures and the end-to-end
//! system.

use proptest::collection::vec;
use proptest::prelude::*;

use nimblock::app::{AppSpec, Priority, TaskGraph, TaskGraphBuilder, TaskId, TaskSpec};
use nimblock::ilp::{EstimatorConfig, PipelineEstimator};
use nimblock::sim::{EventQueue, SimDuration, SimTime};
use nimblock::workload::{ArrivalEvent, EventSequence};

/// Strategy: a random DAG with `n` tasks whose edges always point from a
/// lower to a higher task index (guaranteeing acyclicity by construction).
fn arb_dag() -> impl Strategy<Value = TaskGraph> {
    (2usize..12).prop_flat_map(|n| {
        let edges = vec((0usize..n - 1, 1usize..n), 0..(n * 2));
        let latencies = vec(1u64..2_000, n..=n);
        (edges, latencies).prop_map(move |(edges, latencies)| {
            let mut builder = TaskGraphBuilder::new();
            let ids: Vec<TaskId> = latencies
                .iter()
                .enumerate()
                .map(|(i, &ms)| {
                    builder.add_task(TaskSpec::new(format!("t{i}"), SimDuration::from_millis(ms)))
                })
                .collect();
            for (a, b) in edges {
                let (from, to) = (a.min(b), a.max(b).max(a.min(b) + 1).min(ids.len() - 1));
                if from != to {
                    // Duplicate edges are rejected; ignore those.
                    let _ = builder.add_edge(ids[from], ids[to]);
                }
            }
            builder.build().expect("forward edges cannot form a cycle")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topological_order_is_a_valid_permutation(graph in arb_dag()) {
        let topo = graph.topological_order();
        prop_assert_eq!(topo.len(), graph.task_count());
        let position = |t: TaskId| topo.iter().position(|&x| x == t).unwrap();
        for &(from, to) in graph.edges() {
            prop_assert!(position(from) < position(to));
        }
    }

    #[test]
    fn levels_strictly_increase_along_edges(graph in arb_dag()) {
        for &(from, to) in graph.edges() {
            prop_assert!(graph.level(from) < graph.level(to));
        }
        prop_assert_eq!(
            graph.level_widths().iter().sum::<usize>(),
            graph.task_count()
        );
    }

    #[test]
    fn critical_path_bounds(graph in arb_dag()) {
        let critical = graph.critical_path_latency();
        let total = graph.total_latency();
        let longest_task = graph
            .tasks()
            .map(|(_, t)| t.latency())
            .max()
            .unwrap();
        prop_assert!(critical <= total);
        prop_assert!(critical >= longest_task);
    }

    #[test]
    fn estimator_makespan_monotone_in_slots(graph in arb_dag(), batch in 1u32..8) {
        let estimator = PipelineEstimator::new(EstimatorConfig {
            reconfig: SimDuration::from_millis(80),
            pipelining: true,
        });
        let mut previous = estimator.makespan(&graph, batch, 1);
        for slots in 2..=6 {
            let makespan = estimator.makespan(&graph, batch, slots);
            prop_assert!(makespan <= previous, "slots {slots}: {makespan} > {previous}");
            previous = makespan;
        }
    }

    #[test]
    fn estimator_pipelining_never_slower_than_bulk(graph in arb_dag(), batch in 1u32..8) {
        let pipe = PipelineEstimator::new(EstimatorConfig {
            reconfig: SimDuration::from_millis(80),
            pipelining: true,
        });
        let bulk = PipelineEstimator::new(EstimatorConfig {
            reconfig: SimDuration::from_millis(80),
            pipelining: false,
        });
        let slots = 4;
        prop_assert!(pipe.makespan(&graph, batch, slots) <= bulk.makespan(&graph, batch, slots));
    }

    #[test]
    fn estimator_makespan_bounded_below_by_work_over_slots(graph in arb_dag(), batch in 1u32..6) {
        // Total compute work / slot count is an unbeatable lower bound.
        let estimator = PipelineEstimator::default();
        let slots = 3;
        let work = graph.total_latency().saturating_mul(u64::from(batch));
        let makespan = estimator.makespan(&graph, batch, slots);
        prop_assert!(makespan.as_micros() >= work.as_micros() / slots as u64);
    }

    #[test]
    fn event_queue_pops_sorted(entries in vec((0u64..1_000, 0u32..100), 1..200)) {
        let mut queue = EventQueue::new();
        for &(at, payload) in &entries {
            queue.push(SimTime::from_millis(at), payload);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = queue.pop() {
            prop_assert!(at >= last);
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, entries.len());
    }

    #[test]
    fn random_graph_applications_complete_under_nimblock(
        graph in arb_dag(),
        batch in 1u32..6,
        priority_index in 0usize..3,
    ) {
        let app = AppSpec::new("random", graph);
        let events = EventSequence::new(vec![ArrivalEvent::new(
            app,
            batch,
            Priority::ALL[priority_index],
            SimTime::ZERO,
        )]);
        let report = nimblock::core::Testbed::new(nimblock::core::NimblockScheduler::default())
            .run(&events);
        prop_assert_eq!(report.records().len(), 1);
        // Response is at least one reconfiguration plus the critical path.
        let record = &report.records()[0];
        prop_assert!(
            record.response_time() >= SimDuration::from_millis(80)
        );
    }

    #[test]
    fn single_slot_latency_scales_linearly_in_batch(graph in arb_dag(), batch in 1u32..20) {
        let app = AppSpec::new("x", graph);
        let r = SimDuration::from_millis(80);
        let base = app.single_slot_latency(0, r);
        let at_batch = app.single_slot_latency(batch, r);
        let per_item = app.graph().total_latency();
        prop_assert_eq!(at_batch - base, per_item.saturating_mul(u64::from(batch)));
    }
}

// The ILP solver agrees with brute force on random 0/1 knapsacks.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ilp_matches_bruteforce_knapsack(
        items in vec((1u32..40, 1u32..100), 1..10),
        capacity in 10u32..120,
    ) {
        use nimblock::ilp::{Problem, Relation, Sense};

        let mut problem = Problem::new(Sense::Maximize);
        let vars: Vec<_> = items
            .iter()
            .map(|&(_, value)| problem.add_integer_var(0.0, 1.0, f64::from(value)))
            .collect();
        let weights: Vec<_> = vars
            .iter()
            .zip(&items)
            .map(|(&v, &(w, _))| (v, f64::from(w)))
            .collect();
        problem.add_constraint(&weights, Relation::LessEq, f64::from(capacity));
        let solution = problem.solve().expect("knapsack is feasible (empty set)");

        // Brute force over all subsets.
        let mut best = 0u32;
        for mask in 0u32..(1 << items.len()) {
            let (mut weight, mut value) = (0u32, 0u32);
            for (i, &(w, v)) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    weight += w;
                    value += v;
                }
            }
            if weight <= capacity {
                best = best.max(value);
            }
        }
        prop_assert!((solution.objective() - f64::from(best)).abs() < 1e-6,
            "ILP {} vs brute force {best}", solution.objective());
    }
}
