//! Heterogeneous overlays (the Hetero-ViTAL direction the paper cites in
//! §6.1): slots of different sizes, tasks that only fit some of them.

use nimblock::app::{AppSpec, Priority, TaskGraphBuilder, TaskSpec};
use nimblock::core::{FcfsScheduler, NimblockScheduler, Scheduler, Testbed};
use nimblock::fpga::{zcu106, DeviceConfig, Resources};
use nimblock::sim::{SimDuration, SimTime};
use nimblock::workload::{ArrivalEvent, EventSequence};

/// Four small slots and two large ones.
fn hetero_config() -> DeviceConfig {
    let small = zcu106::SLOT_MIN;
    let large = Resources {
        dsp: zcu106::SLOT_MAX.dsp * 2,
        lut: zcu106::SLOT_MAX.lut * 2,
        ff: zcu106::SLOT_MAX.ff * 2,
        carry: zcu106::SLOT_MAX.carry * 2,
        ramb18: zcu106::SLOT_MAX.ramb18 * 2,
        ramb36: zcu106::SLOT_MAX.ramb36 * 2,
        iobuf: zcu106::SLOT_MAX.iobuf * 2,
    };
    DeviceConfig::zcu106().with_slot_resources(vec![small, small, small, small, large, large])
}

/// An app whose middle task only fits the large slots.
fn mixed_footprint_app() -> AppSpec {
    let big_task = Resources {
        dsp: zcu106::SLOT_MAX.dsp + 10,
        ..zcu106::SLOT_MIN
    };
    let mut builder = TaskGraphBuilder::new();
    let a = builder.add_task(TaskSpec::new("pre", SimDuration::from_millis(30)));
    let b = builder.add_task(
        TaskSpec::new("wide", SimDuration::from_millis(60)).with_resources(big_task),
    );
    let c = builder.add_task(TaskSpec::new("post", SimDuration::from_millis(20)));
    builder.add_chain(&[a, b, c]).unwrap();
    AppSpec::new("mixed", builder.build().unwrap())
}

fn stimulus() -> EventSequence {
    EventSequence::new(vec![
        ArrivalEvent::new(mixed_footprint_app(), 4, Priority::High, SimTime::ZERO),
        ArrivalEvent::new(mixed_footprint_app(), 4, Priority::Low, SimTime::from_millis(100)),
    ])
}

#[test]
fn mixed_footprint_apps_complete_on_hetero_overlays() {
    for scheduler in [
        Box::new(NimblockScheduler::default()) as Box<dyn Scheduler>,
        Box::new(FcfsScheduler::new()),
    ] {
        let name = scheduler.name();
        let report = Testbed::new(scheduler)
            .with_device_config(hetero_config())
            .run(&stimulus());
        assert_eq!(report.records().len(), 2, "{name}");
    }
}

#[test]
fn oversized_tasks_go_to_large_slots_only() {
    let (_, trace) = Testbed::new(NimblockScheduler::default())
        .with_device_config(hetero_config())
        .run_traced(&stimulus());
    use nimblock::core::TraceEvent;
    for event in trace.events() {
        if let TraceEvent::Reconfig { slot, task, .. } = event {
            if task.index() == 1 {
                assert!(
                    slot.index() >= 4,
                    "the wide task must land on a large slot, got {slot}"
                );
            }
        }
    }
}

#[test]
fn task_too_big_for_every_slot_is_rejected_at_admission() {
    let impossible = Resources {
        dsp: 10_000,
        ..zcu106::SLOT_MIN
    };
    let mut builder = TaskGraphBuilder::new();
    builder.add_task(TaskSpec::new("huge", SimDuration::from_millis(10)).with_resources(impossible));
    let app = AppSpec::new("huge", builder.build().unwrap());
    let events = EventSequence::new(vec![ArrivalEvent::new(app, 1, Priority::High, SimTime::ZERO)]);
    let result = std::panic::catch_unwind(|| {
        Testbed::new(NimblockScheduler::default()).run(&events)
    });
    let err = result.expect_err("an unplaceable task must be rejected at admission");
    let message = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("fits no slot"),
        "admission failure must name the problem, got: {message}"
    );
    assert!(message.contains("huge"), "must name the app/task: {message}");
}

#[test]
fn uniform_overlay_behaviour_is_unchanged_by_fit_checks() {
    // On the paper's uniform overlay all default-footprint tasks fit every
    // slot, so fit-aware selection must match the historical results.
    use nimblock::workload::{generate, Scenario};
    let events = generate(55, 8, Scenario::Stress);
    let report = Testbed::new(NimblockScheduler::default()).run(&events);
    assert_eq!(report.records().len(), 8);
    for record in report.records() {
        assert!(record.first_launch.is_some());
    }
}
