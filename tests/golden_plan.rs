//! Golden-file tests for the capacity planner (DESIGN.md §18): the
//! text, markdown, and JSON renders of `analyze plan` over a fixed
//! recorded serving day, pinned byte-for-byte and required to be
//! identical whatever `--cluster-threads` value recorded the trace.
//!
//! The recorded run deliberately overloads the cluster (a bursty stream
//! far beyond the benchmark mix's ~0.1/s capacity, with rate limits and
//! a tight shed horizon engaged) so the plan exercises calibration on
//! sheds and rejections, not just clean admits. The planner then sweeps
//! `boards=1..8`, validates three scenarios by exact replay, and must
//! find the recorded baseline byte-identical on replay. Regenerate
//! after an *intentional* format change:
//!
//! ```text
//! NIMBLOCK_REGEN_GOLDENS=1 cargo test -q --test golden_plan
//! ```
//!
//! Everything is keyed by virtual time only — reruns on any machine
//! must reproduce the goldens byte-for-byte.

use std::path::PathBuf;

use nimblock::faas::{FrontDoor, FrontDoorConfig, FunctionRegistry, TenantPolicy};
use nimblock::plan::{plan, render_plan, PlanFormat, PlanOptions, PlanReport};
use nimblock::sim::SimDuration;
use nimblock::workload::ArrivalProcess;

fn repo_path(parts: &[&str]) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests");
    for part in parts {
        path.push(part);
    }
    path
}

/// Reads the golden, or rewrites it when `NIMBLOCK_REGEN_GOLDENS` is set.
fn golden(name: &str, fresh: &str) -> String {
    let path = repo_path(&["goldens", name]);
    if std::env::var("NIMBLOCK_REGEN_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fresh).unwrap();
    }
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with NIMBLOCK_REGEN_GOLDENS=1",
            path.display()
        )
    })
}

/// The deterministic overloaded serving run behind the goldens — the
/// same admission-control shape as `golden_faas.rs` at a size that
/// keeps eight swept replay scenarios fast.
fn recorded_trace(threads: usize) -> Vec<u8> {
    let mut config = FrontDoorConfig::new(11);
    config.invocations = 600;
    config.process = ArrivalProcess::parse("bursty:2000").expect("golden process parses");
    config.shed_horizon = SimDuration::from_millis(200);
    config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
    config.threads = threads;
    let (_report, trace) = FrontDoor::new(FunctionRegistry::benchmark_suite(), config)
        .run_recorded(1.0);
    trace
}

fn golden_options() -> PlanOptions {
    PlanOptions { sweeps: vec!["boards=1..8".to_owned()], slo_target: 0.95, replays: 3 }
}

fn golden_report(threads: usize) -> PlanReport {
    plan(&recorded_trace(threads), &golden_options()).expect("golden trace plans")
}

#[test]
fn plan_renders_match_goldens_for_every_thread_count() {
    let report = golden_report(1);
    for (format, name) in [
        (PlanFormat::Text, "plan_report.txt"),
        (PlanFormat::Markdown, "plan_report.md"),
        (PlanFormat::Json, "plan_report.json"),
    ] {
        let fresh = render_plan(&report, format);
        let pinned = golden(name, &fresh);
        assert_eq!(
            fresh, pinned,
            "plan render drifted from tests/goldens/{name} \
             (regenerate with NIMBLOCK_REGEN_GOLDENS=1 if the change is intentional)"
        );
    }
    // The recorded trace — and therefore the whole plan — is invariant
    // under the worker-thread count that served the recorded day.
    let oracle = recorded_trace(1);
    for threads in [2, 8] {
        let trace = recorded_trace(threads);
        // Traces differ only in the recorded thread count (one header
        // field), so the planner's output must not: replaying is defined
        // to be thread-count-invariant.
        assert_ne!(trace, oracle, "thread count is recorded in the header");
        let report = golden_report(threads);
        for format in [PlanFormat::Text, PlanFormat::Markdown, PlanFormat::Json] {
            let fresh = render_plan(&report, format);
            let pinned = golden(
                match format {
                    PlanFormat::Text => "plan_report.txt",
                    PlanFormat::Markdown => "plan_report.md",
                    PlanFormat::Json => "plan_report.json",
                },
                &fresh,
            );
            assert_eq!(fresh, pinned, "plan over a {threads}-thread trace diverged");
        }
    }
}

#[test]
fn golden_plan_upholds_its_claims() {
    let report = golden_report(1);
    assert_eq!(
        report.replay_check, "byte-identical",
        "replaying the unmodified configuration must reproduce the embedded report"
    );
    assert_eq!(report.records, 600);
    assert_eq!(report.scenarios.len(), 8, "boards=1..8 sweeps eight scenarios");
    assert_eq!(report.sampled_replays, 3);
    // Every sampled exact replay sits within the published error bound.
    for row in report.scenarios.iter().filter(|row| row.exact.is_some()) {
        let exact = row.exact.as_ref().unwrap();
        let error = (row.predicted.offered_attainment - exact.offered_attainment).abs() * 100.0;
        assert!(
            error <= report.error_bound_pp + 1e-9,
            "boards={} error {error:.3}pp exceeds the bound {:.3}pp",
            row.boards,
            report.error_bound_pp
        );
    }
    // More boards never predict lower attainment for this stream.
    for pair in report.scenarios.windows(2) {
        assert!(
            pair[1].predicted.offered_attainment >= pair[0].predicted.offered_attainment - 1e-9,
            "attainment regressed from {} to {} boards",
            pair[0].boards,
            pair[1].boards
        );
    }
}
