//! Golden-file tests for the continuous monitor: the windowed time-series
//! document of a deterministic monitored run, and a committed post-mortem
//! bundle derived from an adversarial invariant fixture.
//!
//! The series golden shares the stimulus of `golden_roundtrip.rs` /
//! `golden_telemetry.rs` (seed 7, 3 events, batch 2, 100 ms spacing) so
//! one deterministic run anchors every wire format. The post-mortem
//! golden reuses the `double_booked_slot` adversarial trace: the bundle
//! a production run would dump when that schedule trips the
//! slot-exclusivity invariant. Regenerate after an *intentional* format
//! change:
//!
//! ```text
//! NIMBLOCK_REGEN_GOLDENS=1 cargo test -q --test golden_monitor
//! ```
//!
//! Everything here is keyed by virtual time only — reruns on any machine
//! must reproduce the goldens byte-for-byte.

use std::path::PathBuf;

use nimblock::analyze::ExplainFormat;
use nimblock::core::{post_mortem, NimblockScheduler, Testbed, Trace};
use nimblock::obs::{parse_rules, MonitorConfig, MonitorDoc, MonitorHandle};
use nimblock::sim::SimDuration;
use nimblock::workload::fixed_batch_sequence;

fn repo_path(parts: &[&str]) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests");
    for part in parts {
        path.push(part);
    }
    path
}

/// Reads the golden, or rewrites it when `NIMBLOCK_REGEN_GOLDENS` is set.
fn golden(name: &str, fresh: &str) -> String {
    let path = repo_path(&["goldens", name]);
    if std::env::var("NIMBLOCK_REGEN_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fresh).unwrap();
    }
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with NIMBLOCK_REGEN_GOLDENS=1",
            path.display()
        )
    })
}

/// The deterministic monitored run behind the series golden: the shared
/// golden stimulus under 5 s windows (the run spans ~90 s of virtual
/// time, so ~19 windows keep the golden reviewable while still
/// exercising the multi-window series) with one rule from each SLO
/// family attached.
fn monitored_doc() -> MonitorDoc {
    let events = fixed_batch_sequence(7, 3, 2, SimDuration::from_millis(100));
    let config = MonitorConfig::with_window_micros(5_000_000).rules(
        parse_rules(&[
            "util>=20%".into(),
            "queue<=4".into(),
            "resp:med:p95<=50ms".into(),
            "burn:med:p50<=100ms@3/5".into(),
        ])
        .expect("golden SLO rules parse"),
    );
    let monitor = MonitorHandle::new(config, 0);
    Testbed::new(NimblockScheduler::default())
        .with_monitor(monitor.clone())
        .run(&events);
    monitor.to_doc()
}

#[test]
fn windowed_series_matches_golden() {
    let doc = monitored_doc();
    let fresh = nimblock_ser::to_string_pretty(&doc);
    let golden = golden("timeseries.json", &fresh);
    assert_eq!(
        fresh, golden,
        "monitor series drifted from tests/goldens/timeseries.json"
    );
    // The golden stays loadable as a document, and the document is
    // self-consistent: full window coverage, alerts only for attached
    // rules, nothing silently dropped.
    let parsed: MonitorDoc = nimblock_ser::from_str(&golden).unwrap();
    assert_eq!(parsed, doc);
    assert_eq!(parsed.dropped, 0, "windows must fit the capacity bound");
    assert!(!parsed.windows.is_empty());
    assert_eq!(parsed.rules.len(), 4);
    for alert in &parsed.alerts {
        assert!(parsed.rules.contains(&alert.rule), "alert for unknown rule");
    }
}

#[test]
fn rerunning_the_monitored_run_is_byte_identical() {
    // The virtual-time-only guarantee, directly: two fresh processes'
    // worth of state produce the same bytes.
    assert_eq!(
        nimblock_ser::to_string_pretty(&monitored_doc()),
        nimblock_ser::to_string_pretty(&monitored_doc()),
    );
}

/// Builds the post-mortem bundle a run would dump when the
/// `double_booked_slot` adversarial schedule trips the verifier.
fn fixture_post_mortem() -> MonitorDoc {
    let path = repo_path(&["fixtures", "double_booked_slot.json"]);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let trace: Trace = nimblock_ser::from_str(&text).expect("fixture parses as a trace");

    let config = nimblock::analyze::InvariantConfig::default();
    let report = nimblock::analyze::verify_trace(&trace, &config);
    let violation = report.violations.first().expect("fixture violates an invariant");
    // Mirror the CLI: the trigger quotes the first violation, the span
    // tree implicates the first violation that names an application.
    post_mortem(
        &trace,
        MonitorConfig::default(),
        &format!("invariant: {} — {}", violation.rule, violation.message),
        report.violations.iter().find_map(|v| v.app),
    )
}

#[test]
fn post_mortem_bundle_matches_golden_and_round_trips() {
    let doc = fixture_post_mortem();
    let fresh = nimblock_ser::to_string_pretty(&doc);
    let golden = golden("postmortem.json", &fresh);
    assert_eq!(
        fresh, golden,
        "post-mortem bundle drifted from tests/goldens/postmortem.json"
    );

    // The acceptance criterion: the committed bundle round-trips through
    // `analyze monitor` — it parses back as a document and renders in
    // every format with the trigger and the implicated span tree intact.
    let parsed: MonitorDoc = nimblock_ser::from_str(&golden).unwrap();
    assert_eq!(parsed, doc);
    let trigger = parsed.trigger.as_deref().expect("bundle records its trigger");
    assert!(trigger.starts_with("invariant:"), "{trigger}");
    let tree = parsed.span_tree.as_deref().expect("failing app has a span tree");
    assert!(tree.contains("app#0"), "{tree}");

    for format in [ExplainFormat::Text, ExplainFormat::Markdown, ExplainFormat::Json] {
        let rendered = nimblock::analyze::render_monitor(&parsed, format);
        assert!(rendered.contains("slot-overlap"), "{format:?}:\n{rendered}");
    }
    let text = nimblock::analyze::render_monitor(&parsed, ExplainFormat::Text);
    assert!(text.contains("post-mortem trigger:"), "{text}");
    assert!(text.contains("implicated span tree"), "{text}");
    assert!(text.contains("flight recorder"), "{text}");
}
