//! Validates the hardware constraints of real schedules from their traces:
//! the configuration port is exclusive and no slot ever runs two things at
//! once, under every policy and stimulus.

use nimblock::core::{Scheduler, Testbed, TraceEvent};
use nimblock::workload::{generate, Scenario};

fn policies() -> Vec<Box<dyn Scheduler>> {
    use nimblock::core::*;
    vec![
        Box::new(NoSharingScheduler::new()),
        Box::new(FcfsScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(PremaScheduler::new()),
        Box::new(NimblockScheduler::default()),
        Box::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining())),
    ]
}

#[test]
fn every_policy_produces_a_hardware_legal_schedule() {
    for scenario in Scenario::ALL {
        let events = generate(77, 10, scenario);
        for scheduler in policies() {
            let name = scheduler.name();
            let (_, trace) = Testbed::new(scheduler).run_traced(&events);
            trace
                .validate()
                .unwrap_or_else(|err| panic!("{name} on {}: {err}", scenario.name()));
        }
    }
}

#[test]
fn traced_item_counts_match_batch_sizes() {
    let events = generate(78, 8, Scenario::Stress);
    let (report, trace) = Testbed::new(nimblock::core::NimblockScheduler::default())
        .run_traced(&events);
    // Items traced per application == batch × task count (work conservation
    // visible in the trace, not just the aggregate counters).
    for record in report.records() {
        let app_id = trace
            .events()
            .iter()
            .find_map(|e| match e {
                TraceEvent::Arrival { app, name, .. } if *name == record.app_name => Some(*app),
                _ => None,
            });
        let Some(_) = app_id else { continue };
        // Count items across ALL apps and compare totals below instead
        // (names repeat across events).
    }
    let total_items: usize = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Item { .. }))
        .count();
    let expected: usize = report
        .records()
        .iter()
        .map(|r| {
            let app = nimblock::app::benchmarks::by_name(&r.app_name).unwrap();
            app.graph().task_count() * r.batch_size as usize
        })
        .sum();
    assert_eq!(total_items, expected);
}

#[test]
fn preemptions_in_trace_match_record_counters() {
    let events = generate(79, 12, Scenario::Stress);
    let (report, trace) = Testbed::new(nimblock::core::NimblockScheduler::default())
        .run_traced(&events);
    let traced: usize = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Preempt { .. }))
        .count();
    let recorded: u32 = report.records().iter().map(|r| r.preemptions).sum();
    assert_eq!(traced as u32, recorded);
}

#[test]
fn trace_times_are_monotone() {
    let events = generate(80, 6, Scenario::RealTime);
    let (_, trace) = Testbed::new(nimblock::core::PremaScheduler::new()).run_traced(&events);
    for pair in trace.events().windows(2) {
        assert!(pair[0].at() <= pair[1].at());
    }
}

#[test]
fn arrival_and_retire_bracket_every_application() {
    let events = generate(81, 6, Scenario::Standard);
    let (report, trace) = Testbed::new(nimblock::core::FcfsScheduler::new()).run_traced(&events);
    let arrivals = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Arrival { .. }))
        .count();
    let retires = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Retire { .. }))
        .count();
    assert_eq!(arrivals, report.records().len());
    assert_eq!(retires, report.records().len());
}
