//! Property tests for the response-time attribution engine: the six
//! components must sum *exactly* (integer microseconds) to every
//! application's measured response time, for every policy the paper
//! evaluates, on randomized contended workloads — plus an adversarial
//! preemption fixture where the victim's `preemption_loss` must be
//! visible, and structural checks on the derived span trees.

use nimblock_check::{check, prop_assert, prop_assert_eq, Gen};

use nimblock::app::{benchmarks, Priority};
use nimblock::core::{
    attribute_trace, span_trees, FcfsScheduler, NimblockConfig, NimblockScheduler,
    NoSharingScheduler, PremaScheduler, RoundRobinScheduler, Scheduler, Testbed,
    TraceEvent,
};
use nimblock::fpga::DeviceConfig;
use nimblock::obs::SpanKind;
use nimblock::sim::SimTime;
use nimblock::workload::{generate, ArrivalEvent, EventSequence, Scenario};

/// The five policies of the paper's evaluation (Fig. 5) plus the Nimblock
/// ablation without pipelining: attribution must be exact on all of them.
fn policies() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(NoSharingScheduler::new()),
        Box::new(FcfsScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(PremaScheduler::new()),
        Box::new(NimblockScheduler::default()),
        Box::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining())),
    ]
}

/// A randomized contended workload: few slots, stress/realtime arrival
/// bursts — the regime where queueing, CAP serialization, and preemption
/// all show up in the decomposition.
fn arb_stimulus(g: &mut Gen) -> (EventSequence, usize) {
    let seed = g.u64(0..=u64::MAX);
    let events = g.usize(3..=9);
    let scenario = match g.usize(0..=2) {
        0 => Scenario::Standard,
        1 => Scenario::Stress,
        _ => Scenario::RealTime,
    };
    let slots = g.usize(3..=10);
    (generate(seed, events, scenario), slots)
}

#[test]
fn components_sum_exactly_for_every_policy_on_random_workloads() {
    check("components_sum_exactly_for_every_policy", |g| {
        let (events, slots) = arb_stimulus(g);
        let config = DeviceConfig::zcu106().with_slot_count(slots);
        for policy in policies() {
            let name = policy.name().to_owned();
            let (report, trace) = Testbed::new(policy)
                .with_device_config(config.clone())
                .run_traced(&events);
            let summary = attribute_trace(&trace);
            prop_assert_eq!(summary.apps.len(), events.len());
            prop_assert!(summary.is_exact(), "inexact decomposition under {name}");
            // Each app's attributed response equals the report's measured
            // response, and the integer identity holds app by app.
            for (app, record) in summary.apps.iter().zip(report.records()) {
                prop_assert_eq!(app.event_index, record.event_index);
                prop_assert_eq!(app.response_micros, record.response_time().as_micros());
                prop_assert!(
                    app.components.sums_to(app.response_micros),
                    "components of {app_name} do not sum under {name}",
                    app_name = app.app_name
                );
            }
            // The testbed wires the same summary into the report.
            prop_assert_eq!(report.attribution(), Some(&summary));
        }
        Ok(())
    });
}

#[test]
fn per_priority_buckets_partition_the_totals() {
    check("per_priority_buckets_partition_the_totals", |g| {
        let (events, slots) = arb_stimulus(g);
        let (_, trace) = Testbed::new(NimblockScheduler::default())
            .with_device_config(DeviceConfig::zcu106().with_slot_count(slots))
            .run_traced(&events);
        let summary = attribute_trace(&trace);
        let weights: Vec<u32> = summary.per_priority.iter().map(|b| b.weight).collect();
        prop_assert_eq!(weights, vec![1, 3, 9]);
        let bucket_apps: u64 = summary.per_priority.iter().map(|b| b.apps).sum();
        prop_assert_eq!(bucket_apps as usize, summary.apps.len());
        let bucket_response: u64 = summary
            .per_priority
            .iter()
            .map(|b| b.response_micros)
            .sum();
        prop_assert_eq!(bucket_response, summary.response_micros);
        let folded = summary
            .per_priority
            .iter()
            .fold(nimblock::metrics::AttributionComponents::default(), |acc, b| {
                acc.merged(b.components)
            });
        prop_assert_eq!(folded, summary.totals);
        Ok(())
    });
}

#[test]
fn span_trees_cover_every_retired_app_within_its_lifetime() {
    check("span_trees_cover_every_retired_app", |g| {
        let (events, slots) = arb_stimulus(g);
        let (report, trace) = Testbed::new(NimblockScheduler::default())
            .with_device_config(DeviceConfig::zcu106().with_slot_count(slots))
            .run_traced(&events);
        let trees = span_trees(&trace);
        prop_assert_eq!(trees.len(), report.records().len());
        for (root, record) in trees.iter().zip(report.records()) {
            prop_assert!(root.critical, "the app root is always on the critical path");
            prop_assert_eq!(root.kind, SpanKind::App);
            prop_assert_eq!(root.duration_us(), record.response_time().as_micros());
            // Children nest inside the root and are sorted by start time.
            let mut last_start = 0u64;
            for child in &root.children {
                prop_assert!(child.start_us >= root.start_us);
                prop_assert!(child.end_us <= root.end_us);
                prop_assert!(child.start_us >= last_start, "children sorted by start");
                last_start = child.start_us;
            }
        }
        Ok(())
    });
}

/// Adversarial fixture: a low-priority app occupies a two-slot device when
/// high-priority arrivals force the Nimblock policy to batch-preempt *all*
/// of its slots. Unlike a wide pipelined monopolist (whose surviving tasks
/// keep it busy through the eviction), a fully evicted victim sits idle —
/// the decomposition must make that window visible as nonzero
/// `preemption_loss`.
#[test]
fn preempted_monopolist_shows_nonzero_preemption_loss() {
    let events = EventSequence::new(vec![
        ArrivalEvent::new(benchmarks::lenet(), 30, Priority::Low, SimTime::ZERO),
        ArrivalEvent::new(
            benchmarks::lenet(),
            2,
            Priority::High,
            SimTime::from_millis(1_000),
        ),
        ArrivalEvent::new(
            benchmarks::lenet(),
            2,
            Priority::High,
            SimTime::from_millis(1_300),
        ),
    ]);
    let config = DeviceConfig::zcu106().with_slot_count(2);
    let (report, trace) = Testbed::new(NimblockScheduler::default())
        .with_device_config(config)
        .run_traced(&events);
    let preempts = trace
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Preempt { .. }))
        .count();
    assert!(preempts > 0, "the fixture must actually force a preemption");
    let summary = attribute_trace(&trace);
    assert!(summary.is_exact());
    let victim = summary
        .apps
        .iter()
        .find(|a| a.event_index == 0)
        .expect("monopolist retired");
    assert!(
        victim.components.preemption_loss > 0,
        "the evicted window must be attributed: {:?}",
        victim.components
    );
    // The corresponding report record counts the same preemptions.
    let record = report
        .records()
        .iter()
        .find(|r| r.event_index == 0)
        .unwrap();
    assert!(record.preemptions > 0);
    // And the victim's span tree carries an explicit preemption span.
    let trees = span_trees(&trace);
    let root = &trees[victim.event_index];
    fn has_preempt(span: &nimblock::obs::Span) -> bool {
        span.kind == SpanKind::Preempt || span.children.iter().any(has_preempt)
    }
    assert!(has_preempt(root), "missing Preempt span:\n{}", root.render());
}

#[test]
fn attribution_is_deterministic_and_instrumentation_free() {
    // Same stimulus, same policy: byte-identical attribution; and running
    // with a metrics registry attached must not change the decomposition.
    let events = generate(41, 8, Scenario::Stress);
    let (r1, t1) = Testbed::new(PremaScheduler::new()).run_traced(&events);
    let registry = nimblock::obs::Registry::new();
    let (r2, t2) = Testbed::new(PremaScheduler::new())
        .with_metrics(registry)
        .run_traced(&events);
    assert_eq!(attribute_trace(&t1), attribute_trace(&t2));
    assert_eq!(r1.attribution(), r2.attribution());
    assert_eq!(
        nimblock_ser::to_string_pretty(&attribute_trace(&t1)),
        nimblock_ser::to_string_pretty(&attribute_trace(&t2))
    );
}
