//! Golden-file test for the serving front door (DESIGN.md §17): a fixed
//! overloaded stream's full serving report — counters, per-class
//! attainment with response quantiles, shed explanations, and per-tenant
//! admission outcomes — pinned byte-for-byte, and required to be
//! identical for `--cluster-threads` 1, 2, and 8.
//!
//! The stimulus deliberately overloads the cluster (a bursty stream far
//! beyond the benchmark mix's ~0.1/s capacity, with rate limits and a
//! tight shed horizon engaged), so the golden pins every admission-control
//! path at once: admits, backlog sheds, deadline sheds, and both
//! rejection kinds. Regenerate after an *intentional* format change:
//!
//! ```text
//! NIMBLOCK_REGEN_GOLDENS=1 cargo test -q --test golden_faas
//! ```
//!
//! Everything is keyed by virtual time only — reruns on any machine must
//! reproduce the golden byte-for-byte.

use std::path::PathBuf;

use nimblock::faas::{FrontDoor, FrontDoorConfig, FrontDoorReport, FunctionRegistry, TenantPolicy};
use nimblock::sim::SimDuration;
use nimblock::workload::ArrivalProcess;

fn repo_path(parts: &[&str]) -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests");
    for part in parts {
        path.push(part);
    }
    path
}

/// Reads the golden, or rewrites it when `NIMBLOCK_REGEN_GOLDENS` is set.
fn golden(name: &str, fresh: &str) -> String {
    let path = repo_path(&["goldens", name]);
    if std::env::var("NIMBLOCK_REGEN_GOLDENS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, fresh).unwrap();
    }
    std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with NIMBLOCK_REGEN_GOLDENS=1",
            path.display()
        )
    })
}

/// The deterministic overloaded run behind the golden.
fn golden_config(threads: usize) -> FrontDoorConfig {
    let mut config = FrontDoorConfig::new(11);
    config.invocations = 5_000;
    config.process = ArrivalProcess::parse("bursty:2000").expect("golden process parses");
    config.shed_horizon = SimDuration::from_millis(200);
    config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
    config.threads = threads;
    config
}

fn serving_report(threads: usize) -> FrontDoorReport {
    FrontDoor::new(FunctionRegistry::benchmark_suite(), golden_config(threads)).run()
}

#[test]
fn serving_report_matches_golden_for_every_thread_count() {
    let oracle = nimblock_ser::to_string_pretty(&serving_report(1));
    let pinned = golden("faas_slo.json", &oracle);
    assert_eq!(
        oracle, pinned,
        "sequential serving report drifted from tests/goldens/faas_slo.json \
         (regenerate with NIMBLOCK_REGEN_GOLDENS=1 if the change is intentional)"
    );
    for threads in [2, 8] {
        let parallel = nimblock_ser::to_string_pretty(&serving_report(threads));
        assert_eq!(
            parallel, pinned,
            "front door with {threads} threads diverged from the pinned golden"
        );
    }
}

#[test]
fn golden_report_round_trips_and_upholds_its_claims() {
    let text = golden(
        "faas_slo.json",
        &nimblock_ser::to_string_pretty(&serving_report(1)),
    );
    let report: FrontDoorReport = nimblock_ser::from_str(&text).expect("golden parses");
    assert!(report.conserves(), "pinned report must conserve invocations");
    assert!(report.shed_alert(), "the overloaded golden must shed and explain it");
    assert_eq!(report.counters.offered, 5_000);
    assert!(report.counters.rejected_rate > 0, "rate limits must engage");
    // Re-serializing the parsed report reproduces the file exactly.
    assert_eq!(nimblock_ser::to_string_pretty(&report), text);
}
