//! End-to-end tests of fine-grained (mid-item) preemption, the paper's §7
//! future-work overlay capability.

use nimblock::app::{benchmarks, Priority};
use nimblock::core::{NimblockConfig, NimblockScheduler, Testbed};
use nimblock::sim::{SimDuration, SimTime};
use nimblock::workload::{ArrivalEvent, EventSequence};

/// A long, low-priority digit recognition (65 s items!) holds slots while
/// short high-priority LeNets arrive. Batch-preemption must wait up to an
/// item (65 s); fine-grained preemption stops the item immediately.
fn monopolist_stimulus() -> EventSequence {
    // Four digit recognitions pipeline 12 tasks across the 10 slots, every
    // item taking ~65 s.
    let mut events: Vec<ArrivalEvent> = (0..4u64)
        .map(|i| {
            ArrivalEvent::new(
                benchmarks::digit_recognition(),
                10,
                Priority::Low,
                SimTime::from_millis(i * 100),
            )
        })
        .collect();
    for i in 0..4u64 {
        events.push(ArrivalEvent::new(
            benchmarks::lenet(),
            2,
            Priority::High,
            SimTime::from_millis(200_000 + i * 300),
        ));
    }
    EventSequence::new(events)
}

fn mean_lenet_response(report: &nimblock::metrics::Report) -> f64 {
    let samples: Vec<f64> = report
        .records()
        .iter()
        .filter(|r| r.app_name == "LeNet")
        .map(|r| r.response_time().as_secs_f64())
        .collect();
    samples.iter().sum::<f64>() / samples.len() as f64
}

#[test]
fn fine_preemption_rescues_high_priority_apps_faster() {
    let events = monopolist_stimulus();
    let batch_only = Testbed::new(NimblockScheduler::default()).run(&events);
    let fine = Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
        .with_fine_preemption(SimDuration::from_millis(10))
        .run(&events);
    let batch_mean = mean_lenet_response(&batch_only);
    let fine_mean = mean_lenet_response(&fine);
    assert!(
        fine_mean < batch_mean,
        "fine ({fine_mean:.2}s) must beat batch-only ({batch_mean:.2}s): \
         DR items are 65 s, so batch boundaries are seconds apart in steady state"
    );
}

#[test]
fn checkpointed_progress_is_not_lost() {
    // Work conservation must hold even with mid-item preemption: the
    // preempted item resumes from its checkpoint, so total run time still
    // equals batch x sum of latencies... minus nothing.
    let events = monopolist_stimulus();
    let report = Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
        .with_fine_preemption(SimDuration::from_millis(10))
        .run(&events);
    for record in report.records() {
        let app = benchmarks::by_name(&record.app_name).unwrap();
        let expected = app
            .graph()
            .total_latency()
            .saturating_mul(u64::from(record.batch_size));
        assert_eq!(
            record.run_time, expected,
            "{}: checkpointed work must be conserved",
            record.app_name
        );
    }
}

#[test]
fn fine_preemption_actually_preempts_running_items() {
    let events = monopolist_stimulus();
    let report = Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
        .with_fine_preemption(SimDuration::from_millis(10))
        .run(&events);
    let dr_preemptions: u32 = report
        .records()
        .iter()
        .filter(|r| r.app_name == "DigitRecognition")
        .map(|r| r.preemptions)
        .sum();
    assert!(dr_preemptions > 0, "some monopolist must get preempted");
    assert_eq!(report.scheduler(), "NimblockFine");
}

#[test]
fn checkpoint_cost_shows_up_in_response_times() {
    let events = monopolist_stimulus();
    let cheap = Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
        .with_fine_preemption(SimDuration::ZERO)
        .run(&events);
    let expensive = Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
        .with_fine_preemption(SimDuration::from_millis(500))
        .run(&events);
    // Same schedule structure, strictly more overhead per preemption.
    assert!(expensive.finished_at() >= cheap.finished_at());
}

#[test]
#[should_panic(expected = "without a checkpoint-capable overlay")]
fn fine_policy_on_baseline_overlay_is_a_contract_violation() {
    // The policy asks for mid-item preemption but the testbed models the
    // baseline overlay: the hypervisor must fail loudly.
    let events = monopolist_stimulus();
    let _ = Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
        .run(&events);
}

#[test]
fn traces_remain_hardware_legal_under_fine_preemption() {
    let events = monopolist_stimulus();
    let (_, trace) = Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
        .with_fine_preemption(SimDuration::from_millis(10))
        .run_traced(&events);
    // Aborted items leave truncated spans in the trace; slot exclusivity
    // must still hold for the *started* spans versus reconfigurations
    // (reconfiguration begins only after the checkpoint completes).
    // Note: an aborted item's traced span extends past the preemption
    // point, so only CAP exclusivity is asserted here.
    let mut cap = trace.cap_spans();
    cap.sort();
    for pair in cap.windows(2) {
        assert!(pair[1].0 >= pair[0].1, "CAP overlap under fine preemption");
    }
}
