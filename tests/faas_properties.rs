//! Property tests for the serving front door (DESIGN.md §17): admission
//! control, load shedding, and the SLO attainment curve on randomized
//! arrival streams.
//!
//! Three families of invariant, each over randomized configurations:
//!
//! * **conservation** — every offered invocation is accounted for exactly
//!   once: `offered = admitted + shed + rejected`, with the per-class and
//!   per-tenant breakdowns summing back to the totals,
//! * **quota safety** — no tenant's in-flight high-water mark ever exceeds
//!   its configured quota, no matter how bursty the stream,
//! * **degradation monotonicity** — the offered-attainment curve never
//!   rises as the load factor grows, and the serving report is
//!   byte-identical for every worker-thread count.

use nimblock::faas::{FrontDoor, FrontDoorConfig, FunctionRegistry, TenantPolicy};
use nimblock::sim::SimDuration;
use nimblock::workload::ArrivalProcess;
use nimblock_check::{check, prop_assert, prop_assert_eq, Gen};

/// A randomized front-door configuration. Arrival rates span calm
/// (fractions of the cluster's ~0.1/s capacity for the paper's benchmark
/// mix) through catastrophic overload, so both the admit-heavy and the
/// shed-heavy paths are exercised.
fn arb_config(g: &mut Gen) -> FrontDoorConfig {
    let mut config = FrontDoorConfig::new(g.u64(0..=u64::MAX));
    config.invocations = g.u64(200..=3_000);
    let kind = ["steady", "diurnal", "bursty"][g.usize(0..=2)];
    let rate = [0.02, 0.1, 1.0, 50.0, 2000.0][g.usize(0..=4)];
    config.process =
        ArrivalProcess::parse(&format!("{kind}:{rate}")).expect("generated process parses");
    config.tenants = g.usize(1..=6);
    config.boards = g.usize(1..=6);
    config.slots_per_board = g.usize(1..=4);
    config.max_items = g.u32(1..=4);
    config.shed_horizon = SimDuration::from_millis(g.u64(20..=120_000));
    config.chunk = g.usize(64..=4_096);
    config
}

fn arb_policy(g: &mut Gen) -> TenantPolicy {
    TenantPolicy {
        rate_per_sec: [0.0, 0.05, 1.0, 300.0][g.usize(0..=3)],
        burst: g.u64(1..=64),
        quota: g.u64(0..=8),
    }
}

#[test]
fn serving_counters_conserve_on_random_streams() {
    check("serving_counters_conserve", |g| {
        let mut config = arb_config(g);
        config.tenant_policy = arb_policy(g);
        let offered = config.invocations;
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run();
        prop_assert!(report.conserves(), "offered != admitted + shed + rejected");
        prop_assert_eq!(report.counters.offered, offered);
        // The per-class rows cover every admitted and shed invocation.
        let class_admitted: u64 = report.classes.iter().map(|c| c.admitted).sum();
        let class_shed: u64 = report.classes.iter().map(|c| c.shed).sum();
        prop_assert_eq!(class_admitted, report.counters.admitted);
        prop_assert_eq!(class_shed, report.counters.shed());
        // The per-tenant rows cover every offer and every rejection.
        let tenant_offered: u64 = report.tenants.iter().map(|t| t.offered).sum();
        let tenant_rejected: u64 = report
            .tenants
            .iter()
            .map(|t| t.rejected_rate + t.rejected_quota)
            .sum();
        prop_assert_eq!(tenant_offered, report.counters.offered);
        prop_assert_eq!(tenant_rejected, report.counters.rejected());
        // Every shed is explained by its class's attribution budget.
        let explained: u64 = report.shed_explanations.iter().map(|e| e.sheds).sum();
        prop_assert_eq!(explained, report.counters.shed());
        for explanation in &report.shed_explanations {
            prop_assert!(
                explanation.explains(),
                "class {} sheds are not covered by their budget",
                explanation.class_name
            );
        }
        Ok(())
    });
}

#[test]
fn quotas_are_never_exceeded_under_randomized_bursts() {
    check("quota_high_water_mark", |g| {
        let mut config = arb_config(g);
        // Always bursty, always a finite quota: the adversarial case.
        config.process = ArrivalProcess::parse("bursty:2000").expect("parses");
        let quota = g.u64(1..=6);
        config.tenant_policy = TenantPolicy { rate_per_sec: 0.0, burst: 1, quota };
        let report = FrontDoor::new(FunctionRegistry::benchmark_suite(), config).run();
        for tenant in &report.tenants {
            prop_assert!(
                tenant.peak_in_flight <= quota,
                "tenant {} peaked at {} over quota {quota}",
                tenant.tenant,
                tenant.peak_in_flight
            );
        }
        prop_assert!(report.conserves());
        Ok(())
    });
}

#[test]
fn offered_attainment_never_rises_with_load() {
    check("offered_attainment_monotone", |g| {
        let mut config = FrontDoorConfig::new(g.u64(0..=u64::MAX));
        config.invocations = g.u64(300..=1_500);
        config.process = ArrivalProcess::parse("steady:0.05").expect("parses");
        config.shed_horizon = SimDuration::from_secs(g.u64(10..=120));
        let door = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
        let curve = door.run_curve(&[0.25, 1.0, 4.0, 16.0]);
        prop_assert!(
            curve.attainment_monotone(0.02),
            "offered attainment rose with load: {:?}",
            curve
                .points
                .iter()
                .map(|p| p.offered_attainment)
                .collect::<Vec<_>>()
        );
        for point in &curve.points {
            prop_assert!(point.counters.conserves());
        }
        Ok(())
    });
}

#[test]
fn serving_reports_are_thread_count_invariant_on_random_configs() {
    check("front_door_thread_invariance", |g| {
        let mut config = arb_config(g);
        config.tenant_policy = arb_policy(g);
        config.threads = 1;
        let oracle = nimblock_ser::to_string_pretty(
            &FrontDoor::new(FunctionRegistry::benchmark_suite(), config.clone()).run(),
        );
        for threads in [g.usize(2..=4), 8, 0] {
            let mut parallel = config.clone();
            parallel.threads = threads;
            let fresh = nimblock_ser::to_string_pretty(
                &FrontDoor::new(FunctionRegistry::benchmark_suite(), parallel).run(),
            );
            prop_assert!(
                fresh == oracle,
                "front door with {threads} threads diverged from the oracle"
            );
        }
        Ok(())
    });
}

/// Record/replay round trip (DESIGN.md §18): on randomized seeds,
/// arrival processes, fleet shapes, routing policies, and admission
/// policies, replaying a recorded trace through the configuration
/// rebuilt from its own header reproduces the live run's report
/// byte-for-byte — and matches the report embedded in the trace footer.
#[test]
fn recorded_traces_replay_byte_identically() {
    use nimblock::cluster::DispatchPolicy;
    use nimblock::obs::record::TraceReader;
    use nimblock::sim::SimTime;

    check("record_replay_byte_identity", |g| {
        let mut config = arb_config(g);
        config.tenant_policy = arb_policy(g);
        config.policy = [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::FewestApps,
            DispatchPolicy::LeastOutstanding,
            DispatchPolicy::CacheAware,
        ][g.usize(0..=3)];
        config.invocations = g.u64(100..=600);
        let load = [0.5, 1.0, 4.0][g.usize(0..=2)];

        let door = FrontDoor::new(FunctionRegistry::benchmark_suite(), config);
        let (live, trace) = door.run_recorded(load);
        let live_json = nimblock_ser::to_string_pretty(&live);

        let reader = TraceReader::parse(&trace).map_err(|e| format!("trace parses: {e}"))?;
        prop_assert_eq!(reader.report_json(), Some(live_json.as_str()));
        let rebuilt = FrontDoorConfig::from_trace_header(reader.header())
            .map_err(|e| format!("header rebuilds: {e}"))?;
        prop_assert_eq!(rebuilt, config);

        let offered: Vec<_> = reader
            .records()
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("records decode: {e}"))?
            .into_iter()
            .map(|record| nimblock::faas::OfferedInvocation {
                at: SimTime::from_micros(record.arrival_micros),
                function: record.function as usize,
                items: record.items,
                tenant: record.tenant as usize,
            })
            .collect();
        prop_assert_eq!(offered.len() as u64, config.invocations);
        let replayed = FrontDoor::new(FunctionRegistry::benchmark_suite(), rebuilt)
            .replay(reader.header().load_factor, offered.into_iter());
        prop_assert_eq!(nimblock_ser::to_string_pretty(&replayed), live_json);
        Ok(())
    });
}
