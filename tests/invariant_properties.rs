//! Property tests wiring the invariant verifier into the paper's five
//! scheduling policies: on randomized workloads every policy must produce a
//! schedule the verifier certifies clean — including the exact 80 ms
//! configuration-port serialization latency and, because the shipped
//! baselines are structurally well-behaved, the Nimblock-policy rules too.
//!
//! The second half checks the verifier's *sensitivity*: corrupting a clean
//! trace (duplicating an executed item, dropping a retirement) must always
//! be caught, so a clean report means something.

use nimblock_check::{check, check_with, prop_assert, Config, Gen};

use nimblock::analyze::invariants::{verify_trace, InvariantConfig, InvariantReport};
use nimblock::core::{
    FcfsScheduler, NimblockConfig, NimblockScheduler, NoSharingScheduler, PremaScheduler,
    RoundRobinScheduler, Scheduler, Testbed, Trace, TraceEvent,
};
use nimblock::fpga::DeviceConfig;
use nimblock::sim::SimDuration;
use nimblock::workload::{generate, Scenario};

/// The five policies the paper evaluates (Fig. 5), plus the Nimblock
/// ablation without pipelining — every one must uphold every invariant.
fn policies() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(NoSharingScheduler::new()),
        Box::new(FcfsScheduler::new()),
        Box::new(RoundRobinScheduler::new()),
        Box::new(PremaScheduler::new()),
        Box::new(NimblockScheduler::default()),
        Box::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining())),
    ]
}

/// Full-strength verification: every rule on, plus the exact nominal
/// reconfiguration latency of the modelled ZCU106 (bitstreams are
/// pre-loaded, so every port occupancy is exactly 80 ms).
fn full_config() -> InvariantConfig {
    InvariantConfig::default().with_reconfig_latency(SimDuration::from_millis(80))
}

fn arb_stimulus(g: &mut Gen) -> (u64, usize, Scenario) {
    let seed = g.u64(0..=u64::MAX);
    let n_events = g.usize(1..=8);
    let scenario = Scenario::ALL[g.usize(0..=Scenario::ALL.len() - 1)];
    (seed, n_events, scenario)
}

#[test]
fn every_policy_upholds_every_invariant_on_random_workloads() {
    // 64 cases × 6 policies keeps the sweep broad without dominating the
    // suite's wall clock; NIMBLOCK_CHECK_CASES still overrides.
    check_with(Config::new().cases(64), "every_policy_upholds_every_invariant_on_random_workloads", |g| {
        let (seed, n_events, scenario) = arb_stimulus(g);
        let events = generate(seed, n_events, scenario);
        for scheduler in policies() {
            let name = scheduler.name();
            let (_, trace) = Testbed::new(scheduler).run_traced(&events);
            let report = verify_trace(&trace, &full_config());
            prop_assert!(
                report.is_clean(),
                "{name} on {} (seed {seed}, {n_events} events):\n{report}",
                scenario.name()
            );
            prop_assert!(report.events_checked > 0);
        }
        Ok(())
    });
}

/// Invariants hold on smaller boards too, where contention (and hence
/// preemption under the sharing policies) is much more frequent.
#[test]
fn invariants_hold_under_slot_pressure() {
    check_with(Config::new().cases(64), "invariants_hold_under_slot_pressure", |g| {
        let (seed, n_events, scenario) = arb_stimulus(g);
        let slots = g.usize(2..=4);
        let events = generate(seed, n_events, scenario);
        for scheduler in policies() {
            let name = scheduler.name();
            let (_, trace) = Testbed::new(scheduler)
                .with_device_config(DeviceConfig::zcu106().with_slot_count(slots))
                .run_traced(&events);
            let report = verify_trace(&trace, &full_config());
            prop_assert!(
                report.is_clean(),
                "{name} on {} with {slots} slots (seed {seed}):\n{report}",
                scenario.name()
            );
        }
        Ok(())
    });
}

fn reverify(events: Vec<TraceEvent>, slots: usize) -> InvariantReport {
    let mut mutated = Trace::with_slots(slots);
    for event in events {
        mutated.record(event);
    }
    verify_trace(&mutated, &full_config())
}

/// Sensitivity: duplicating any executed batch item in an otherwise clean
/// trace must be detected (token conservation and/or slot exclusivity).
#[test]
fn duplicated_items_never_verify_clean() {
    check("duplicated_items_never_verify_clean", |g| {
        let (seed, n_events, scenario) = arb_stimulus(g);
        let events = generate(seed, n_events, scenario);
        let (_, trace) = Testbed::new(NimblockScheduler::default()).run_traced(&events);
        let slots = trace.slots();
        let items: Vec<usize> = trace
            .events()
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, TraceEvent::Item { .. }).then_some(i))
            .collect();
        if items.is_empty() {
            return Ok(());
        }
        let victim = items[g.usize(0..=items.len() - 1)];
        let mut mutated: Vec<TraceEvent> = trace.events().to_vec();
        mutated.insert(victim, trace.events()[victim].clone());
        let report = reverify(mutated, slots);
        prop_assert!(
            !report.is_clean(),
            "duplicating item event #{victim} went undetected (seed {seed})"
        );
        Ok(())
    });
}

/// Sensitivity: dropping any retirement from a clean trace must be flagged
/// as a lifecycle violation — no application silently vanishes.
#[test]
fn dropped_retirements_never_verify_clean() {
    check("dropped_retirements_never_verify_clean", |g| {
        let (seed, n_events, scenario) = arb_stimulus(g);
        let events = generate(seed, n_events, scenario);
        let (_, trace) = Testbed::new(NimblockScheduler::default()).run_traced(&events);
        let slots = trace.slots();
        let retires: Vec<usize> = trace
            .events()
            .iter()
            .enumerate()
            .filter_map(|(i, e)| matches!(e, TraceEvent::Retire { .. }).then_some(i))
            .collect();
        if retires.is_empty() {
            return Ok(());
        }
        let victim = retires[g.usize(0..=retires.len() - 1)];
        let mut mutated: Vec<TraceEvent> = trace.events().to_vec();
        mutated.remove(victim);
        let report = reverify(mutated, slots);
        prop_assert!(
            !report.is_clean(),
            "dropping retire event #{victim} went undetected (seed {seed})"
        );
        Ok(())
    });
}
