//! Shared system-memory buffer pool.

use std::collections::HashMap;
use std::fmt;

use nimblock_ser::impl_json_newtype;

use crate::FpgaError;

/// Identifier of an allocated data buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(u64);

impl_json_newtype!(BufferId);

impl BufferId {
    /// Returns the raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// Allocator for the task I/O buffers the hypervisor places in shared DRAM.
///
/// On the evaluated system, tasks read inputs from and write outputs to
/// buffers the hypervisor allocates in PS memory; completed tasks'
/// unneeded buffers are relinquished (paper §2.2). The pool models
/// capacity accounting so that buffer-lifetime bugs in a scheduler surface
/// as [`FpgaError::OutOfMemory`] instead of passing silently.
///
/// # Example
///
/// ```
/// use nimblock_fpga::MemoryPool;
///
/// let mut pool = MemoryPool::new(1 << 20);
/// let buf = pool.alloc(512 << 10)?;
/// assert_eq!(pool.in_use(), 512 << 10);
/// pool.free(buf)?;
/// assert_eq!(pool.in_use(), 0);
/// # Ok::<(), nimblock_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: u64,
    in_use: u64,
    peak: u64,
    live: HashMap<BufferId, u64>,
    next_id: u64,
}

impl MemoryPool {
    /// Creates a pool with `capacity` bytes of allocatable memory.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            in_use: 0,
            peak: 0,
            live: HashMap::new(),
            next_id: 0,
        }
    }

    /// Allocates `size` bytes, returning the buffer identifier.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::OutOfMemory`] if less than `size` bytes remain.
    pub fn alloc(&mut self, size: u64) -> Result<BufferId, FpgaError> {
        let available = self.capacity - self.in_use;
        if size > available {
            return Err(FpgaError::OutOfMemory {
                requested: size,
                available,
            });
        }
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.in_use += size;
        self.peak = self.peak.max(self.in_use);
        self.live.insert(id, size);
        Ok(id)
    }

    /// Releases the buffer `id`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownBuffer`] if `id` is not currently
    /// allocated (double free or foreign identifier).
    pub fn free(&mut self, id: BufferId) -> Result<(), FpgaError> {
        let size = self
            .live
            .remove(&id)
            .ok_or(FpgaError::UnknownBuffer(id.0))?;
        self.in_use -= size;
        Ok(())
    }

    /// Returns the pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Returns the bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Returns the high-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Returns the number of live buffers.
    pub fn live_buffers(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut pool = MemoryPool::new(100);
        let a = pool.alloc(60).unwrap();
        let b = pool.alloc(40).unwrap();
        assert_eq!(pool.in_use(), 100);
        pool.free(a).unwrap();
        pool.free(b).unwrap();
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak(), 100);
    }

    #[test]
    fn alloc_beyond_capacity_fails() {
        let mut pool = MemoryPool::new(10);
        pool.alloc(8).unwrap();
        let err = pool.alloc(4).unwrap_err();
        assert_eq!(err, FpgaError::OutOfMemory { requested: 4, available: 2 });
    }

    #[test]
    fn double_free_is_detected() {
        let mut pool = MemoryPool::new(10);
        let buf = pool.alloc(1).unwrap();
        pool.free(buf).unwrap();
        assert!(matches!(pool.free(buf), Err(FpgaError::UnknownBuffer(_))));
    }

    #[test]
    fn freed_capacity_is_reusable() {
        let mut pool = MemoryPool::new(10);
        let buf = pool.alloc(10).unwrap();
        pool.free(buf).unwrap();
        assert!(pool.alloc(10).is_ok());
    }

    #[test]
    fn zero_sized_allocations_are_fine() {
        let mut pool = MemoryPool::new(0);
        let buf = pool.alloc(0).unwrap();
        assert_eq!(pool.live_buffers(), 1);
        pool.free(buf).unwrap();
    }
}
