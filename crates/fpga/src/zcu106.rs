//! ZCU106 overlay constants (Table 1 of the Nimblock paper).
//!
//! The paper partitions the ZCU106 into ten uniform slots plus a static
//! region. Table 1 reports slot utilization as *ranges* because the ten
//! floorplanned slots differ slightly in the resources they enclose; this
//! module reproduces both the ranges and a deterministic per-slot
//! interpolation between them.

use crate::Resources;

/// Number of reconfigurable slots in the evaluated overlay.
pub const SLOT_COUNT: usize = 10;

/// Minimum resources enclosed by any slot (lower bounds of Table 1).
pub const SLOT_MIN: Resources = Resources {
    dsp: 46,
    lut: 9_680,
    ff: 19_360,
    carry: 1_210,
    ramb18: 44,
    ramb36: 22,
    iobuf: 1_908,
};

/// Maximum resources enclosed by any slot (upper bounds of Table 1).
pub const SLOT_MAX: Resources = Resources {
    dsp: 92,
    lut: 12_960,
    ff: 22_880,
    carry: 1_620,
    ramb18: 46,
    ramb36: 23,
    iobuf: 2_343,
};

/// Resources consumed by the static region (interconnect, decoupling,
/// PS-side plumbing).
pub const STATIC_REGION: Resources = Resources {
    dsp: 1_004,
    lut: 122_560,
    ff: 245_120,
    carry: 15_320,
    ramb18: 172,
    ramb36: 86,
    iobuf: 24_803,
};

/// Average partial-reconfiguration latency measured on the board, in
/// milliseconds ("partial reconfiguration of a slot takes, on average,
/// around 80 ms", paper §5.1).
pub const RECONFIG_MILLIS: u64 = 80;

/// Modelled partial-bitstream size for one slot, in bytes.
///
/// Chosen with [`CAP_BANDWIDTH_BYTES_PER_SEC`] so that size / bandwidth
/// reproduces the measured 80 ms latency.
pub const SLOT_BITSTREAM_BYTES: u64 = 32 << 20;

/// Modelled configuration-access-port bandwidth in bytes per second.
pub const CAP_BANDWIDTH_BYTES_PER_SEC: u64 = (32 << 20) * 1000 / RECONFIG_MILLIS;

/// Scheduling interval at which slot reallocation is triggered, in
/// milliseconds (paper §5.1).
pub const SCHEDULING_INTERVAL_MILLIS: u64 = 400;

/// Returns the resource inventory of slot `index`.
///
/// The ten slots interpolate deterministically between [`SLOT_MIN`] and
/// [`SLOT_MAX`], matching the ranges of Table 1: slot 0 has the minimum,
/// slot 9 the maximum.
///
/// # Panics
///
/// Panics if `index >= SLOT_COUNT`.
pub fn slot_resources(index: usize) -> Resources {
    assert!(index < SLOT_COUNT, "slot index {index} out of range");
    let lerp = |lo: u32, hi: u32| lo + ((hi - lo) as u64 * index as u64 / (SLOT_COUNT - 1) as u64) as u32;
    Resources {
        dsp: lerp(SLOT_MIN.dsp, SLOT_MAX.dsp),
        lut: lerp(SLOT_MIN.lut, SLOT_MAX.lut),
        ff: lerp(SLOT_MIN.ff, SLOT_MAX.ff),
        carry: lerp(SLOT_MIN.carry, SLOT_MAX.carry),
        ramb18: lerp(SLOT_MIN.ramb18, SLOT_MAX.ramb18),
        ramb36: lerp(SLOT_MIN.ramb36, SLOT_MAX.ramb36),
        iobuf: lerp(SLOT_MIN.iobuf, SLOT_MAX.iobuf),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_resources_span_table_ranges() {
        assert_eq!(slot_resources(0), SLOT_MIN);
        assert_eq!(slot_resources(SLOT_COUNT - 1), SLOT_MAX);
        for i in 0..SLOT_COUNT {
            let r = slot_resources(i);
            assert!(SLOT_MIN.fits_within(&r));
            assert!(r.fits_within(&SLOT_MAX));
        }
    }

    #[test]
    fn slot_resources_monotone_in_index() {
        for i in 1..SLOT_COUNT {
            assert!(slot_resources(i - 1).fits_within(&slot_resources(i)));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_resources_rejects_out_of_range() {
        let _ = slot_resources(SLOT_COUNT);
    }

    #[test]
    fn cap_bandwidth_reproduces_80ms() {
        let millis = SLOT_BITSTREAM_BYTES * 1000 / CAP_BANDWIDTH_BYTES_PER_SEC;
        assert_eq!(millis, RECONFIG_MILLIS);
    }
}
