//! Reconfigurable slot state machines.

use std::fmt;

use nimblock_ser::{impl_json_newtype, impl_json_struct, FromJson, Json, JsonError, ToJson};

use crate::{BitstreamId, Resources};

/// Identifier of a reconfigurable slot on a device.
///
/// # Example
///
/// ```
/// use nimblock_fpga::SlotId;
///
/// let slot = SlotId::new(3);
/// assert_eq!(slot.index(), 3);
/// assert_eq!(slot.to_string(), "slot#3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(u32);

impl_json_newtype!(SlotId);

impl SlotId {
    /// Creates a slot identifier from its index on the device.
    pub const fn new(index: u32) -> Self {
        SlotId(index)
    }

    /// Returns the slot's index on the device.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot#{}", self.0)
    }
}

/// Occupancy state of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SlotState {
    /// No user logic configured; the slot is available.
    #[default]
    Empty,
    /// The configuration port is streaming a partial bitstream into the slot.
    /// The slot is decoupled and cannot execute.
    Reconfiguring(BitstreamId),
    /// User logic is configured and idle (between batches, or never started).
    Configured(BitstreamId),
    /// User logic is configured and currently processing a batch item.
    Executing(BitstreamId),
}

/// `SlotState` mixes unit and data variants — the one enum shape the
/// `nimblock_ser` derive macros do not cover — so its JSON impls are
/// written out: `"Empty"` for the unit variant, `{"Variant": id}` for the
/// data variants (matching serde's external tagging).
impl ToJson for SlotState {
    fn to_json(&self) -> Json {
        let tagged = |tag: &str, bs: &BitstreamId| {
            Json::Object(vec![(tag.to_owned(), bs.to_json())])
        };
        match self {
            SlotState::Empty => Json::Str("Empty".to_owned()),
            SlotState::Reconfiguring(bs) => tagged("Reconfiguring", bs),
            SlotState::Configured(bs) => tagged("Configured", bs),
            SlotState::Executing(bs) => tagged("Executing", bs),
        }
    }
}

impl FromJson for SlotState {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some("Empty") = v.as_str() {
            return Ok(SlotState::Empty);
        }
        match v.as_object() {
            Some([(tag, inner)]) => {
                let bs = BitstreamId::from_json(inner)?;
                match tag.as_str() {
                    "Reconfiguring" => Ok(SlotState::Reconfiguring(bs)),
                    "Configured" => Ok(SlotState::Configured(bs)),
                    "Executing" => Ok(SlotState::Executing(bs)),
                    other => Err(JsonError::new(format!("unknown SlotState variant `{other}`"))),
                }
            }
            _ => Err(JsonError::expected("SlotState", v)),
        }
    }
}

impl SlotState {
    /// Returns the configured or in-flight bitstream, if any.
    pub fn bitstream(self) -> Option<BitstreamId> {
        match self {
            SlotState::Empty => None,
            SlotState::Reconfiguring(bs) | SlotState::Configured(bs) | SlotState::Executing(bs) => {
                Some(bs)
            }
        }
    }

    /// Returns `true` if the slot can accept a new reconfiguration.
    ///
    /// A slot may be reconfigured when empty or when its logic is idle at a
    /// batch boundary ([`SlotState::Configured`]); it may not be interrupted
    /// mid-reconfiguration or mid-execution — exactly the batch-preemption
    /// constraint of the paper (§3.2).
    pub fn reconfigurable(self) -> bool {
        matches!(self, SlotState::Empty | SlotState::Configured(_))
    }
}

/// A reconfigurable slot: identifier, enclosed resources, and current state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot {
    id: SlotId,
    resources: Resources,
    state: SlotState,
}

impl_json_struct!(Slot { id, resources, state });

impl Slot {
    /// Creates an empty slot with the given identifier and resources.
    pub fn new(id: SlotId, resources: Resources) -> Self {
        Slot {
            id,
            resources,
            state: SlotState::Empty,
        }
    }

    /// Returns the slot identifier.
    pub fn id(&self) -> SlotId {
        self.id
    }

    /// Returns the resources enclosed by the slot.
    pub fn resources(&self) -> &Resources {
        &self.resources
    }

    /// Returns the current occupancy state.
    pub fn state(&self) -> SlotState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: SlotState) {
        self.state = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_bitstream_extraction() {
        let bs = BitstreamId::new(9);
        assert_eq!(SlotState::Empty.bitstream(), None);
        assert_eq!(SlotState::Reconfiguring(bs).bitstream(), Some(bs));
        assert_eq!(SlotState::Configured(bs).bitstream(), Some(bs));
        assert_eq!(SlotState::Executing(bs).bitstream(), Some(bs));
    }

    #[test]
    fn reconfigurable_only_at_batch_boundaries() {
        let bs = BitstreamId::new(1);
        assert!(SlotState::Empty.reconfigurable());
        assert!(SlotState::Configured(bs).reconfigurable());
        assert!(!SlotState::Reconfiguring(bs).reconfigurable());
        assert!(!SlotState::Executing(bs).reconfigurable());
    }

    #[test]
    fn slot_starts_empty() {
        let slot = Slot::new(SlotId::new(0), Resources::ZERO);
        assert_eq!(slot.state(), SlotState::Empty);
    }

    #[test]
    fn slot_id_display() {
        assert_eq!(SlotId::new(7).to_string(), "slot#7");
    }
}
