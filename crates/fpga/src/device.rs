//! Assembled board model.

use nimblock_sim::{SimDuration, SimTime};

use crate::{
    zcu106, BitstreamId, BitstreamStore, ConfigPort, FpgaError, MemoryPool, Resources, Slot,
    SlotId, SlotState,
};

/// Configuration of a [`Device`].
///
/// The defaults model the ZCU106 overlay the paper evaluates; every
/// parameter can be overridden to explore other boards (the paper argues the
/// approach is device-agnostic, §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Number of reconfigurable slots.
    pub slot_count: usize,
    /// Configuration-port bandwidth in bytes per second.
    pub cap_bandwidth_bytes_per_sec: u64,
    /// SD-card streaming bandwidth in bytes per second (0 = pre-loaded).
    pub sd_bandwidth_bytes_per_sec: u64,
    /// Shared-memory capacity for data buffers, in bytes.
    pub memory_bytes: u64,
    /// Resources of the static region.
    pub static_region: Resources,
    /// Explicit per-slot resources for heterogeneous overlays (the
    /// Hetero-ViTAL direction the paper cites). `None` uses the ZCU106
    /// interpolation; when set, its length overrides `slot_count`.
    pub slot_resources: Option<Vec<Resources>>,
}

impl DeviceConfig {
    /// The ZCU106 overlay of the paper: ten slots, ~80 ms reconfiguration,
    /// pre-loaded bitstreams, 2 GiB of buffer memory.
    pub fn zcu106() -> Self {
        DeviceConfig {
            slot_count: zcu106::SLOT_COUNT,
            cap_bandwidth_bytes_per_sec: zcu106::CAP_BANDWIDTH_BYTES_PER_SEC,
            sd_bandwidth_bytes_per_sec: 0,
            memory_bytes: 2 << 30,
            static_region: zcu106::STATIC_REGION,
            slot_resources: None,
        }
    }

    /// Same overlay with a different slot count (Nimblock is "flexible
    /// across different numbers of slots", §2.1).
    pub fn with_slot_count(mut self, slot_count: usize) -> Self {
        self.slot_count = slot_count;
        self.slot_resources = None;
        self
    }

    /// A heterogeneous overlay with explicit per-slot resources.
    ///
    /// # Panics
    ///
    /// Panics if `slot_resources` is empty.
    pub fn with_slot_resources(mut self, slot_resources: Vec<Resources>) -> Self {
        assert!(!slot_resources.is_empty(), "need at least one slot");
        self.slot_count = slot_resources.len();
        self.slot_resources = Some(slot_resources);
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::zcu106()
    }
}

/// The modelled board: slots, configuration port, bitstream store, memory.
///
/// `Device` owns all hardware-side state; the hypervisor (in
/// `nimblock-core`) owns all software-side state and drives the device
/// through these methods, receiving completion timestamps it turns into
/// simulation events.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    slots: Vec<Slot>,
    cap: ConfigPort,
    store: BitstreamStore,
    memory: MemoryPool,
}

impl Device {
    /// Builds a device from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.slot_count` is zero.
    pub fn new(config: DeviceConfig) -> Self {
        assert!(config.slot_count > 0, "a device needs at least one slot");
        let slots = match &config.slot_resources {
            Some(resources) => resources
                .iter()
                .enumerate()
                .map(|(i, &res)| Slot::new(SlotId::new(i as u32), res))
                .collect(),
            None => (0..config.slot_count)
                .map(|i| {
                    // Reuse the ZCU106 interpolation for up to ten slots;
                    // larger devices repeat the pattern.
                    let res = zcu106::slot_resources(i % zcu106::SLOT_COUNT);
                    Slot::new(SlotId::new(i as u32), res)
                })
                .collect(),
        };
        Device {
            cap: ConfigPort::new(config.cap_bandwidth_bytes_per_sec),
            store: BitstreamStore::new(config.sd_bandwidth_bytes_per_sec),
            memory: MemoryPool::new(config.memory_bytes),
            slots,
            config,
        }
    }

    /// Returns the device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Returns the number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Returns the slots.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Returns the slot with identifier `id`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownSlot`] for an out-of-range identifier.
    pub fn slot(&self, id: SlotId) -> Result<&Slot, FpgaError> {
        self.slots.get(id.index()).ok_or(FpgaError::UnknownSlot(id))
    }

    /// Returns the configuration port.
    pub fn cap(&self) -> &ConfigPort {
        &self.cap
    }

    /// Returns the bitstream store.
    pub fn store(&self) -> &BitstreamStore {
        &self.store
    }

    /// Returns the bitstream store for registration and eviction.
    pub fn store_mut(&mut self) -> &mut BitstreamStore {
        &mut self.store
    }

    /// Returns the buffer memory pool.
    pub fn memory(&self) -> &MemoryPool {
        &self.memory
    }

    /// Returns the buffer memory pool for allocation.
    pub fn memory_mut(&mut self) -> &mut MemoryPool {
        &mut self.memory
    }

    /// Returns the identifiers of slots currently accepting reconfiguration.
    pub fn reconfigurable_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots
            .iter()
            .filter(|s| s.state().reconfigurable())
            .map(|s| s.id())
    }

    /// Starts reconfiguring `slot` with `bitstream` at time `now`.
    ///
    /// Loads the bitstream (SD latency on first use), claims the CAP, and
    /// moves the slot to [`SlotState::Reconfiguring`]. Returns the time at
    /// which the slot will be configured; the caller must invoke
    /// [`Device::finish_reconfiguration`] at that time.
    ///
    /// # Errors
    ///
    /// * [`FpgaError::UnknownSlot`] / [`FpgaError::UnknownBitstream`] for bad
    ///   identifiers,
    /// * [`FpgaError::SlotBusy`] if the slot is executing or already
    ///   reconfiguring,
    /// * [`FpgaError::CapBusy`] if another reconfiguration is in flight.
    pub fn begin_reconfiguration(
        &mut self,
        slot: SlotId,
        bitstream: BitstreamId,
        now: SimTime,
    ) -> Result<SimTime, FpgaError> {
        let info = self.store.info(bitstream)?;
        let state = self.slot(slot)?.state();
        if !state.reconfigurable() {
            return Err(FpgaError::SlotBusy(slot));
        }
        if let Some(busy_with) = self.cap.busy_with() {
            return Err(FpgaError::CapBusy { busy_with });
        }
        let load = self.store.load(bitstream)?;
        let finish = self.cap.begin(slot, info.size_bytes, now + load)?;
        self.slots[slot.index()].set_state(SlotState::Reconfiguring(bitstream));
        Ok(finish)
    }

    /// Completes the in-flight reconfiguration of `slot`, moving it to
    /// [`SlotState::Configured`].
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not the slot the CAP is reconfiguring — that is a
    /// hypervisor bookkeeping bug, not a recoverable condition.
    pub fn finish_reconfiguration(&mut self, slot: SlotId) {
        let state = self.slots[slot.index()].state();
        let SlotState::Reconfiguring(bitstream) = state else {
            panic!("finish_reconfiguration on {slot} in state {state:?}");
        };
        self.cap.complete(slot);
        self.slots[slot.index()].set_state(SlotState::Configured(bitstream));
    }

    /// Marks `slot` as executing a batch item.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::SlotBusy`] unless the slot is
    /// [`SlotState::Configured`].
    pub fn begin_execution(&mut self, slot: SlotId) -> Result<(), FpgaError> {
        let state = self.slot(slot)?.state();
        let SlotState::Configured(bitstream) = state else {
            return Err(FpgaError::SlotBusy(slot));
        };
        self.slots[slot.index()].set_state(SlotState::Executing(bitstream));
        Ok(())
    }

    /// Marks `slot` as idle at a batch boundary after finishing an item.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not executing.
    pub fn finish_execution(&mut self, slot: SlotId) {
        let state = self.slots[slot.index()].state();
        let SlotState::Executing(bitstream) = state else {
            panic!("finish_execution on {slot} in state {state:?}");
        };
        self.slots[slot.index()].set_state(SlotState::Configured(bitstream));
    }

    /// Aborts the item executing on `slot`, returning it to
    /// [`SlotState::Configured`] mid-item.
    ///
    /// This models the checkpoint-capable hardware of the paper's future
    /// work (§7: "architectural modifications which would enable preemption
    /// at a finer granularity, such as increased on-chip memory and state
    /// registers"); the baseline overlay cannot do this, which is why
    /// Nimblock preempts only at batch boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::SlotBusy`] if the slot is mid-reconfiguration,
    /// or is not executing anything.
    pub fn abort_execution(&mut self, slot: SlotId) -> Result<(), FpgaError> {
        let state = self.slot(slot)?.state();
        let SlotState::Executing(bitstream) = state else {
            return Err(FpgaError::SlotBusy(slot));
        };
        self.slots[slot.index()].set_state(SlotState::Configured(bitstream));
        Ok(())
    }

    /// Clears `slot` back to [`SlotState::Empty`] (application retired or
    /// task preempted and its slot surrendered).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::SlotBusy`] if the slot is mid-reconfiguration or
    /// mid-execution.
    pub fn release_slot(&mut self, slot: SlotId) -> Result<(), FpgaError> {
        let state = self.slot(slot)?.state();
        if !state.reconfigurable() {
            return Err(FpgaError::SlotBusy(slot));
        }
        self.slots[slot.index()].set_state(SlotState::Empty);
        Ok(())
    }

    /// Returns the reconfiguration latency for a bitstream of the default
    /// slot size.
    pub fn nominal_reconfig_latency(&self) -> SimDuration {
        self.cap.latency(zcu106::SLOT_BITSTREAM_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::new(DeviceConfig::zcu106())
    }

    #[test]
    fn zcu106_has_ten_slots() {
        assert_eq!(device().slot_count(), 10);
    }

    #[test]
    fn reconfiguration_lifecycle() {
        let mut dev = device();
        let bs = dev.store_mut().register(32 << 20);
        let slot = SlotId::new(0);
        let done = dev.begin_reconfiguration(slot, bs, SimTime::ZERO).unwrap();
        assert_eq!(done, SimTime::from_millis(80));
        assert_eq!(dev.slot(slot).unwrap().state(), SlotState::Reconfiguring(bs));
        dev.finish_reconfiguration(slot);
        assert_eq!(dev.slot(slot).unwrap().state(), SlotState::Configured(bs));
    }

    #[test]
    fn cap_serializes_across_slots() {
        let mut dev = device();
        let bs = dev.store_mut().register(32 << 20);
        dev.begin_reconfiguration(SlotId::new(0), bs, SimTime::ZERO)
            .unwrap();
        let err = dev
            .begin_reconfiguration(SlotId::new(1), bs, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FpgaError::CapBusy { .. }));
    }

    #[test]
    fn executing_slot_cannot_be_reconfigured() {
        let mut dev = device();
        let bs = dev.store_mut().register(1);
        let slot = SlotId::new(0);
        dev.begin_reconfiguration(slot, bs, SimTime::ZERO).unwrap();
        dev.finish_reconfiguration(slot);
        dev.begin_execution(slot).unwrap();
        assert_eq!(
            dev.begin_reconfiguration(slot, bs, SimTime::from_secs(1)),
            Err(FpgaError::SlotBusy(slot))
        );
        dev.finish_execution(slot);
        assert!(dev
            .begin_reconfiguration(slot, bs, SimTime::from_secs(1))
            .is_ok());
    }

    #[test]
    fn release_requires_batch_boundary() {
        let mut dev = device();
        let bs = dev.store_mut().register(1);
        let slot = SlotId::new(4);
        dev.begin_reconfiguration(slot, bs, SimTime::ZERO).unwrap();
        assert_eq!(dev.release_slot(slot), Err(FpgaError::SlotBusy(slot)));
        dev.finish_reconfiguration(slot);
        dev.release_slot(slot).unwrap();
        assert_eq!(dev.slot(slot).unwrap().state(), SlotState::Empty);
    }

    #[test]
    fn sd_latency_delays_cap_start() {
        let mut config = DeviceConfig::zcu106();
        config.sd_bandwidth_bytes_per_sec = 32 << 20; // 1 s to load 32 MiB
        let mut dev = Device::new(config);
        let bs = dev.store_mut().register(32 << 20);
        let done = dev
            .begin_reconfiguration(SlotId::new(0), bs, SimTime::ZERO)
            .unwrap();
        assert_eq!(done, SimTime::from_millis(1_080)); // 1 s load + 80 ms CAP
    }

    #[test]
    fn unknown_slot_is_reported() {
        let dev = device();
        assert!(matches!(
            dev.slot(SlotId::new(99)),
            Err(FpgaError::UnknownSlot(_))
        ));
    }

    #[test]
    fn begin_execution_requires_configured() {
        let mut dev = device();
        assert_eq!(
            dev.begin_execution(SlotId::new(0)),
            Err(FpgaError::SlotBusy(SlotId::new(0)))
        );
    }

    #[test]
    fn nominal_latency_matches_paper() {
        assert_eq!(device().nominal_reconfig_latency().as_millis(), 80);
    }

    #[test]
    fn abort_execution_returns_slot_to_configured() {
        let mut dev = device();
        let bs = dev.store_mut().register(1);
        let slot = SlotId::new(2);
        dev.begin_reconfiguration(slot, bs, SimTime::ZERO).unwrap();
        dev.finish_reconfiguration(slot);
        dev.begin_execution(slot).unwrap();
        dev.abort_execution(slot).unwrap();
        assert_eq!(dev.slot(slot).unwrap().state(), SlotState::Configured(bs));
        // Aborted slots can immediately be reconfigured or relaunched.
        assert!(dev.begin_execution(slot).is_ok());
    }

    #[test]
    fn abort_execution_requires_a_running_item() {
        let mut dev = device();
        assert_eq!(
            dev.abort_execution(SlotId::new(0)),
            Err(FpgaError::SlotBusy(SlotId::new(0)))
        );
        let bs = dev.store_mut().register(1);
        dev.begin_reconfiguration(SlotId::new(0), bs, SimTime::ZERO).unwrap();
        assert!(dev.abort_execution(SlotId::new(0)).is_err());
    }

    #[test]
    fn oversized_devices_repeat_the_slot_pattern() {
        let dev = Device::new(DeviceConfig::zcu106().with_slot_count(25));
        assert_eq!(dev.slot_count(), 25);
        // Slot 10 repeats slot 0's resources, slot 19 repeats slot 9's.
        assert_eq!(
            dev.slots()[10].resources(),
            dev.slots()[0].resources()
        );
        assert_eq!(
            dev.slots()[19].resources(),
            dev.slots()[9].resources()
        );
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_device_panics() {
        let _ = Device::new(DeviceConfig::zcu106().with_slot_count(0));
    }

    #[test]
    fn reconfigurable_slots_excludes_busy() {
        let mut dev = device();
        let bs = dev.store_mut().register(1);
        dev.begin_reconfiguration(SlotId::new(0), bs, SimTime::ZERO)
            .unwrap();
        let free: Vec<SlotId> = dev.reconfigurable_slots().collect();
        assert_eq!(free.len(), 9);
        assert!(!free.contains(&SlotId::new(0)));
    }
}
