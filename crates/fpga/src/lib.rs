//! Device model of a slot-based FPGA overlay.
//!
//! The Nimblock paper partitions a Xilinx ZCU106 into a *static region* plus
//! ten uniform, independently reconfigurable *slots* (dynamic partial
//! reconfiguration). This crate models everything the hypervisor observes
//! about that hardware:
//!
//! * [`Resources`] and [`zcu106`] — the resource inventory of slots and the
//!   static region (Table 1 of the paper),
//! * [`Slot`] / [`SlotState`] — per-slot occupancy state machines,
//! * [`ConfigPort`] — the configuration access port (CAP): at most one slot
//!   reconfigures at a time, with a latency determined by bitstream size and
//!   port bandwidth (~80 ms per slot on the ZCU106),
//! * [`BitstreamStore`] — partial bitstreams resident on the SD card, loaded
//!   into system memory on demand and cached thereafter,
//! * [`MemoryPool`] — data-buffer allocation in shared system memory, and
//! * [`Device`] — the assembled board.
//!
//! The model is *latency-faithful rather than gate-faithful*: schedulers never
//! observe logic behaviour, only how long reconfiguration, loading, and
//! execution take and which slots are busy. Those are exactly the quantities
//! this crate models, which is what makes it a sound substitute for the
//! physical board in the paper's evaluation (see DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use nimblock_fpga::{Device, DeviceConfig};
//! use nimblock_sim::SimTime;
//!
//! let mut device = Device::new(DeviceConfig::zcu106());
//! assert_eq!(device.slot_count(), 10);
//!
//! // Reconfigure slot 0 with a 32 MiB partial bitstream.
//! let slot = device.slots()[0].id();
//! let bs = device.store_mut().register(32 << 20);
//! let done = device.begin_reconfiguration(slot, bs, SimTime::ZERO)?;
//! assert_eq!(done.as_millis(), 80);
//! # Ok::<(), nimblock_fpga::FpgaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstream;
mod cap;
mod device;
mod error;
mod interconnect;
mod memory;
mod resources;
mod slot;
pub mod zcu106;

pub use bitstream::{BitstreamId, BitstreamInfo, BitstreamStore};
pub use cap::ConfigPort;
pub use device::{Device, DeviceConfig};
pub use error::FpgaError;
pub use interconnect::Interconnect;
pub use memory::{BufferId, MemoryPool};
pub use resources::Resources;
pub use slot::{Slot, SlotId, SlotState};
