//! Error type for device-model operations.

use std::error::Error;
use std::fmt;

use crate::{BitstreamId, SlotId};

/// An error raised by the FPGA device model.
///
/// Every fallible operation on [`crate::Device`] and its components returns
/// this type; the variants carry enough context to identify the offending
/// slot or bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FpgaError {
    /// The configuration access port is already reconfiguring another slot.
    CapBusy {
        /// The slot currently being reconfigured.
        busy_with: SlotId,
    },
    /// The target slot is currently executing user logic and cannot be
    /// reconfigured without first releasing it.
    SlotBusy(SlotId),
    /// The slot identifier does not exist on this device.
    UnknownSlot(SlotId),
    /// The bitstream identifier was never registered with the store.
    UnknownBitstream(BitstreamId),
    /// The memory pool cannot satisfy an allocation of the requested size.
    OutOfMemory {
        /// Bytes requested by the allocation.
        requested: u64,
        /// Bytes currently available in the pool.
        available: u64,
    },
    /// The buffer identifier is not currently allocated.
    UnknownBuffer(u64),
    /// An injected reconfiguration failure (used by fault-injection tests).
    ReconfigFault(SlotId),
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::CapBusy { busy_with } => {
                write!(f, "configuration port busy reconfiguring {busy_with}")
            }
            FpgaError::SlotBusy(slot) => write!(f, "{slot} is executing and cannot be reconfigured"),
            FpgaError::UnknownSlot(slot) => write!(f, "{slot} does not exist on this device"),
            FpgaError::UnknownBitstream(bs) => write!(f, "bitstream {bs} was never registered"),
            FpgaError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "memory pool exhausted: requested {requested} bytes, {available} available"
            ),
            FpgaError::UnknownBuffer(id) => write!(f, "buffer {id} is not allocated"),
            FpgaError::ReconfigFault(slot) => {
                write!(f, "injected reconfiguration fault on {slot}")
            }
        }
    }
}

impl Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            FpgaError::CapBusy { busy_with: SlotId::new(1) },
            FpgaError::SlotBusy(SlotId::new(2)),
            FpgaError::UnknownSlot(SlotId::new(3)),
            FpgaError::UnknownBitstream(BitstreamId::new(4)),
            FpgaError::OutOfMemory { requested: 10, available: 5 },
            FpgaError::UnknownBuffer(7),
            FpgaError::ReconfigFault(SlotId::new(0)),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FpgaError>();
    }
}
