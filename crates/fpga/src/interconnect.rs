//! Inter-slot data-movement models.
//!
//! On the evaluated overlay "inter-slot communication is performed through
//! the PS" (paper §2.1), and the conclusion names a NoC as the architectural
//! improvement that "would allow for optimized data transfer between slots"
//! (§7). This module models both, so the scheduling stack can quantify the
//! difference and exploit placement locality when a NoC exists.

use nimblock_ser::impl_json_enum_structs;

use nimblock_sim::SimDuration;

use crate::SlotId;

/// How data moves between producer and consumer tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interconnect {
    /// The evaluated overlay: every transfer is staged through the PS and
    /// shared memory, costing the same regardless of slot positions.
    ThroughPs {
        /// Latency of one input transfer (control + DMA through the ARM
        /// core) per batch item.
        per_transfer: SimDuration,
    },
    /// A ring NoC connecting the slots (future work, §7): slot-to-slot
    /// transfers cost `base + hops × per_hop`; data residing in PS memory
    /// (application inputs, or outputs of already-retired producers) still
    /// pays the PS cost.
    RingNoc {
        /// Fixed per-transfer latency (flit setup).
        base: SimDuration,
        /// Additional latency per ring hop.
        per_hop: SimDuration,
        /// Cost of moving data between PS memory and a slot.
        ps_transfer: SimDuration,
    },
}

impl_json_enum_structs!(Interconnect {
    ThroughPs { per_transfer },
    RingNoc { base, per_hop, ps_transfer },
});

impl Interconnect {
    /// The evaluated system's default: 1 ms through-PS transfers (see
    /// DESIGN.md §4 on the per-item overhead calibration).
    pub fn zcu106_default() -> Self {
        Interconnect::ThroughPs {
            per_transfer: SimDuration::from_millis(1),
        }
    }

    /// A representative NoC: 50 µs setup, 10 µs per hop, 1 ms to/from PS.
    pub fn ring_noc_default() -> Self {
        Interconnect::RingNoc {
            base: SimDuration::from_micros(50),
            per_hop: SimDuration::from_micros(10),
            ps_transfer: SimDuration::from_millis(1),
        }
    }

    /// Returns the number of ring hops between two slots on an
    /// `slot_count`-slot device.
    pub fn ring_hops(from: SlotId, to: SlotId, slot_count: usize) -> u64 {
        let a = from.index();
        let b = to.index();
        let direct = a.abs_diff(b);
        direct.min(slot_count - direct) as u64
    }

    /// Latency of fetching one item's input into `to`, produced on
    /// `from` (`None` = the data lives in PS memory: an application input,
    /// or the producer has left the fabric).
    pub fn fetch_latency(&self, from: Option<SlotId>, to: SlotId, slot_count: usize) -> SimDuration {
        match *self {
            Interconnect::ThroughPs { per_transfer } => per_transfer,
            Interconnect::RingNoc {
                base,
                per_hop,
                ps_transfer,
            } => match from {
                Some(from) => base + per_hop.saturating_mul(Self::ring_hops(from, to, slot_count)),
                None => ps_transfer,
            },
        }
    }
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect::zcu106_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(i: u32) -> SlotId {
        SlotId::new(i)
    }

    #[test]
    fn ring_hops_wrap_around() {
        assert_eq!(Interconnect::ring_hops(slot(0), slot(0), 10), 0);
        assert_eq!(Interconnect::ring_hops(slot(0), slot(3), 10), 3);
        assert_eq!(Interconnect::ring_hops(slot(0), slot(9), 10), 1);
        assert_eq!(Interconnect::ring_hops(slot(2), slot(7), 10), 5);
        assert_eq!(Interconnect::ring_hops(slot(7), slot(2), 10), 5);
    }

    #[test]
    fn through_ps_is_position_independent() {
        let ic = Interconnect::zcu106_default();
        let a = ic.fetch_latency(Some(slot(0)), slot(1), 10);
        let b = ic.fetch_latency(Some(slot(0)), slot(5), 10);
        let c = ic.fetch_latency(None, slot(9), 10);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a, SimDuration::from_millis(1));
    }

    #[test]
    fn noc_scales_with_distance() {
        let ic = Interconnect::ring_noc_default();
        let adjacent = ic.fetch_latency(Some(slot(0)), slot(1), 10);
        let far = ic.fetch_latency(Some(slot(0)), slot(5), 10);
        assert!(adjacent < far);
        assert_eq!(adjacent, SimDuration::from_micros(60));
        assert_eq!(far, SimDuration::from_micros(100));
    }

    #[test]
    fn noc_ps_fallback_costs_the_ps_transfer() {
        let ic = Interconnect::ring_noc_default();
        assert_eq!(ic.fetch_latency(None, slot(3), 10), SimDuration::from_millis(1));
    }

    #[test]
    fn noc_beats_through_ps_for_neighbors() {
        let ps = Interconnect::zcu106_default();
        let noc = Interconnect::ring_noc_default();
        assert!(
            noc.fetch_latency(Some(slot(2)), slot(3), 10)
                < ps.fetch_latency(Some(slot(2)), slot(3), 10)
        );
    }
}
