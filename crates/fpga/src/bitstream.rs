//! Partial-bitstream registry and load-latency model.

use std::collections::HashMap;
use std::fmt;

use nimblock_ser::{impl_json_newtype, impl_json_struct};

use nimblock_sim::SimDuration;

use crate::FpgaError;

/// Identifier of a registered partial bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitstreamId(u64);

impl_json_newtype!(BitstreamId);

impl BitstreamId {
    /// Creates a bitstream identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        BitstreamId(raw)
    }

    /// Returns the raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BitstreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bs#{}", self.0)
    }
}

/// Metadata for one registered partial bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstreamInfo {
    /// Size of the bitstream file in bytes; drives reconfiguration latency.
    pub size_bytes: u64,
    /// Whether the bitstream is already resident in system memory.
    pub cached: bool,
}

impl_json_struct!(BitstreamInfo { size_bytes, cached });

/// Registry of partial bitstreams with an SD-card load model.
///
/// On the evaluated system, bitstreams live on the SD card and are loaded
/// into DRAM by the ARM core the first time the scheduler selects them;
/// subsequent reconfigurations reuse the in-memory copy. [`BitstreamStore::load`]
/// returns the modelled load latency (zero once cached).
///
/// # Example
///
/// ```
/// use nimblock_fpga::BitstreamStore;
///
/// let mut store = BitstreamStore::new(100 << 20); // 100 MiB/s SD card
/// let bs = store.register(25 << 20);
/// let first = store.load(bs)?;
/// let second = store.load(bs)?;
/// assert!(first > second);
/// assert!(second.is_zero());
/// # Ok::<(), nimblock_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitstreamStore {
    entries: HashMap<BitstreamId, BitstreamInfo>,
    next_id: u64,
    sd_bandwidth_bytes_per_sec: u64,
}

impl BitstreamStore {
    /// Creates a store whose SD card sustains `sd_bandwidth_bytes_per_sec`.
    ///
    /// A bandwidth of zero models pre-loaded bitstreams (every load is free).
    pub fn new(sd_bandwidth_bytes_per_sec: u64) -> Self {
        BitstreamStore {
            entries: HashMap::new(),
            next_id: 0,
            sd_bandwidth_bytes_per_sec,
        }
    }

    /// Registers a bitstream of `size_bytes` and returns its identifier.
    pub fn register(&mut self, size_bytes: u64) -> BitstreamId {
        let id = BitstreamId(self.next_id);
        self.next_id += 1;
        self.entries.insert(
            id,
            BitstreamInfo {
                size_bytes,
                cached: false,
            },
        );
        id
    }

    /// Returns the metadata for `id`.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownBitstream`] if `id` was never registered.
    pub fn info(&self, id: BitstreamId) -> Result<BitstreamInfo, FpgaError> {
        self.entries
            .get(&id)
            .copied()
            .ok_or(FpgaError::UnknownBitstream(id))
    }

    /// Loads `id` into system memory, returning the modelled latency.
    ///
    /// The first load streams from the SD card; later loads hit the DRAM
    /// cache and are free.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownBitstream`] if `id` was never registered.
    pub fn load(&mut self, id: BitstreamId) -> Result<SimDuration, FpgaError> {
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(FpgaError::UnknownBitstream(id))?;
        if entry.cached || self.sd_bandwidth_bytes_per_sec == 0 {
            entry.cached = true;
            return Ok(SimDuration::ZERO);
        }
        entry.cached = true;
        let micros = entry
            .size_bytes
            .saturating_mul(1_000_000)
            .div_euclid(self.sd_bandwidth_bytes_per_sec);
        Ok(SimDuration::from_micros(micros))
    }

    /// Evicts `id` from the DRAM cache so the next load pays SD latency again.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::UnknownBitstream`] if `id` was never registered.
    pub fn evict(&mut self, id: BitstreamId) -> Result<(), FpgaError> {
        let entry = self
            .entries
            .get_mut(&id)
            .ok_or(FpgaError::UnknownBitstream(id))?;
        entry.cached = false;
        Ok(())
    }

    /// Returns the number of registered bitstreams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no bitstreams are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_assigns_distinct_ids() {
        let mut store = BitstreamStore::new(0);
        let a = store.register(1);
        let b = store.register(2);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn load_latency_matches_bandwidth() {
        let mut store = BitstreamStore::new(32 << 20); // 32 MiB/s
        let bs = store.register(32 << 20); // 32 MiB file => 1 s
        assert_eq!(store.load(bs).unwrap(), SimDuration::from_secs(1));
    }

    #[test]
    fn second_load_is_cached() {
        let mut store = BitstreamStore::new(1 << 20);
        let bs = store.register(1 << 20);
        assert!(!store.load(bs).unwrap().is_zero());
        assert!(store.load(bs).unwrap().is_zero());
        assert!(store.info(bs).unwrap().cached);
    }

    #[test]
    fn evict_restores_load_cost() {
        let mut store = BitstreamStore::new(1 << 20);
        let bs = store.register(1 << 20);
        store.load(bs).unwrap();
        store.evict(bs).unwrap();
        assert!(!store.load(bs).unwrap().is_zero());
    }

    #[test]
    fn zero_bandwidth_means_preloaded() {
        let mut store = BitstreamStore::new(0);
        let bs = store.register(u64::MAX);
        assert!(store.load(bs).unwrap().is_zero());
    }

    #[test]
    fn unknown_bitstream_is_an_error() {
        let mut store = BitstreamStore::new(1);
        let ghost = BitstreamId::new(42);
        assert_eq!(store.info(ghost), Err(FpgaError::UnknownBitstream(ghost)));
        assert_eq!(store.load(ghost), Err(FpgaError::UnknownBitstream(ghost)));
        assert_eq!(store.evict(ghost), Err(FpgaError::UnknownBitstream(ghost)));
    }
}
