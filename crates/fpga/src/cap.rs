//! Configuration access port (CAP) model.

use nimblock_ser::impl_json_struct;

use nimblock_sim::{SimDuration, SimTime};

use crate::{FpgaError, SlotId};

/// The configuration access port: the single channel through which partial
/// bitstreams reach the fabric.
///
/// The defining property, and the central constraint the Nimblock scheduler
/// works around, is that **at most one slot reconfigures at a time**. The
/// port tracks the in-flight reconfiguration and refuses overlapping
/// requests; latency is `size / bandwidth`.
///
/// # Example
///
/// ```
/// use nimblock_fpga::{ConfigPort, SlotId};
/// use nimblock_sim::SimTime;
///
/// let mut cap = ConfigPort::new(nimblock_fpga::zcu106::CAP_BANDWIDTH_BYTES_PER_SEC);
/// let done = cap.begin(SlotId::new(0), 32 << 20, SimTime::ZERO)?;
/// assert_eq!(done.as_millis(), 80);
/// // A second request while busy is refused.
/// assert!(cap.begin(SlotId::new(1), 32 << 20, SimTime::from_millis(40)).is_err());
/// cap.complete(SlotId::new(0));
/// # Ok::<(), nimblock_fpga::FpgaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigPort {
    bandwidth_bytes_per_sec: u64,
    in_flight: Option<InFlight>,
    completed: u64,
    busy_time: SimDuration,
}

impl_json_struct!(ConfigPort { bandwidth_bytes_per_sec, in_flight, completed, busy_time });

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InFlight {
    slot: SlotId,
    finish_at: SimTime,
    started_at: SimTime,
}

impl_json_struct!(InFlight { slot, finish_at, started_at });

impl ConfigPort {
    /// Creates a port sustaining `bandwidth_bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn new(bandwidth_bytes_per_sec: u64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0, "CAP bandwidth must be positive");
        ConfigPort {
            bandwidth_bytes_per_sec,
            in_flight: None,
            completed: 0,
            busy_time: SimDuration::ZERO,
        }
    }

    /// Returns the latency of streaming `size_bytes` through the port.
    pub fn latency(&self, size_bytes: u64) -> SimDuration {
        SimDuration::from_micros(
            size_bytes
                .saturating_mul(1_000_000)
                .div_euclid(self.bandwidth_bytes_per_sec),
        )
    }

    /// Starts reconfiguring `slot` with a bitstream of `size_bytes` at `now`,
    /// returning the completion time.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::CapBusy`] if another reconfiguration is in
    /// flight.
    pub fn begin(
        &mut self,
        slot: SlotId,
        size_bytes: u64,
        now: SimTime,
    ) -> Result<SimTime, FpgaError> {
        if let Some(in_flight) = self.in_flight {
            return Err(FpgaError::CapBusy {
                busy_with: in_flight.slot,
            });
        }
        let finish_at = now + self.latency(size_bytes);
        self.in_flight = Some(InFlight {
            slot,
            finish_at,
            started_at: now,
        });
        Ok(finish_at)
    }

    /// Marks the in-flight reconfiguration of `slot` as complete.
    ///
    /// # Panics
    ///
    /// Panics if no reconfiguration is in flight or a different slot is in
    /// flight — either indicates a hypervisor bookkeeping bug.
    pub fn complete(&mut self, slot: SlotId) {
        let in_flight = self
            .in_flight
            .take()
            .unwrap_or_else(|| panic!("CAP completion for {slot} with no reconfiguration in flight"));
        assert_eq!(
            in_flight.slot, slot,
            "CAP completion for {slot} while {in_flight_slot} is in flight",
            in_flight_slot = in_flight.slot
        );
        self.completed += 1;
        self.busy_time += in_flight.finish_at - in_flight.started_at;
    }

    /// Returns the slot currently being reconfigured, if any.
    pub fn busy_with(&self) -> Option<SlotId> {
        self.in_flight.map(|f| f.slot)
    }

    /// Returns `true` if no reconfiguration is in flight.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Returns the number of completed reconfigurations.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Returns the cumulative time the port has spent streaming bitstreams.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> ConfigPort {
        ConfigPort::new(crate::zcu106::CAP_BANDWIDTH_BYTES_PER_SEC)
    }

    #[test]
    fn latency_is_size_over_bandwidth() {
        let cap = port();
        assert_eq!(cap.latency(32 << 20).as_millis(), 80);
        assert_eq!(cap.latency(16 << 20).as_millis(), 40);
    }

    #[test]
    fn begin_rejects_overlap() {
        let mut cap = port();
        cap.begin(SlotId::new(0), 1 << 20, SimTime::ZERO).unwrap();
        let err = cap.begin(SlotId::new(1), 1 << 20, SimTime::ZERO).unwrap_err();
        assert_eq!(err, FpgaError::CapBusy { busy_with: SlotId::new(0) });
    }

    #[test]
    fn complete_frees_the_port_and_counts() {
        let mut cap = port();
        cap.begin(SlotId::new(2), 32 << 20, SimTime::ZERO).unwrap();
        cap.complete(SlotId::new(2));
        assert!(cap.is_idle());
        assert_eq!(cap.completed(), 1);
        assert_eq!(cap.busy_time().as_millis(), 80);
        assert!(cap.begin(SlotId::new(3), 1, SimTime::from_millis(80)).is_ok());
    }

    #[test]
    #[should_panic(expected = "no reconfiguration in flight")]
    fn spurious_completion_panics() {
        let mut cap = port();
        cap.complete(SlotId::new(0));
    }

    #[test]
    #[should_panic(expected = "is in flight")]
    fn mismatched_completion_panics() {
        let mut cap = port();
        cap.begin(SlotId::new(0), 1, SimTime::ZERO).unwrap();
        cap.complete(SlotId::new(1));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bandwidth_panics() {
        let _ = ConfigPort::new(0);
    }
}
