//! FPGA resource inventories.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use nimblock_ser::impl_json_struct;

/// An inventory of FPGA fabric resources.
///
/// The fields follow Table 1 of the Nimblock paper, which reports slot and
/// static-region utilization on the ZCU106 in these seven categories.
///
/// # Example
///
/// ```
/// use nimblock_fpga::Resources;
///
/// let task = Resources { dsp: 40, lut: 9_000, ..Resources::ZERO };
/// let slot = nimblock_fpga::zcu106::slot_resources(0);
/// assert!(task.fits_within(&slot));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Resources {
    /// DSP48 arithmetic blocks.
    pub dsp: u32,
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Carry-chain elements.
    pub carry: u32,
    /// 18 Kib block RAMs.
    pub ramb18: u32,
    /// 36 Kib block RAMs.
    pub ramb36: u32,
    /// I/O buffers.
    pub iobuf: u32,
}

impl_json_struct!(Resources { dsp, lut, ff, carry, ramb18, ramb36, iobuf });

impl Resources {
    /// The empty inventory.
    pub const ZERO: Resources = Resources {
        dsp: 0,
        lut: 0,
        ff: 0,
        carry: 0,
        ramb18: 0,
        ramb36: 0,
        iobuf: 0,
    };

    /// Returns `true` if `self` fits within `budget` in every category.
    pub fn fits_within(&self, budget: &Resources) -> bool {
        self.dsp <= budget.dsp
            && self.lut <= budget.lut
            && self.ff <= budget.ff
            && self.carry <= budget.carry
            && self.ramb18 <= budget.ramb18
            && self.ramb36 <= budget.ramb36
            && self.iobuf <= budget.iobuf
    }

    /// Returns the category-wise saturating difference `self - other`.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            dsp: self.dsp.saturating_sub(other.dsp),
            lut: self.lut.saturating_sub(other.lut),
            ff: self.ff.saturating_sub(other.ff),
            carry: self.carry.saturating_sub(other.carry),
            ramb18: self.ramb18.saturating_sub(other.ramb18),
            ramb36: self.ramb36.saturating_sub(other.ramb36),
            iobuf: self.iobuf.saturating_sub(other.iobuf),
        }
    }

    /// Returns the utilization of `self` against `budget` as the maximum
    /// fraction used across categories (1.0 = some category fully used).
    ///
    /// Categories with a zero budget are ignored.
    pub fn utilization_of(&self, budget: &Resources) -> f64 {
        let pairs = [
            (self.dsp, budget.dsp),
            (self.lut, budget.lut),
            (self.ff, budget.ff),
            (self.carry, budget.carry),
            (self.ramb18, budget.ramb18),
            (self.ramb36, budget.ramb36),
            (self.iobuf, budget.iobuf),
        ];
        pairs
            .into_iter()
            .filter(|&(_, b)| b > 0)
            .map(|(u, b)| u as f64 / b as f64)
            .fold(0.0, f64::max)
    }
}

impl Add for Resources {
    type Output = Resources;

    fn add(self, rhs: Resources) -> Resources {
        Resources {
            dsp: self.dsp + rhs.dsp,
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            carry: self.carry + rhs.carry,
            ramb18: self.ramb18 + rhs.ramb18,
            ramb36: self.ramb36 + rhs.ramb36,
            iobuf: self.iobuf + rhs.iobuf,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        *self = *self + rhs;
    }
}

impl Sub for Resources {
    type Output = Resources;

    /// Category-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use
    /// [`Resources::saturating_sub`] when `rhs` may exceed `self`.
    fn sub(self, rhs: Resources) -> Resources {
        Resources {
            dsp: self.dsp - rhs.dsp,
            lut: self.lut - rhs.lut,
            ff: self.ff - rhs.ff,
            carry: self.carry - rhs.carry,
            ramb18: self.ramb18 - rhs.ramb18,
            ramb36: self.ramb36 - rhs.ramb36,
            iobuf: self.iobuf - rhs.iobuf,
        }
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSP={} LUT={} FF={} Carry={} RAMB18={} RAMB36={} IOBuf={}",
            self.dsp, self.lut, self.ff, self.carry, self.ramb18, self.ramb36, self.iobuf
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Resources {
        Resources {
            dsp: 10,
            lut: 100,
            ff: 200,
            carry: 12,
            ramb18: 4,
            ramb36: 2,
            iobuf: 19,
        }
    }

    #[test]
    fn fits_within_is_category_wise() {
        let small = sample();
        let mut big = sample();
        big.lut += 1;
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
        assert!(small.fits_within(&small), "fits within itself");
    }

    #[test]
    fn add_then_sub_roundtrips() {
        let a = sample();
        let b = Resources { dsp: 1, ..Resources::ZERO };
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Resources { dsp: 1, ..Resources::ZERO };
        let b = Resources { dsp: 5, ..Resources::ZERO };
        assert_eq!(a.saturating_sub(&b), Resources::ZERO);
    }

    #[test]
    fn utilization_takes_binding_category() {
        let budget = Resources {
            dsp: 100,
            lut: 100,
            ..Resources::ZERO
        };
        let used = Resources {
            dsp: 50,
            lut: 80,
            ..Resources::ZERO
        };
        assert!((used.utilization_of(&budget) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn utilization_ignores_zero_budget_categories() {
        let budget = Resources { dsp: 10, ..Resources::ZERO };
        let used = Resources { dsp: 5, ff: 999, ..Resources::ZERO };
        assert!((used.utilization_of(&budget) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_lists_all_categories() {
        let text = sample().to_string();
        for token in ["DSP=10", "LUT=100", "IOBuf=19"] {
            assert!(text.contains(token), "missing {token} in {text}");
        }
    }
}
