//! Property tests for resource arithmetic and the memory pool.

use proptest::collection::vec;
use proptest::prelude::*;

use nimblock_fpga::{MemoryPool, Resources};

fn arb_resources() -> impl Strategy<Value = Resources> {
    (0u32..1_000, 0u32..100_000, 0u32..100_000, 0u32..10_000, 0u32..100, 0u32..100, 0u32..10_000)
        .prop_map(|(dsp, lut, ff, carry, ramb18, ramb36, iobuf)| Resources {
            dsp, lut, ff, carry, ramb18, ramb36, iobuf,
        })
}

proptest! {
    #[test]
    fn add_sub_roundtrips(a in arb_resources(), b in arb_resources()) {
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!((a + b).saturating_sub(&a), b);
    }

    #[test]
    fn fits_within_is_a_partial_order(a in arb_resources(), b in arb_resources()) {
        // Reflexive; and a <= a+b always.
        prop_assert!(a.fits_within(&a));
        prop_assert!(a.fits_within(&(a + b)));
        // Antisymmetric: mutual fit implies equality.
        if a.fits_within(&b) && b.fits_within(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn utilization_is_at_most_one_when_fitting(a in arb_resources(), b in arb_resources()) {
        let budget = a + b;
        prop_assert!(a.utilization_of(&budget) <= 1.0 + 1e-12);
    }

    #[test]
    fn pool_accounting_balances(ops in vec((1u64..1_000, any::<bool>()), 1..200)) {
        let mut pool = MemoryPool::new(100_000);
        let mut live = Vec::new();
        let mut expected_in_use = 0u64;
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (id, size) = live.swap_remove(0);
                pool.free(id).unwrap();
                expected_in_use -= size;
            } else if let Ok(id) = pool.alloc(size) {
                live.push((id, size));
                expected_in_use += size;
            }
            prop_assert_eq!(pool.in_use(), expected_in_use);
            prop_assert!(pool.in_use() <= pool.capacity());
            prop_assert!(pool.peak() >= pool.in_use());
            prop_assert_eq!(pool.live_buffers(), live.len());
        }
        for (id, _) in live {
            pool.free(id).unwrap();
        }
        prop_assert_eq!(pool.in_use(), 0);
    }
}
