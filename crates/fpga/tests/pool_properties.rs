//! Property tests for resource arithmetic and the memory pool, ported to
//! the in-repo `nimblock-check` harness (256 cases per property, replayable
//! via `NIMBLOCK_CHECK_SEED`).

use nimblock_check::{check, prop_assert, prop_assert_eq, Gen};

use nimblock_fpga::{MemoryPool, Resources};

fn arb_resources(g: &mut Gen) -> Resources {
    Resources {
        dsp: g.u32(0..=999),
        lut: g.u32(0..=99_999),
        ff: g.u32(0..=99_999),
        carry: g.u32(0..=9_999),
        ramb18: g.u32(0..=99),
        ramb36: g.u32(0..=99),
        iobuf: g.u32(0..=9_999),
    }
}

#[test]
fn add_sub_roundtrips() {
    check("add_sub_roundtrips", |g| {
        let (a, b) = (arb_resources(g), arb_resources(g));
        prop_assert_eq!((a + b) - b, a);
        prop_assert_eq!((a + b).saturating_sub(&a), b);
        Ok(())
    });
}

#[test]
fn fits_within_is_a_partial_order() {
    check("fits_within_is_a_partial_order", |g| {
        let (a, b) = (arb_resources(g), arb_resources(g));
        // Reflexive; and a <= a+b always.
        prop_assert!(a.fits_within(&a));
        prop_assert!(a.fits_within(&(a + b)));
        // Antisymmetric: mutual fit implies equality.
        if a.fits_within(&b) && b.fits_within(&a) {
            prop_assert_eq!(a, b);
        }
        Ok(())
    });
}

#[test]
fn utilization_is_at_most_one_when_fitting() {
    check("utilization_is_at_most_one_when_fitting", |g| {
        let (a, b) = (arb_resources(g), arb_resources(g));
        let budget = a + b;
        prop_assert!(a.utilization_of(&budget) <= 1.0 + 1e-12);
        Ok(())
    });
}

#[test]
fn pool_accounting_balances() {
    check("pool_accounting_balances", |g| {
        let ops = g.vec(1..=199, |g| (g.u64(1..=999), g.bool()));
        let mut pool = MemoryPool::new(100_000);
        let mut live = Vec::new();
        let mut expected_in_use = 0u64;
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (id, size) = live.swap_remove(0);
                pool.free(id).unwrap();
                expected_in_use -= size;
            } else if let Ok(id) = pool.alloc(size) {
                live.push((id, size));
                expected_in_use += size;
            }
            prop_assert_eq!(pool.in_use(), expected_in_use);
            prop_assert!(pool.in_use() <= pool.capacity());
            prop_assert!(pool.peak() >= pool.in_use());
            prop_assert_eq!(pool.live_buffers(), live.len());
        }
        for (id, _) in live {
            pool.free(id).unwrap();
        }
        prop_assert_eq!(pool.in_use(), 0);
        Ok(())
    });
}

/// Fixed-seed regression cases: pin a handful of concrete inputs drawn from
/// known seeds so algorithm changes that would alter past counterexamples
/// fail loudly even if the random sweep happens to miss them.
#[test]
fn fixed_seed_regressions() {
    for seed in [0u64, 1, 42, 2023, 0xDEAD_BEEF] {
        let mut g = Gen::from_seed(seed);
        let (a, b) = (arb_resources(&mut g), arb_resources(&mut g));
        assert_eq!((a + b) - b, a, "seed {seed}");
        assert!(a.fits_within(&(a + b)), "seed {seed}");
        assert!(a.utilization_of(&(a + b)) <= 1.0 + 1e-12, "seed {seed}");
    }
}
