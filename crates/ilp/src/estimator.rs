//! Fast list-scheduled makespan estimation.

use std::collections::BTreeSet;

use nimblock_app::{TaskGraph, TaskId};
use nimblock_sim::{EventQueue, SimDuration, SimTime};

/// Configuration of a [`PipelineEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorConfig {
    /// Latency of one partial reconfiguration.
    pub reconfig: SimDuration,
    /// Whether tasks pipeline across batch items (the fine-grained sharing
    /// mode of Figure 2(c)); when `false`, a task waits for its predecessors
    /// to finish the *whole* batch (bulk processing, Figure 2(a)/(b)).
    pub pipelining: bool,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            reconfig: SimDuration::from_millis(nimblock_fpga_reconfig_millis()),
            pipelining: true,
        }
    }
}

/// The ZCU106 reconfiguration latency without depending on `nimblock-fpga`.
/// Kept in sync by the cross-crate integration tests.
const fn nimblock_fpga_reconfig_millis() -> u64 {
    80
}

/// Estimates the makespan of one application on `k` slots.
///
/// This is the reproduction's stand-in for the DML ILP formulation the paper
/// solves with Gurobi (§4.2): a deterministic greedy list schedule that
/// models the two effects the formulation captures — serialized partial
/// reconfiguration and cross-batch pipelining. The saturation analysis only
/// needs the *shape* of makespan versus slot count, for which a greedy
/// schedule is accurate on these task graphs; `crate::saturation` tests
/// cross-check it against the exact ILP on small instances.
///
/// # Example
///
/// ```
/// use nimblock_app::benchmarks;
/// use nimblock_ilp::{EstimatorConfig, PipelineEstimator};
///
/// let estimator = PipelineEstimator::new(EstimatorConfig::default());
/// let graph = benchmarks::optical_flow();
/// let one = estimator.makespan(graph.graph(), 10, 1);
/// let four = estimator.makespan(graph.graph(), 10, 4);
/// assert!(four < one, "more slots should not slow an app down");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PipelineEstimator {
    config: EstimatorConfig,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    ReconfigDone(TaskId),
    ItemDone(TaskId),
}

impl PipelineEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(config: EstimatorConfig) -> Self {
        PipelineEstimator { config }
    }

    /// Returns the estimator configuration.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Estimates the time to process `batch` items of `graph` on `slots`
    /// slots, including all reconfigurations, starting from an empty device.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or `batch` is zero.
    pub fn makespan(&self, graph: &TaskGraph, batch: u32, slots: usize) -> SimDuration {
        assert!(slots > 0, "need at least one slot");
        assert!(batch > 0, "need at least one batch item");
        let n = graph.task_count();
        let batch = batch as usize;

        // Per-task progress.
        let mut item_done_at: Vec<Vec<SimTime>> = vec![Vec::with_capacity(batch); n];
        let mut configured = vec![false; n];
        let mut running = vec![false; n]; // currently processing an item
        let mut finished = vec![false; n]; // all items done, slot released
        let mut reconfiguring = vec![false; n];

        let mut free_slots = slots;
        let mut cap_free_at = SimTime::ZERO;
        // Tasks not yet configured, in topological order.
        let mut unconfigured: Vec<TaskId> = graph.topological_order().to_vec();
        let mut queue: EventQueue<Event> = EventQueue::new();
        let mut now = SimTime::ZERO;
        let mut makespan = SimTime::ZERO;
        // Deterministic set of tasks that might be able to launch an item.
        let mut launch_candidates: BTreeSet<TaskId> = BTreeSet::new();

        // Dispatch: start reconfigs and item launches that have become legal.
        // Returns scheduled events through `queue`.
        let dispatch = |now: SimTime,
                        queue: &mut EventQueue<Event>,
                        unconfigured: &mut Vec<TaskId>,
                        free_slots: &mut usize,
                        cap_free_at: &mut SimTime,
                        configured: &[bool],
                        reconfiguring: &mut [bool],
                        running: &mut [bool],
                        finished: &[bool],
                        item_done_at: &[Vec<SimTime>],
                        launch_candidates: &mut BTreeSet<TaskId>,
                        graph: &TaskGraph,
                        pipelining: bool,
                        reconfig: SimDuration| {
            // 1. Configure the next topo-order task whose predecessors are
            //    all configured or finished (so reconfiguration overlaps
            //    upstream compute), while slots and the CAP allow.
            while *free_slots > 0 {
                let next = unconfigured
                    .iter()
                    .position(|&t| {
                        graph
                            .predecessors(t)
                            .iter()
                            .all(|&p| configured[p.index()] || finished[p.index()] || reconfiguring[p.index()])
                    });
                let Some(pos) = next else { break };
                let task = unconfigured.remove(pos);
                *free_slots -= 1;
                reconfiguring[task.index()] = true;
                let start = now.max(*cap_free_at);
                let done = start + reconfig;
                *cap_free_at = done;
                queue.push(done, Event::ReconfigDone(task));
            }
            // 2. Launch items on idle configured tasks whose dependency for
            //    the next item is satisfied.
            let candidates: Vec<TaskId> = launch_candidates.iter().copied().collect();
            for task in candidates {
                let t = task.index();
                if !configured[t] || running[t] || finished[t] {
                    launch_candidates.remove(&task);
                    continue;
                }
                let next_item = item_done_at[t].len();
                let deps_ok = graph.predecessors(task).iter().all(|&p| {
                    let done = item_done_at[p.index()].len();
                    if pipelining {
                        done > next_item
                    } else {
                        done == batch
                    }
                });
                if deps_ok {
                    running[t] = true;
                    let latency = graph.task(task).latency();
                    queue.push(now + latency, Event::ItemDone(task));
                    launch_candidates.remove(&task);
                }
            }
        };

        // Seed.
        dispatch(
            now,
            &mut queue,
            &mut unconfigured,
            &mut free_slots,
            &mut cap_free_at,
            &configured,
            &mut reconfiguring,
            &mut running,
            &finished,
            &item_done_at,
            &mut launch_candidates,
            graph,
            self.config.pipelining,
            self.config.reconfig,
        );

        while let Some((at, event)) = queue.pop() {
            now = at;
            match event {
                Event::ReconfigDone(task) => {
                    let t = task.index();
                    reconfiguring[t] = false;
                    configured[t] = true;
                    launch_candidates.insert(task);
                }
                Event::ItemDone(task) => {
                    let t = task.index();
                    running[t] = false;
                    item_done_at[t].push(now);
                    makespan = makespan.max(now);
                    if item_done_at[t].len() == batch {
                        finished[t] = true;
                        configured[t] = false;
                        free_slots += 1;
                    } else {
                        launch_candidates.insert(task);
                    }
                    // A completed item may unblock successors.
                    for &succ in graph.successors(task) {
                        launch_candidates.insert(succ);
                    }
                }
            }
            dispatch(
                now,
                &mut queue,
                &mut unconfigured,
                &mut free_slots,
                &mut cap_free_at,
                &configured,
                &mut reconfiguring,
                &mut running,
                &finished,
                &item_done_at,
                &mut launch_candidates,
                graph,
                self.config.pipelining,
                self.config.reconfig,
            );
        }

        debug_assert!(
            finished.iter().all(|&f| f),
            "estimator drained its queue with unfinished tasks — scheduling deadlock"
        );
        makespan.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::{benchmarks, TaskGraphBuilder, TaskSpec};

    fn config(pipelining: bool) -> EstimatorConfig {
        EstimatorConfig {
            reconfig: SimDuration::from_millis(80),
            pipelining,
        }
    }

    fn chain(latencies_ms: &[u64]) -> TaskGraph {
        let mut builder = TaskGraphBuilder::new();
        let ids: Vec<_> = latencies_ms
            .iter()
            .enumerate()
            .map(|(i, &ms)| builder.add_task(TaskSpec::new(format!("t{i}"), SimDuration::from_millis(ms))))
            .collect();
        builder.add_chain(&ids).unwrap();
        builder.build().unwrap()
    }

    #[test]
    fn single_task_single_slot() {
        let graph = chain(&[100]);
        let est = PipelineEstimator::new(config(true));
        // 80 ms reconfig + 3 × 100 ms.
        assert_eq!(
            est.makespan(&graph, 3, 1),
            SimDuration::from_millis(380)
        );
    }

    #[test]
    fn single_slot_chain_serializes_everything() {
        let graph = chain(&[100, 100]);
        let est = PipelineEstimator::new(config(true));
        // reconfig t0 (80) + 2×100 + reconfig t1 (80) + 2×100 = 560 ms.
        assert_eq!(est.makespan(&graph, 2, 1), SimDuration::from_millis(560));
    }

    #[test]
    fn two_slots_pipeline_a_two_task_chain() {
        let graph = chain(&[100, 100]);
        let est = PipelineEstimator::new(config(true));
        // t0 cfg at 80, items at 180, 280. t1 cfg at 160.
        // t1 item0 starts at 180 -> 280; item1 at 280 -> 380.
        assert_eq!(est.makespan(&graph, 2, 2), SimDuration::from_millis(380));
    }

    #[test]
    fn bulk_mode_waits_for_whole_batch() {
        let graph = chain(&[100, 100]);
        let est = PipelineEstimator::new(config(false));
        // t0 cfg 80, batch done at 280; t1 cfg'd long before, runs 280..480.
        assert_eq!(est.makespan(&graph, 2, 2), SimDuration::from_millis(480));
    }

    #[test]
    fn more_slots_never_hurt() {
        let est = PipelineEstimator::new(config(true));
        for app in benchmarks::all() {
            let graph = app.graph();
            let mut prev = est.makespan(graph, 6, 1);
            for k in 2..=10 {
                let m = est.makespan(graph, 6, k);
                assert!(
                    m <= prev,
                    "{}: makespan({k}) = {m} > makespan({}) = {prev}",
                    app.name(),
                    k - 1
                );
                prev = m;
            }
        }
    }

    #[test]
    fn pipelining_beats_bulk_on_batched_chains() {
        let pipe = PipelineEstimator::new(config(true));
        let bulk = PipelineEstimator::new(config(false));
        let graph = benchmarks::optical_flow();
        assert!(
            pipe.makespan(graph.graph(), 10, 4) < bulk.makespan(graph.graph(), 10, 4)
        );
    }

    #[test]
    fn batch_one_gains_nothing_from_pipelining() {
        let pipe = PipelineEstimator::new(config(true));
        let bulk = PipelineEstimator::new(config(false));
        let graph = benchmarks::lenet();
        assert_eq!(
            pipe.makespan(graph.graph(), 1, 3),
            bulk.makespan(graph.graph(), 1, 3)
        );
    }

    #[test]
    fn alexnet_completes_on_few_slots() {
        let est = PipelineEstimator::new(config(true));
        let graph = benchmarks::alexnet();
        // 38 tasks on 2 slots must terminate (no deadlock) and beat 1 slot.
        let two = est.makespan(graph.graph(), 2, 2);
        let one = est.makespan(graph.graph(), 2, 1);
        assert!(two < one);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let est = PipelineEstimator::default();
        est.makespan(benchmarks::lenet().graph(), 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one batch item")]
    fn zero_batch_panics() {
        let est = PipelineEstimator::default();
        est.makespan(benchmarks::lenet().graph(), 0, 1);
    }
}
