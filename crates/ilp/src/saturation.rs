//! Goal-number saturation analysis (paper §4.2).
//!
//! For every application we sweep the slot count from one to the number of
//! slots in the system, estimate the makespan at each count, and identify
//! the *saturation point*: the allocation beyond which additional slots
//! yield little or no improvement. The Nimblock slot allocator uses the
//! resulting *goal number* when distributing surplus slots.

use nimblock_ser::impl_json_struct;

use nimblock_app::AppSpec;
use nimblock_sim::SimDuration;

use crate::{EstimatorConfig, IlpError, PipelineEstimator, Problem, Relation, Sense};

/// Fractional improvement below which an additional slot is considered
/// marginal (the knee-detection threshold of the sweep).
pub const DEFAULT_IMPROVEMENT_THRESHOLD: f64 = 0.05;

/// Result of a saturation sweep for one application at one batch size.
///
/// # Example
///
/// ```
/// use nimblock_app::benchmarks;
/// use nimblock_ilp::saturation;
/// use nimblock_sim::SimDuration;
///
/// let analysis = saturation::analyze(
///     &benchmarks::image_compression(),
///     16,
///     10,
///     SimDuration::from_millis(80),
/// );
/// assert_eq!(analysis.makespans().len(), 10);
/// assert!(analysis.speedup(analysis.goal_number()) >= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationAnalysis {
    app_name: String,
    batch_size: u32,
    makespans: Vec<SimDuration>,
    goal_number: usize,
}

impl_json_struct!(SaturationAnalysis { app_name, batch_size, makespans, goal_number });

impl SaturationAnalysis {
    /// Returns the application name the analysis belongs to.
    pub fn app_name(&self) -> &str {
        &self.app_name
    }

    /// Returns the batch size the analysis was run at.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Returns the estimated makespans for slot counts `1..=max_slots`.
    pub fn makespans(&self) -> &[SimDuration] {
        &self.makespans
    }

    /// Returns the estimated makespan for `slots` slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or beyond the swept range.
    pub fn makespan(&self, slots: usize) -> SimDuration {
        self.makespans[slots - 1]
    }

    /// Returns the speedup of `slots` slots over a single slot.
    pub fn speedup(&self, slots: usize) -> f64 {
        self.makespan(1).as_micros() as f64 / self.makespan(slots).as_micros() as f64
    }

    /// Returns the goal number: the saturation point of the sweep.
    pub fn goal_number(&self) -> usize {
        self.goal_number
    }
}

/// Sweeps slot counts `1..=max_slots` for `app` at `batch_size` and derives
/// the goal number with the default pipelined estimator and improvement
/// threshold.
///
/// # Panics
///
/// Panics if `max_slots` or `batch_size` is zero.
pub fn analyze(
    app: &AppSpec,
    batch_size: u32,
    max_slots: usize,
    reconfig: SimDuration,
) -> SaturationAnalysis {
    let estimator = PipelineEstimator::new(EstimatorConfig {
        reconfig,
        pipelining: true,
    });
    analyze_with(&estimator, app, batch_size, max_slots, DEFAULT_IMPROVEMENT_THRESHOLD)
}

/// Sweeps slot counts with an explicit estimator and knee threshold.
///
/// # Panics
///
/// Panics if `max_slots` or `batch_size` is zero, or if `threshold` is not
/// in `(0, 1)`.
pub fn analyze_with(
    estimator: &PipelineEstimator,
    app: &AppSpec,
    batch_size: u32,
    max_slots: usize,
    threshold: f64,
) -> SaturationAnalysis {
    assert!(max_slots > 0, "need at least one slot");
    assert!(
        threshold > 0.0 && threshold < 1.0,
        "threshold must be a fraction in (0, 1)"
    );
    let makespans: Vec<SimDuration> = (1..=max_slots)
        .map(|k| estimator.makespan(app.graph(), batch_size, k))
        .collect();
    let goal_number = knee(&makespans, threshold);
    SaturationAnalysis {
        app_name: app.name().to_owned(),
        batch_size,
        makespans,
        goal_number,
    }
}

/// Returns the saturation point of a makespan curve: the smallest slot
/// count whose successor improves the makespan by less than `threshold`
/// (fractionally). A curve that keeps improving saturates at its end.
fn knee(makespans: &[SimDuration], threshold: f64) -> usize {
    for k in 0..makespans.len() - 1 {
        let current = makespans[k].as_micros() as f64;
        let next = makespans[k + 1].as_micros() as f64;
        if current - next < threshold * current {
            return k + 1; // 1-based slot count
        }
    }
    makespans.len()
}

/// Splits `total_slots` among applications to minimize the sum of their
/// estimated makespans, using the exact ILP solver.
///
/// Each entry of `curves` is one application's makespan-versus-slot-count
/// curve (index 0 = one slot). Every application receives at least one
/// slot. This is the reproduction's analogue of solving the DML allocation
/// problem exactly; `nimblock-core`'s allocator uses the cheaper rule-based
/// method, and the ablation benches compare the two.
///
/// # Errors
///
/// Returns [`IlpError::Infeasible`] when `total_slots < curves.len()`
/// (cannot give everyone a slot), or any solver error.
///
/// # Panics
///
/// Panics if `curves` is empty or any curve is empty.
pub fn optimal_slot_split(
    curves: &[Vec<SimDuration>],
    total_slots: usize,
) -> Result<Vec<usize>, IlpError> {
    assert!(!curves.is_empty(), "need at least one application");
    let mut problem = Problem::new(Sense::Minimize);
    // x[a][k] = 1 iff app `a` gets k+1 slots.
    let mut vars = Vec::with_capacity(curves.len());
    for curve in curves {
        assert!(!curve.is_empty(), "each curve needs at least one entry");
        let choice_vars: Vec<_> = curve
            .iter()
            .map(|makespan| problem.add_integer_var(0.0, 1.0, makespan.as_secs_f64()))
            .collect();
        // Exactly one slot count per application.
        let terms: Vec<_> = choice_vars.iter().map(|&v| (v, 1.0)).collect();
        problem.add_constraint(&terms, Relation::Eq, 1.0);
        vars.push(choice_vars);
    }
    // Total slots bounded.
    let mut slot_terms = Vec::new();
    for choice_vars in &vars {
        for (k, &v) in choice_vars.iter().enumerate() {
            slot_terms.push((v, (k + 1) as f64));
        }
    }
    problem.add_constraint(&slot_terms, Relation::LessEq, total_slots as f64);

    let solution = problem.solve()?;
    Ok(vars
        .iter()
        .map(|choice_vars| {
            choice_vars
                .iter()
                .position(|&v| solution.value(v) > 0.5)
                .map(|k| k + 1)
                .expect("exactly-one constraint guarantees a selected slot count")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::benchmarks;

    const R: SimDuration = SimDuration::from_millis(80);

    #[test]
    fn knee_detects_flat_tail() {
        let curve = vec![
            SimDuration::from_millis(1000),
            SimDuration::from_millis(500),
            SimDuration::from_millis(490),
            SimDuration::from_millis(489),
        ];
        assert_eq!(knee(&curve, 0.05), 2);
    }

    #[test]
    fn knee_saturates_at_end_when_curve_keeps_improving() {
        let curve: Vec<SimDuration> = (1..=4)
            .map(|k| SimDuration::from_millis(1000 / k))
            .collect();
        assert_eq!(knee(&curve, 0.05), 4);
    }

    #[test]
    fn second_slot_gives_greatest_benefit_for_batched_apps() {
        // Paper §4.2: "allocating a second slot provides the greatest
        // benefit" — multiple batches execute in parallel.
        for app in benchmarks::all() {
            let analysis = analyze(&app, 10, 10, R);
            let gain12 = analysis.makespan(1).as_secs_f64() - analysis.makespan(2).as_secs_f64();
            for k in 2..10 {
                let gain = analysis.makespan(k).as_secs_f64() - analysis.makespan(k + 1).as_secs_f64();
                assert!(
                    gain12 >= gain - 1e-9,
                    "{}: slot 2 gain {gain12} < slot {} gain {gain}",
                    app.name(),
                    k + 1
                );
            }
        }
    }

    #[test]
    fn goal_numbers_are_sane() {
        for app in benchmarks::all() {
            let analysis = analyze(&app, 10, 10, R);
            let goal = analysis.goal_number();
            assert!(
                (1..=10).contains(&goal),
                "{} goal number {goal} out of range",
                app.name()
            );
            // Batched applications should want at least two slots.
            assert!(goal >= 2, "{} goal {goal} < 2 at batch 10", app.name());
        }
    }

    #[test]
    fn batch_one_chain_saturates_quickly() {
        let analysis = analyze(&benchmarks::lenet(), 1, 10, R);
        // A 3-task chain at batch 1 has almost no parallelism; only the
        // reconfiguration overlap helps.
        assert!(analysis.goal_number() <= 3);
    }

    #[test]
    fn analysis_accessors_roundtrip() {
        let analysis = analyze(&benchmarks::rendering_3d(), 5, 4, R);
        assert_eq!(analysis.app_name(), "3DRendering");
        assert_eq!(analysis.batch_size(), 5);
        assert_eq!(analysis.makespans().len(), 4);
        assert!(analysis.speedup(4) >= analysis.speedup(1));
        assert_eq!(analysis.speedup(1), 1.0);
    }

    #[test]
    fn optimal_slot_split_prefers_the_app_that_benefits() {
        // App A halves with a second slot; app B doesn't improve.
        let curves = vec![
            vec![SimDuration::from_secs(10), SimDuration::from_secs(5)],
            vec![SimDuration::from_secs(10), SimDuration::from_secs(10)],
        ];
        let split = optimal_slot_split(&curves, 3).unwrap();
        assert_eq!(split, vec![2, 1]);
    }

    #[test]
    fn optimal_slot_split_requires_a_slot_per_app() {
        let curves = vec![vec![SimDuration::from_secs(1)], vec![SimDuration::from_secs(1)]];
        assert!(optimal_slot_split(&curves, 1).is_err());
    }

    #[test]
    fn optimal_slot_split_matches_rule_based_on_uniform_curves() {
        // Three identical apps, 6 slots: the ILP should give 2 each.
        let curve = vec![
            SimDuration::from_secs(9),
            SimDuration::from_secs(5),
            SimDuration::from_secs(4),
        ];
        let split = optimal_slot_split(&vec![curve; 3], 6).unwrap();
        assert_eq!(split, vec![2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "threshold must be a fraction")]
    fn bad_threshold_panics() {
        let estimator = PipelineEstimator::default();
        analyze_with(&estimator, &benchmarks::lenet(), 1, 2, 1.5);
    }
}
