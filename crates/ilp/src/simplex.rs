//! Dense two-phase primal simplex for LP relaxations.
//!
//! Internal to the crate: [`crate::Problem`] is the public face. The solver
//! handles small dense problems (tens of variables), which is all the
//! saturation analysis and the tests require; Bland's rule guarantees
//! termination.

use crate::problem::Relation;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum LpOutcome {
    /// Optimal solution found: variable values and objective (maximization).
    Optimal { values: Vec<f64>, objective: f64 },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

/// One linear constraint `coeffs · x (relation) rhs` over dense coefficients.
#[derive(Debug, Clone)]
pub(crate) struct DenseConstraint {
    pub coeffs: Vec<f64>,
    pub relation: Relation,
    pub rhs: f64,
}

const EPS: f64 = 1e-9;

/// Maximizes `objective · x` subject to `constraints` and `x >= 0`.
pub(crate) fn maximize(n_vars: usize, constraints: &[DenseConstraint], objective: &[f64]) -> LpOutcome {
    assert_eq!(objective.len(), n_vars, "objective length must match variable count");

    // Normalize to equality form with slack/surplus variables and b >= 0,
    // adding artificial variables where no obvious basic column exists.
    let m = constraints.len();
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(m);
    let mut slack_cols = 0usize;
    // First pass: count slack/surplus columns.
    for c in constraints {
        match c.relation {
            Relation::LessEq | Relation::GreaterEq => slack_cols += 1,
            Relation::Eq => {}
        }
    }
    let total_structural = n_vars + slack_cols;
    let mut slack_index = 0usize;
    let mut needs_artificial = Vec::with_capacity(m);
    for c in constraints {
        assert_eq!(c.coeffs.len(), n_vars, "constraint length must match variable count");
        let mut flip = false;
        let mut rhs = c.rhs;
        let mut relation = c.relation;
        if rhs < 0.0 {
            flip = true;
            rhs = -rhs;
            relation = match relation {
                Relation::LessEq => Relation::GreaterEq,
                Relation::GreaterEq => Relation::LessEq,
                Relation::Eq => Relation::Eq,
            };
        }
        let mut row = vec![0.0; total_structural];
        for (j, &a) in c.coeffs.iter().enumerate() {
            row[j] = if flip { -a } else { a };
        }
        match relation {
            Relation::LessEq => {
                row[n_vars + slack_index] = 1.0;
                slack_index += 1;
                needs_artificial.push(false);
            }
            Relation::GreaterEq => {
                row[n_vars + slack_index] = -1.0;
                slack_index += 1;
                needs_artificial.push(true);
            }
            Relation::Eq => {
                needs_artificial.push(true);
            }
        }
        rows.push((row, rhs));
    }

    let n_artificial = needs_artificial.iter().filter(|&&b| b).count();
    let total = total_structural + n_artificial;

    // Tableau: m rows × (total + 1) columns, last column is rhs.
    let mut tableau = vec![vec![0.0; total + 1]; m];
    let mut basis = vec![0usize; m];
    let mut art_index = 0usize;
    for (i, (row, rhs)) in rows.into_iter().enumerate() {
        tableau[i][..total_structural].copy_from_slice(&row);
        tableau[i][total] = rhs;
        if needs_artificial[i] {
            let col = total_structural + art_index;
            tableau[i][col] = 1.0;
            basis[i] = col;
            art_index += 1;
        } else {
            // The slack column added for this row is basic.
            let col = (0..total_structural)
                .rev()
                .find(|&j| (tableau[i][j] - 1.0).abs() < EPS && j >= n_vars)
                .expect("a <= row always has its slack column");
            basis[i] = col;
        }
    }

    if n_artificial > 0 {
        // Phase 1: minimize the sum of artificials == maximize -(sum).
        let mut phase1 = vec![0.0; total];
        for weight in phase1.iter_mut().skip(total_structural) {
            *weight = -1.0;
        }
        match run_simplex(&mut tableau, &mut basis, &phase1, total) {
            SimplexEnd::Unbounded => return LpOutcome::Infeasible, // cannot happen, defensive
            SimplexEnd::Optimal => {}
        }
        let phase1_obj: f64 = basis
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b >= total_structural)
            .map(|(i, _)| tableau[i][total])
            .sum();
        if phase1_obj > 1e-6 {
            return LpOutcome::Infeasible;
        }
        // Drive remaining artificials out of the basis where possible.
        for i in 0..m {
            if basis[i] >= total_structural && tableau[i][total].abs() < EPS {
                if let Some(j) = (0..total_structural).find(|&j| tableau[i][j].abs() > EPS) {
                    pivot(&mut tableau, &mut basis, i, j, total);
                }
            }
        }
    }

    // Phase 2: maximize the real objective (artificial columns pinned to 0).
    let mut phase2 = vec![0.0; total];
    phase2[..n_vars].copy_from_slice(objective);
    // Forbid artificials from re-entering by treating their columns as absent.
    for row in tableau.iter_mut() {
        for col in row.iter_mut().take(total).skip(total_structural) {
            *col = 0.0;
        }
    }
    match run_simplex(&mut tableau, &mut basis, &phase2, total) {
        SimplexEnd::Unbounded => return LpOutcome::Unbounded,
        SimplexEnd::Optimal => {}
    }

    let mut values = vec![0.0; n_vars];
    for (i, &b) in basis.iter().enumerate() {
        if b < n_vars {
            values[b] = tableau[i][total];
        }
    }
    let objective_value: f64 = values.iter().zip(objective).map(|(x, c)| x * c).sum();
    LpOutcome::Optimal {
        values,
        objective: objective_value,
    }
}

enum SimplexEnd {
    Optimal,
    Unbounded,
}

/// Runs primal simplex iterations (maximization) with Bland's rule.
fn run_simplex(
    tableau: &mut [Vec<f64>],
    basis: &mut [usize],
    objective: &[f64],
    total: usize,
) -> SimplexEnd {
    let m = tableau.len();
    loop {
        // Reduced costs: c_j - c_B · B^-1 A_j, computed directly.
        let mut entering = None;
        for j in 0..total {
            if basis.contains(&j) {
                continue;
            }
            let mut reduced = objective[j];
            for i in 0..m {
                reduced -= objective[basis[i]] * tableau[i][j];
            }
            if reduced > EPS {
                entering = Some(j); // Bland: first improving column.
                break;
            }
        }
        let Some(enter) = entering else {
            return SimplexEnd::Optimal;
        };
        // Ratio test with Bland's tie break (lowest basis index).
        let mut leaving: Option<(usize, f64)> = None;
        for i in 0..m {
            let a = tableau[i][enter];
            if a > EPS {
                let ratio = tableau[i][total] / a;
                match leaving {
                    None => leaving = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - EPS || (ratio < lr + EPS && basis[i] < basis[li]) {
                            leaving = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((leave, _)) = leaving else {
            return SimplexEnd::Unbounded;
        };
        pivot(tableau, basis, leave, enter, total);
    }
}

fn pivot(tableau: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let p = tableau[row][col];
    debug_assert!(p.abs() > EPS, "pivot on a (near-)zero element");
    for v in tableau[row].iter_mut() {
        *v /= p;
    }
    let pivot_row = tableau[row].clone();
    for (i, r) in tableau.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let factor = r[col];
        if factor.abs() > EPS {
            for (v, pv) in r.iter_mut().zip(&pivot_row).take(total + 1) {
                *v -= factor * pv;
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(coeffs: Vec<f64>, rhs: f64) -> DenseConstraint {
        DenseConstraint { coeffs, relation: Relation::LessEq, rhs }
    }

    fn ge(coeffs: Vec<f64>, rhs: f64) -> DenseConstraint {
        DenseConstraint { coeffs, relation: Relation::GreaterEq, rhs }
    }

    fn eq(coeffs: Vec<f64>, rhs: f64) -> DenseConstraint {
        DenseConstraint { coeffs, relation: Relation::Eq, rhs }
    }

    fn assert_optimal(outcome: LpOutcome, expect_obj: f64, expect_x: &[f64]) {
        let LpOutcome::Optimal { values, objective } = outcome else {
            panic!("expected optimal, got {outcome:?}");
        };
        assert!((objective - expect_obj).abs() < 1e-6, "objective {objective} != {expect_obj}");
        for (v, e) in values.iter().zip(expect_x) {
            assert!((v - e).abs() < 1e-6, "values {values:?} != {expect_x:?}");
        }
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), 36.
        let outcome = maximize(
            2,
            &[
                le(vec![1.0, 0.0], 4.0),
                le(vec![0.0, 2.0], 12.0),
                le(vec![3.0, 2.0], 18.0),
            ],
            &[3.0, 5.0],
        );
        assert_optimal(outcome, 36.0, &[2.0, 6.0]);
    }

    #[test]
    fn greater_equal_constraints_via_phase1() {
        // max -x - y s.t. x + y >= 2, x <= 5, y <= 5 => obj -2 on the line x+y=2.
        let outcome = maximize(
            2,
            &[ge(vec![1.0, 1.0], 2.0), le(vec![1.0, 0.0], 5.0), le(vec![0.0, 1.0], 5.0)],
            &[-1.0, -1.0],
        );
        let LpOutcome::Optimal { values, objective } = outcome else {
            panic!("expected optimal");
        };
        assert!((objective + 2.0).abs() < 1e-6);
        assert!((values[0] + values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // max x + 2y s.t. x + y = 3, x <= 2 => (0..=2; best y) -> x=0? obj: x+2y with y=3-x => 6-x, max at x=0 => 6.
        let outcome = maximize(2, &[eq(vec![1.0, 1.0], 3.0), le(vec![1.0, 0.0], 2.0)], &[1.0, 2.0]);
        assert_optimal(outcome, 6.0, &[0.0, 3.0]);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let outcome = maximize(1, &[le(vec![1.0], 1.0), ge(vec![1.0], 2.0)], &[1.0]);
        assert_eq!(outcome, LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // max x with only x >= 0.
        let outcome = maximize(1, &[], &[1.0]);
        assert_eq!(outcome, LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x <= -2  <=>  x >= 2; max -x => x = 2.
        let outcome = maximize(1, &[le(vec![-1.0], -2.0), le(vec![1.0], 10.0)], &[-1.0]);
        assert_optimal(outcome, -2.0, &[2.0]);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Degenerate vertex at origin; Bland's rule must not cycle.
        let outcome = maximize(
            2,
            &[
                le(vec![1.0, 1.0], 0.0),
                le(vec![1.0, -1.0], 0.0),
                le(vec![1.0, 0.0], 5.0),
            ],
            &[1.0, 0.0],
        );
        let LpOutcome::Optimal { objective, .. } = outcome else {
            panic!("expected optimal");
        };
        assert!(objective.abs() < 1e-9);
    }
}
