//! Public ILP problem builder and branch & bound solver.

use std::error::Error;
use std::fmt;

use crate::simplex::{self, DenseConstraint, LpOutcome};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Maximize the objective.
    #[default]
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    LessEq,
    /// `expr >= rhs`
    GreaterEq,
    /// `expr == rhs`
    Eq,
}

/// Identifier of a decision variable within one [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Returns the variable's index in the problem.
    pub const fn index(self) -> usize {
        self.0
    }
}

/// An error raised by [`Problem::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IlpError {
    /// The constraints admit no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// Branch & bound exceeded its node budget without proving optimality.
    NodeLimit {
        /// The configured node budget.
        limit: usize,
    },
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::Infeasible => write!(f, "problem is infeasible"),
            IlpError::Unbounded => write!(f, "objective is unbounded"),
            IlpError::NodeLimit { limit } => {
                write!(f, "branch & bound exceeded its node budget of {limit}")
            }
        }
    }
}

impl Error for IlpError {}

/// A sparse constraint: terms as `(variable index, coefficient)` pairs.
type SparseConstraint = (Vec<(usize, f64)>, Relation, f64);

#[derive(Debug, Clone)]
struct Variable {
    lower: f64,
    upper: f64,
    integer: bool,
    objective: f64,
}

/// An optimal solution returned by [`Problem::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
    nodes_explored: usize,
}

impl Solution {
    /// Returns the optimal objective value (in the problem's own sense).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Returns the value of `var` at the optimum.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.0]
    }

    /// Returns all variable values in declaration order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns how many branch & bound nodes were explored.
    pub fn nodes_explored(&self) -> usize {
        self.nodes_explored
    }
}

/// A mixed-integer linear program.
///
/// Small and exact: the LP relaxation is solved with a dense two-phase
/// simplex, and integrality is enforced by depth-first branch & bound with
/// best-incumbent pruning. Intended for the saturation analysis and other
/// off-critical-path formulations, mirroring the paper's use of Gurobi.
///
/// # Example
///
/// A tiny knapsack: two items of value 60/100 and weight 10/20, capacity 25.
///
/// ```
/// use nimblock_ilp::{Problem, Relation, Sense};
///
/// let mut p = Problem::new(Sense::Maximize);
/// let a = p.add_integer_var(0.0, 1.0, 60.0);
/// let b = p.add_integer_var(0.0, 1.0, 100.0);
/// p.add_constraint(&[(a, 10.0), (b, 20.0)], Relation::LessEq, 25.0);
/// let solution = p.solve()?;
/// assert_eq!(solution.objective(), 100.0);
/// assert_eq!(solution.value(b), 1.0);
/// # Ok::<(), nimblock_ilp::IlpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    variables: Vec<Variable>,
    constraints: Vec<SparseConstraint>,
    node_limit: usize,
    integrality_tol: f64,
}

impl Problem {
    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            variables: Vec::new(),
            constraints: Vec::new(),
            node_limit: 100_000,
            integrality_tol: 1e-6,
        }
    }

    /// Sets the branch & bound node budget (default 100 000).
    pub fn with_node_limit(mut self, node_limit: usize) -> Self {
        self.node_limit = node_limit;
        self
    }

    /// Adds a continuous variable with bounds `[lower, upper]` and the given
    /// objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or `lower < 0` (the solver works over the
    /// non-negative orthant; shift variables if you need negative ranges).
    pub fn add_var(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        assert!(lower <= upper, "lower bound {lower} exceeds upper bound {upper}");
        assert!(lower >= 0.0, "variables must be non-negative; shift the model");
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            lower,
            upper,
            integer: false,
            objective,
        });
        id
    }

    /// Adds an integer variable with bounds `[lower, upper]` and the given
    /// objective coefficient.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Problem::add_var`].
    pub fn add_integer_var(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        let id = self.add_var(lower, upper, objective);
        self.variables[id.0].integer = true;
        id
    }

    /// Adds the constraint `Σ coeff · var (relation) rhs`.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], relation: Relation, rhs: f64) {
        let dense_terms = terms.iter().map(|&(v, c)| (v.0, c)).collect();
        self.constraints.push((dense_terms, relation, rhs));
    }

    /// Returns the number of declared variables.
    pub fn var_count(&self) -> usize {
        self.variables.len()
    }

    /// Returns the number of declared constraints (bounds not included).
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Solves the problem to optimality.
    ///
    /// # Errors
    ///
    /// * [`IlpError::Infeasible`] if no assignment satisfies the constraints,
    /// * [`IlpError::Unbounded`] if the objective diverges,
    /// * [`IlpError::NodeLimit`] if branch & bound exhausts its node budget.
    pub fn solve(&self) -> Result<Solution, IlpError> {
        let n = self.variables.len();
        // Internally always maximize; negate coefficients for minimization.
        let sign = match self.sense {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let objective: Vec<f64> = self.variables.iter().map(|v| sign * v.objective).collect();

        let mut base: Vec<DenseConstraint> = Vec::new();
        for (terms, relation, rhs) in &self.constraints {
            let mut coeffs = vec![0.0; n];
            for &(j, c) in terms {
                coeffs[j] += c;
            }
            base.push(DenseConstraint {
                coeffs,
                relation: *relation,
                rhs: *rhs,
            });
        }
        for (j, v) in self.variables.iter().enumerate() {
            let mut coeffs = vec![0.0; n];
            coeffs[j] = 1.0;
            if v.upper.is_finite() {
                base.push(DenseConstraint {
                    coeffs: coeffs.clone(),
                    relation: Relation::LessEq,
                    rhs: v.upper,
                });
            }
            if v.lower > 0.0 {
                base.push(DenseConstraint {
                    coeffs,
                    relation: Relation::GreaterEq,
                    rhs: v.lower,
                });
            }
        }

        // Depth-first branch & bound over bound tightenings.
        struct Node {
            extra: Vec<DenseConstraint>,
        }
        let mut stack = vec![Node { extra: Vec::new() }];
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        let mut nodes = 0usize;

        while let Some(node) = stack.pop() {
            nodes += 1;
            if nodes > self.node_limit {
                return Err(IlpError::NodeLimit {
                    limit: self.node_limit,
                });
            }
            let mut constraints = base.clone();
            constraints.extend(node.extra.iter().cloned());
            let outcome = simplex::maximize(n, &constraints, &objective);
            let (values, bound) = match outcome {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => return Err(IlpError::Unbounded),
                LpOutcome::Optimal { values, objective } => (values, objective),
            };
            if let Some((best, _)) = &incumbent {
                if bound <= *best + 1e-9 {
                    continue; // cannot beat the incumbent
                }
            }
            // Find the most fractional integer variable.
            let fractional = self
                .variables
                .iter()
                .enumerate()
                .filter(|(_, v)| v.integer)
                .map(|(j, _)| (j, values[j], (values[j] - values[j].round()).abs()))
                .filter(|&(_, _, frac)| frac > self.integrality_tol)
                .max_by(|a, b| a.2.total_cmp(&b.2));
            match fractional {
                None => {
                    // Integral: candidate incumbent.
                    let better = incumbent
                        .as_ref()
                        .map(|(best, _)| bound > *best + 1e-9)
                        .unwrap_or(true);
                    if better {
                        incumbent = Some((bound, values));
                    }
                }
                Some((j, value, _)) => {
                    let floor = value.floor();
                    let mut coeffs = vec![0.0; n];
                    coeffs[j] = 1.0;
                    let mut down = node.extra.clone();
                    down.push(DenseConstraint {
                        coeffs: coeffs.clone(),
                        relation: Relation::LessEq,
                        rhs: floor,
                    });
                    let mut up = node.extra;
                    up.push(DenseConstraint {
                        coeffs,
                        relation: Relation::GreaterEq,
                        rhs: floor + 1.0,
                    });
                    stack.push(Node { extra: down });
                    stack.push(Node { extra: up });
                }
            }
        }

        match incumbent {
            Some((objective_value, values)) => Ok(Solution {
                objective: sign * objective_value,
                values,
                nodes_explored: nodes,
            }),
            // No incumbent: either every relaxation was infeasible, or (when
            // `saw_feasible_relaxation`) branching proved no integral point
            // exists within the bounds. Both are integer-infeasibility.
            None => Err(IlpError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_lp_passes_through() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(0.0, 4.0, 3.0);
        let y = p.add_var(0.0, 6.0, 5.0);
        p.add_constraint(&[(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0);
        let s = p.solve().unwrap();
        assert!((s.objective() - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_flips_sense() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(0.0, f64::INFINITY, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::GreaterEq, 7.5);
        let s = p.solve().unwrap();
        assert!((s.objective() - 7.5).abs() < 1e-6);
    }

    #[test]
    fn knapsack_requires_integrality() {
        // LP relaxation would take fractional item; ILP must not.
        let mut p = Problem::new(Sense::Maximize);
        let items = [(10.0, 60.0), (20.0, 100.0), (30.0, 120.0)];
        let vars: Vec<VarId> = items
            .iter()
            .map(|&(_, value)| p.add_integer_var(0.0, 1.0, value))
            .collect();
        let weights: Vec<(VarId, f64)> = vars.iter().zip(&items).map(|(&v, &(w, _))| (v, w)).collect();
        p.add_constraint(&weights, Relation::LessEq, 50.0);
        let s = p.solve().unwrap();
        assert!((s.objective() - 220.0).abs() < 1e-6); // items 2 + 3
        assert!((s.value(vars[0]) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn integer_rounding_down_matters() {
        // max x, x integer, x <= 2.5  => 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::LessEq, 2.5);
        assert_eq!(p.solve().unwrap().objective(), 2.0);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 <= x <= 0.6, x integer.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var(0.0, 1.0, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::GreaterEq, 0.4);
        p.add_constraint(&[(x, 1.0)], Relation::LessEq, 0.6);
        assert_eq!(p.solve().unwrap_err(), IlpError::Infeasible);
    }

    #[test]
    fn unbounded_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let _x = p.add_var(0.0, f64::INFINITY, 1.0);
        assert_eq!(p.solve().unwrap_err(), IlpError::Unbounded);
    }

    #[test]
    fn equality_with_integers() {
        // x + y == 5, maximize 2x + y with x,y integer in [0,3] => x=3, y=2 => 8.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_integer_var(0.0, 3.0, 2.0);
        let y = p.add_integer_var(0.0, 3.0, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        let s = p.solve().unwrap();
        assert_eq!(s.objective(), 8.0);
        assert_eq!(s.value(x), 3.0);
        assert_eq!(s.value(y), 2.0);
    }

    #[test]
    fn node_limit_is_enforced() {
        let mut p = Problem::new(Sense::Maximize).with_node_limit(1);
        // Needs branching: fractional relaxation.
        let x = p.add_integer_var(0.0, 10.0, 1.0);
        p.add_constraint(&[(x, 2.0)], Relation::LessEq, 5.0);
        assert!(matches!(p.solve(), Err(IlpError::NodeLimit { limit: 1 })));
    }

    #[test]
    fn lower_bounds_are_respected() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var(2.0, 10.0, 1.0);
        let s = p.solve().unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // (x + x) <= 4  =>  x <= 2.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var(0.0, 100.0, 1.0);
        p.add_constraint(&[(x, 1.0), (x, 1.0)], Relation::LessEq, 4.0);
        assert!((p.solve().unwrap().objective() - 2.0).abs() < 1e-6);
    }
}
