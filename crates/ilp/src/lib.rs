//! Integer linear programming and goal-number saturation analysis.
//!
//! Nimblock's slot-allocation step relies on per-application *goal numbers*:
//! the number of slots beyond which additional allocation yields little or
//! no performance improvement (the *saturation point*, paper §4.2). The
//! paper derives these with the ILP formulation of DML, solved with Gurobi.
//! Gurobi is proprietary, so this crate supplies the substitution described
//! in DESIGN.md §2:
//!
//! * [`Problem`] — a small exact ILP solver: dense two-phase primal simplex
//!   for the LP relaxation plus depth-first branch & bound for integrality,
//! * [`PipelineEstimator`] — a fast list-scheduled makespan estimator for a
//!   task graph on `k` slots, modelling serialized reconfiguration and
//!   cross-batch pipelining (the two effects the DML formulation captures),
//! * [`saturation`] — the slot-count sweep that turns makespan curves into
//!   goal numbers.
//!
//! As in the paper, this analysis runs off the scheduling critical path:
//! the hypervisor consumes precomputed goal numbers.
//!
//! # Example
//!
//! ```
//! use nimblock_app::benchmarks;
//! use nimblock_ilp::saturation;
//! use nimblock_sim::SimDuration;
//!
//! let analysis = saturation::analyze(
//!     &benchmarks::lenet(),
//!     8,                              // batch size
//!     10,                             // slots available on the device
//!     SimDuration::from_millis(80),   // reconfiguration latency
//! );
//! // A second slot always helps a batched chain; many more rarely do.
//! assert!(analysis.goal_number() >= 2);
//! assert!(analysis.goal_number() <= 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod estimator;
mod problem;
pub mod saturation;
mod simplex;

pub use estimator::{EstimatorConfig, PipelineEstimator};
pub use problem::{IlpError, Problem, Relation, Sense, Solution, VarId};
pub use saturation::SaturationAnalysis;
