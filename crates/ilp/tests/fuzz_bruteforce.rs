//! Fuzz the ILP solver against brute-force enumeration (temporary review test).

use nimblock_ilp::{IlpError, Problem, Relation, Sense};

// Simple xorshift RNG for determinism without deps.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i64
    }
}

#[test]
fn fuzz_integer_problems_against_bruteforce() {
    let mut rng = Rng(0x12345678);
    let mut mismatches = 0;
    for trial in 0..2000 {
        let n = rng.range(1, 4) as usize;
        let m = rng.range(1, 4) as usize;
        let ub: Vec<i64> = (0..n).map(|_| rng.range(1, 5)).collect();
        let obj: Vec<i64> = (0..n).map(|_| rng.range(-5, 5)).collect();
        let sense = if rng.range(0, 1) == 0 { Sense::Maximize } else { Sense::Minimize };

        let mut p = Problem::new(sense);
        let vars: Vec<_> = (0..n)
            .map(|j| p.add_integer_var(0.0, ub[j] as f64, obj[j] as f64))
            .collect();
        let mut cons: Vec<(Vec<i64>, Relation, i64)> = Vec::new();
        for _ in 0..m {
            let coeffs: Vec<i64> = (0..n).map(|_| rng.range(-4, 4)).collect();
            let rel = match rng.range(0, 2) {
                0 => Relation::LessEq,
                1 => Relation::GreaterEq,
                _ => Relation::Eq,
            };
            let rhs = rng.range(-6, 12);
            let terms: Vec<_> = vars.iter().zip(&coeffs).map(|(&v, &c)| (v, c as f64)).collect();
            p.add_constraint(&terms, rel, rhs as f64);
            cons.push((coeffs, rel, rhs));
        }

        // Brute force over the integer box.
        let mut best: Option<i64> = None;
        let mut idx = vec![0i64; n];
        loop {
            let feasible = cons.iter().all(|(coeffs, rel, rhs)| {
                let lhs: i64 = coeffs.iter().zip(&idx).map(|(c, x)| c * x).sum();
                match rel {
                    Relation::LessEq => lhs <= *rhs,
                    Relation::GreaterEq => lhs >= *rhs,
                    Relation::Eq => lhs == *rhs,
                }
            });
            if feasible {
                let val: i64 = obj.iter().zip(&idx).map(|(c, x)| c * x).sum();
                best = Some(match (best, sense) {
                    (None, _) => val,
                    (Some(b), Sense::Maximize) => b.max(val),
                    (Some(b), Sense::Minimize) => b.min(val),
                });
            }
            // increment
            let mut k = 0;
            loop {
                if k == n {
                    break;
                }
                idx[k] += 1;
                if idx[k] <= ub[k] {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
            if k == n {
                break;
            }
        }

        let solved = p.solve();
        match (best, solved) {
            (Some(b), Ok(s)) => {
                if (s.objective() - b as f64).abs() > 1e-6 {
                    mismatches += 1;
                    eprintln!(
                        "trial {trial}: objective mismatch solver={} brute={b} sense={sense:?} ub={ub:?} obj={obj:?} cons={cons:?}",
                        s.objective()
                    );
                }
                // also check returned point is feasible & integral & matches objective
                let vals = s.values();
                for (coeffs, rel, rhs) in &cons {
                    let lhs: f64 = coeffs.iter().zip(vals).map(|(c, x)| *c as f64 * x).sum();
                    let ok = match rel {
                        Relation::LessEq => lhs <= *rhs as f64 + 1e-6,
                        Relation::GreaterEq => lhs >= *rhs as f64 - 1e-6,
                        Relation::Eq => (lhs - *rhs as f64).abs() < 1e-6,
                    };
                    if !ok {
                        mismatches += 1;
                        eprintln!("trial {trial}: infeasible point returned vals={vals:?} cons={cons:?}");
                    }
                }
            }
            (None, Err(IlpError::Infeasible)) => {}
            (None, Err(e)) => {
                mismatches += 1;
                eprintln!("trial {trial}: solver error {e:?} but brute force infeasible");
            }
            (None, Ok(s)) => {
                mismatches += 1;
                eprintln!(
                    "trial {trial}: solver found {} but brute force says infeasible; ub={ub:?} obj={obj:?} cons={cons:?} vals={:?}",
                    s.objective(), s.values()
                );
            }
            (Some(b), Err(e)) => {
                mismatches += 1;
                eprintln!("trial {trial}: solver error {e:?} but brute force optimum {b}; sense={sense:?} ub={ub:?} obj={obj:?} cons={cons:?}");
            }
        }
        if mismatches > 10 {
            break;
        }
    }
    assert_eq!(mismatches, 0, "{mismatches} mismatches");
}
