//! The case runner and halving shrinker.

use nimblock_prng::splitmix64;

use crate::{CaseResult, Gen};

/// Default number of cases per property (the acceptance bar for the ported
/// suites is ≥ 256).
pub const DEFAULT_CASES: u32 = 256;

/// Upper bound on shrink replays per failure, so pathological properties
/// cannot loop forever.
const MAX_SHRINK_RUNS: u32 = 2_048;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    cases: u32,
    seed: u64,
}

impl Config {
    /// A config with the default case count and the fixed run seed
    /// (overridable via `NIMBLOCK_CHECK_CASES` / `NIMBLOCK_CHECK_SEED`).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Config {
            cases: DEFAULT_CASES,
            seed: 0x4E1B_B10C_2023_0001,
        }
    }

    /// Sets the number of cases.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Sets the run seed (per-case seeds derive from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Runs `property` for the configured number of cases with the default
/// [`Config`].
///
/// # Panics
///
/// Panics with a replayable-seed report if any case fails.
pub fn check(name: &str, property: impl FnMut(&mut Gen) -> CaseResult) {
    check_with(Config::new(), name, property);
}

/// Runs `property` under an explicit [`Config`].
///
/// If `NIMBLOCK_CHECK_SEED` is set, only that case seed runs (replay mode).
/// `NIMBLOCK_CHECK_CASES` overrides the case count.
///
/// # Panics
///
/// Panics with a replayable-seed report if any case fails.
pub fn check_with(config: Config, name: &str, mut property: impl FnMut(&mut Gen) -> CaseResult) {
    if let Some(case_seed) = env_seed() {
        let mut gen = Gen::from_seed(case_seed);
        if let Err(message) = property(&mut gen) {
            let tape = gen.recorded().to_vec();
            fail(name, case_seed, 0, 1, &mut property, tape, message);
        }
        return;
    }
    let cases = env_cases().unwrap_or(config.cases);
    let mut state = config.seed;
    for case in 0..cases {
        // Per-case seeds derive from the run seed via SplitMix64, so every
        // case is independently replayable from its own 64-bit seed.
        let case_seed = splitmix64(&mut state);
        let mut gen = Gen::from_seed(case_seed);
        if let Err(message) = property(&mut gen) {
            let tape = gen.recorded().to_vec();
            fail(name, case_seed, case, cases, &mut property, tape, message);
        }
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("NIMBLOCK_CHECK_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    Some(parsed.unwrap_or_else(|_| panic!("cannot parse NIMBLOCK_CHECK_SEED `{raw}`")))
}

fn env_cases() -> Option<u32> {
    let raw = std::env::var("NIMBLOCK_CHECK_CASES").ok()?;
    Some(
        raw.trim()
            .parse()
            .unwrap_or_else(|_| panic!("cannot parse NIMBLOCK_CHECK_CASES `{raw}`")),
    )
}

/// Shrinks the failing tape, then panics with the final report.
fn fail(
    name: &str,
    case_seed: u64,
    case: u32,
    cases: u32,
    property: &mut impl FnMut(&mut Gen) -> CaseResult,
    original_tape: Vec<u64>,
    original_message: String,
) -> ! {
    let (tape, message, shrink_runs) =
        shrink(property, original_tape, original_message);
    panic!(
        "property `{name}` failed (case {case} of {cases}, seed {case_seed:#018x}, \
         {shrink_runs} shrink runs).\n\
         minimal failure: {message}\n\
         minimal tape: {tape:?}\n\
         replay with: NIMBLOCK_CHECK_SEED={case_seed:#x} cargo test -q {name}",
        case = case + 1,
    );
}

/// Replays `property` against mutated tapes, keeping mutations that still
/// fail. Mutations, in order of aggressiveness: truncate the tail, zero one
/// entry, binary-halve one entry down to the smallest failing value, halve
/// every entry at once. Repeats until a full pass makes no progress or the
/// run budget is exhausted.
fn shrink(
    property: &mut impl FnMut(&mut Gen) -> CaseResult,
    mut tape: Vec<u64>,
    mut message: String,
) -> (Vec<u64>, String, u32) {
    let mut runs = 0u32;
    let mut still_fails = |candidate: &[u64], runs: &mut u32| -> Option<String> {
        if *runs >= MAX_SHRINK_RUNS {
            return None;
        }
        *runs += 1;
        property(&mut Gen::from_tape(candidate.to_vec())).err()
    };

    loop {
        let mut progressed = false;

        // Drop trailing zeros (replay yields zeros past the end anyway).
        while tape.last() == Some(&0) {
            tape.pop();
        }

        // Truncate: try cutting the tape in half, then by one.
        for cut in [tape.len() / 2, tape.len().saturating_sub(1)] {
            if cut < tape.len() {
                if let Some(msg) = still_fails(&tape[..cut], &mut runs) {
                    tape.truncate(cut);
                    message = msg;
                    progressed = true;
                }
            }
        }

        // Per-entry: zero it if possible, otherwise binary-halve down to
        // the smallest value that still fails.
        for i in 0..tape.len() {
            if tape[i] == 0 {
                continue;
            }
            let original = tape[i];
            tape[i] = 0;
            if let Some(msg) = still_fails(&tape, &mut runs) {
                message = msg;
                progressed = true;
                continue;
            }
            // 0 passes, `original` fails: halve the gap until it closes.
            let (mut lo, mut hi) = (0u64, original);
            while hi - lo > 1 && runs < MAX_SHRINK_RUNS {
                let mid = lo + (hi - lo) / 2;
                tape[i] = mid;
                match still_fails(&tape, &mut runs) {
                    Some(msg) => {
                        hi = mid;
                        message = msg;
                    }
                    None => lo = mid,
                }
            }
            tape[i] = hi;
            if hi < original {
                progressed = true;
            }
        }

        // Whole-tape halving: drives every value down together.
        if tape.iter().any(|&x| x > 0) {
            let halved: Vec<u64> = tape.iter().map(|&x| x / 2).collect();
            if let Some(msg) = still_fails(&halved, &mut runs) {
                tape = halved;
                message = msg;
                progressed = true;
            }
        }

        if !progressed || runs >= MAX_SHRINK_RUNS {
            return (tape, message, runs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrink_minimizes_a_threshold_failure() {
        // Property: fails iff x >= 1000 where x = raw % 1_000_001.
        let mut property = |g: &mut Gen| -> CaseResult {
            let x = g.u64(0..=1_000_000);
            if x >= 1_000 {
                Err(format!("x = {x}"))
            } else {
                Ok(())
            }
        };
        let (tape, err) = (0u64..)
            .find_map(|seed| {
                let mut gen = Gen::from_seed(seed);
                property(&mut gen).err().map(|e| (gen.recorded().to_vec(), e))
            })
            .expect("most draws exceed the threshold");
        let (min_tape, min_message, _) = shrink(&mut property, tape, err);
        // The minimal failing value is exactly the threshold.
        assert_eq!(min_message, "x = 1000");
        assert_eq!(min_tape, vec![1_000]);
    }

    #[test]
    fn shrink_shortens_vectors() {
        // Fails when the generated vec has length >= 3; minimal repro is
        // exactly length 3 with all-zero elements.
        let mut property = |g: &mut Gen| -> CaseResult {
            let v = g.vec(0..=50, |g| g.u64(0..=9));
            if v.len() >= 3 {
                Err(format!("len = {}", v.len()))
            } else {
                Ok(())
            }
        };
        let (tape, err) = (0u64..)
            .find_map(|seed| {
                let mut gen = Gen::from_seed(seed);
                property(&mut gen).err().map(|e| (gen.recorded().to_vec(), e))
            })
            .expect("some seed draws a long vec");
        let (min_tape, min_message, _) = shrink(&mut property, tape, err);
        assert_eq!(min_message, "len = 3");
        assert_eq!(min_tape, vec![3]);
    }

    #[test]
    fn case_seeds_are_deterministic() {
        let mut a = 1u64;
        let mut b = 1u64;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
    }
}
