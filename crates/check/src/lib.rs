//! In-repo property-based testing, replacing `proptest` for the offline
//! build.
//!
//! A property is a closure over a [`Gen`] that draws random inputs and
//! returns `Ok(())` when the property holds. [`check`] runs it for many
//! seeded cases (256 by default); on failure it **shrinks by halving** the
//! recorded draw tape and reports a **replayable seed**:
//!
//! ```text
//! property `add_sub_roundtrips` failed (case 17 of 256, seed 0x8d1f...).
//! replay with: NIMBLOCK_CHECK_SEED=0x8d1f... cargo test -q add_sub_roundtrips
//! ```
//!
//! Environment variables:
//!
//! * `NIMBLOCK_CHECK_SEED=0x...` — run only that case seed (replay mode);
//! * `NIMBLOCK_CHECK_CASES=N` — override the case count.
//!
//! # How shrinking works
//!
//! [`Gen`] records every raw 64-bit draw on a tape. When a case fails, the
//! runner replays the property against mutated tapes — zeroing and halving
//! entries, then halving the whole tape — keeping each mutation that still
//! fails. Because range sampling maps smaller raws to smaller values,
//! halving the tape walks inputs toward minimal counterexamples. Replaying
//! past the end of the tape yields zeros (the minimal draw), so shrunken
//! control flow stays deterministic.
//!
//! # Example
//!
//! ```
//! use nimblock_check::{check, prop_assert};
//!
//! check("addition_commutes", |g| {
//!     let (a, b) = (g.u64(0..=1000), g.u64(0..=1000));
//!     prop_assert!(a + b == b + a, "{a} + {b}");
//!     Ok(())
//! });
//! ```

mod gen;
mod runner;

pub use gen::Gen;
pub use runner::{check, check_with, Config};

/// The outcome of one property case: `Err` carries the failure message.
pub type CaseResult = Result<(), String>;

/// Asserts a condition inside a property, failing the case (with shrinking
/// and seed reporting) instead of panicking.
///
/// Accepts an optional trailing format string like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format_args!($($fmt)+)
            ));
        }
    };
}

/// Asserts two values are equal inside a property, reporting both on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return Err(format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(), line!(), stringify!($left), stringify!($right), left, right
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut cases = 0u32;
        check_with(Config::new().cases(64), "always_true", |g| {
            let _ = g.u64(0..=10);
            cases += 1;
            Ok(())
        });
        assert_eq!(cases, 64);
    }

    #[test]
    fn failing_property_panics_with_replay_seed() {
        let result = std::panic::catch_unwind(|| {
            check_with(Config::new().cases(64), "always_false", |g| {
                let x = g.u64(0..=100);
                prop_assert!(x > 1_000, "x = {x}");
                Ok(())
            });
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("NIMBLOCK_CHECK_SEED=0x"), "{message}");
        assert!(message.contains("always_false"), "{message}");
    }

    #[test]
    fn shrinking_reaches_the_minimal_counterexample() {
        // Fails whenever x >= 10; the minimal failing input is exactly 10.
        let result = std::panic::catch_unwind(|| {
            check_with(Config::new().cases(256), "ge_ten", |g| {
                let x = g.u64(0..=1_000_000);
                prop_assert!(x < 10, "x = {x}");
                Ok(())
            });
        });
        let message = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("x = 10"), "expected shrink to 10, got: {message}");
    }

    #[test]
    fn prop_assert_eq_reports_both_sides() {
        let f = |g: &mut Gen| -> crate::CaseResult {
            let x = g.u64(0..=3);
            prop_assert_eq!(x, 99u64);
            Ok(())
        };
        let err = f(&mut Gen::from_seed(1)).unwrap_err();
        assert!(err.contains("right: 99"), "{err}");
    }
}
