//! The recorded-tape case generator.

use std::ops::RangeInclusive;

use nimblock_prng::Prng;

/// Source of raw 64-bit draws: fresh randomness or a recorded tape.
enum Source {
    /// Seeded randomness; every draw is appended to the tape.
    Random(Prng),
    /// Replay of a (possibly mutated) tape; draws past the end yield 0.
    Tape(Vec<u64>),
}

/// A property-test input generator.
///
/// All sampling funnels through [`Gen::raw`], which records the underlying
/// 64-bit draws so the runner can shrink a failing case by mutating the
/// tape and replaying. Smaller raw values map to smaller sampled values in
/// every method, which is what makes halving-based shrinking move toward
/// minimal counterexamples.
pub struct Gen {
    source: Source,
    cursor: usize,
    tape: Vec<u64>,
}

impl Gen {
    /// Creates a generator drawing fresh randomness from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            source: Source::Random(Prng::seed_from_u64(seed)),
            cursor: 0,
            tape: Vec::new(),
        }
    }

    /// Creates a generator replaying `tape` (zeros past the end).
    pub fn from_tape(tape: Vec<u64>) -> Self {
        Gen {
            source: Source::Tape(tape),
            cursor: 0,
            tape: Vec::new(),
        }
    }

    /// Returns the tape of raw draws made so far.
    pub(crate) fn recorded(&self) -> &[u64] {
        &self.tape
    }

    /// Draws the next raw 64-bit value and records it.
    fn raw(&mut self) -> u64 {
        let value = match &mut self.source {
            Source::Random(rng) => rng.next_u64(),
            Source::Tape(tape) => tape.get(self.cursor).copied().unwrap_or(0),
        };
        self.cursor += 1;
        self.tape.push(value);
        value
    }

    /// Uniform `u64` in the inclusive range; raw 0 maps to the range start.
    pub fn u64(&mut self, range: RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.raw();
        }
        lo + self.raw() % (span + 1)
    }

    /// Uniform `u32` in the inclusive range.
    pub fn u32(&mut self, range: RangeInclusive<u32>) -> u32 {
        self.u64(u64::from(*range.start())..=u64::from(*range.end())) as u32
    }

    /// Uniform `usize` in the inclusive range.
    pub fn usize(&mut self, range: RangeInclusive<usize>) -> usize {
        self.u64(*range.start() as u64..=*range.end() as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`; raw 0 maps to `lo`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let unit = (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let sample = lo + unit * (hi - lo);
        if sample < hi {
            sample
        } else {
            lo
        }
    }

    /// A boolean; raw 0 maps to `false`.
    pub fn bool(&mut self) -> bool {
        self.raw() & 1 == 1
    }

    /// A reference to a uniformly chosen element; raw 0 picks the first.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.usize(0..=items.len() - 1)]
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `element`; shrinking the length draw shortens the vector.
    pub fn vec<T>(
        &mut self,
        len: RangeInclusive<usize>,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| element(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_recorded_on_the_tape() {
        let mut g = Gen::from_seed(1);
        let _ = g.u64(0..=10);
        let _ = g.bool();
        assert_eq!(g.recorded().len(), 2);
    }

    #[test]
    fn tape_replay_reproduces_values() {
        let mut g = Gen::from_seed(9);
        let a = (g.u64(0..=1_000), g.f64(0.0, 1.0), g.bool());
        let tape = g.recorded().to_vec();
        let mut replay = Gen::from_tape(tape);
        let b = (replay.u64(0..=1_000), replay.f64(0.0, 1.0), replay.bool());
        assert_eq!(a, b);
    }

    #[test]
    fn exhausted_tape_yields_minimal_values() {
        let mut g = Gen::from_tape(vec![]);
        assert_eq!(g.u64(5..=100), 5);
        assert_eq!(g.f64(2.0, 3.0), 2.0);
        assert!(!g.bool());
        assert_eq!(*g.pick(&[10, 20, 30]), 10);
        assert!(g.vec(0..=4, |g| g.u64(0..=1)).is_empty());
    }

    #[test]
    fn values_respect_ranges() {
        let mut g = Gen::from_seed(3);
        for _ in 0..500 {
            assert!((3..=9).contains(&g.u64(3..=9)));
            assert!((1..=4).contains(&g.u32(1..=4)));
            let f = g.f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_span_the_range() {
        let mut g = Gen::from_seed(4);
        let lengths: Vec<usize> = (0..100).map(|_| g.vec(0..=5, |g| g.bool()).len()).collect();
        assert!(lengths.iter().any(|&n| n == 0));
        assert!(lengths.iter().any(|&n| n == 5));
    }
}
