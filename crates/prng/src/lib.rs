//! Seedable pseudo-random number generation for the Nimblock workspace.
//!
//! Replaces the `rand` crate (unavailable in the offline build) with the
//! small surface the workload generators and tests actually use: a
//! deterministic, seedable generator with uniform range sampling.
//!
//! The core generator is **xoshiro256\*\*** seeded through **SplitMix64**
//! (the construction recommended by the xoshiro authors: SplitMix64
//! decorrelates nearby seeds before they reach the main state). The same
//! seed always yields the same stream on every platform — workload
//! generation relies on this for the paper's "all algorithms are evaluated
//! on the same set of stimuli" property.
//!
//! # Example
//!
//! ```
//! use nimblock_prng::Prng;
//!
//! let mut a = Prng::seed_from_u64(7);
//! let mut b = Prng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(10u64..=20);
//! assert!((10..=20).contains(&x));
//! ```

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 generator; also usable as a standalone
/// mixing function for deriving per-case seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    state: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { state }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` (53 bits of precision).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
        self.next_f64() < p
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`), like
    /// `rand::Rng::gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns a reference to a uniformly chosen element of `slice`.
    ///
    /// # Panics
    ///
    /// Panics if `slice` is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.gen_range(0..slice.len())]
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniform `u64` in `[0, bound)` by Lemire's multiply-shift rejection
    /// method (unbiased, at most one extra draw in expectation).
    #[inline]
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// A range that [`Prng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Prng) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),+) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut Prng) -> $ty {
                assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(self, rng: &mut Prng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.bounded_u64(span + 1) as $ty
            }
        }
    )+};
}
impl_int_range!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range {}..{}", self.start, self.end);
        let sample = self.start + rng.next_f64() * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; clamp into range.
        if sample < self.end {
            sample
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut Prng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn reference_vector_is_stable() {
        // Pinned first outputs for seed 0 — a cross-version regression guard:
        // changing the generator breaks every golden trace in the repo.
        let mut rng = Prng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!((10..20u64).contains(&rng.gen_range(10u64..20)));
            assert!((1..=30u32).contains(&rng.gen_range(1u32..=30)));
            assert!((0..7usize).contains(&rng.gen_range(0usize..7)));
            let f = rng.gen_range(0.5..1.5f64);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_hits_both_endpoints() {
        let mut rng = Prng::seed_from_u64(4);
        let draws: Vec<u32> = (0..200).map(|_| rng.gen_range(0u32..=1)).collect();
        assert!(draws.contains(&0));
        assert!(draws.contains(&1));
    }

    #[test]
    fn uniformity_is_roughly_flat() {
        let mut rng = Prng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "{hits}");
        assert!(!Prng::seed_from_u64(0).gen_bool(0.0));
        assert!(Prng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Prng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Prng::seed_from_u64(8);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = Prng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn splitmix_standalone_matches_reference() {
        // Known SplitMix64 test vector for seed 1234567.
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
    }
}
