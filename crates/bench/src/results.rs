//! Machine-readable result emission for the figure/table binaries.
//!
//! Every experiment binary prints its human-readable tables to stdout *and*
//! records the same data as `results/<experiment>.json` via
//! [`ResultWriter`]. The JSON always carries the stimulus **seed**, so any
//! figure can be regenerated bit-for-bit from its result file alone:
//!
//! ```json
//! {
//!   "experiment": "fig5",
//!   "seed": 2023,
//!   "sequences": 10,
//!   "notes": ["..."],
//!   "tables": [{"title": "...", "headers": [...], "rows": [[...]]}]
//! }
//! ```

use std::path::PathBuf;

use nimblock_metrics::TextTable;
use nimblock_ser::{to_string_pretty, Json, ToJson};

/// Collects an experiment's tables and writes `results/<experiment>.json`.
pub struct ResultWriter {
    experiment: String,
    seed: u64,
    sequences: usize,
    notes: Vec<String>,
    tables: Vec<(String, Json)>,
}

impl ResultWriter {
    /// Creates a writer for `experiment` whose stimulus derives from
    /// `seed` (recorded in the output) over `sequences` sequences.
    pub fn new(experiment: &str, seed: u64, sequences: usize) -> Self {
        ResultWriter {
            experiment: experiment.to_owned(),
            seed,
            sequences,
            notes: Vec::new(),
            tables: Vec::new(),
        }
    }

    /// Records a table under `title` (headers and rows are copied from the
    /// same [`TextTable`] the binary prints).
    pub fn table(&mut self, title: &str, table: &TextTable) -> &mut Self {
        let json = Json::Object(vec![
            ("title".to_owned(), title.to_json()),
            ("headers".to_owned(), table.headers().to_json()),
            ("rows".to_owned(), table.rows().to_json()),
        ]);
        self.tables.push((title.to_owned(), json));
        self
    }

    /// Records a free-form note (the paper-comparison commentary the
    /// binaries print after their tables).
    pub fn note(&mut self, note: &str) -> &mut Self {
        self.notes.push(note.to_owned());
        self
    }

    /// Writes `results/<experiment>.json` and returns the path.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be created or written — an
    /// experiment that cannot record its output should fail loudly.
    pub fn write(&self) -> PathBuf {
        self.write_to(std::path::Path::new("results"))
    }

    /// Writes `<dir>/<experiment>.json` and returns the path.
    ///
    /// # Panics
    ///
    /// Panics if `dir` cannot be created or the file cannot be written.
    pub fn write_to(&self, dir: &std::path::Path) -> PathBuf {
        let document = Json::Object(vec![
            ("experiment".to_owned(), self.experiment.to_json()),
            ("seed".to_owned(), self.seed.to_json()),
            ("sequences".to_owned(), (self.sequences as u64).to_json()),
            ("notes".to_owned(), self.notes.to_json()),
            (
                "tables".to_owned(),
                Json::Array(self.tables.iter().map(|(_, t)| t.clone()).collect()),
            ),
        ]);
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        let path = dir.join(format!("{}.json", self.experiment));
        std::fs::write(&path, to_string_pretty(&document))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("\nwrote {}", path.display());
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn written_document_contains_seed_and_tables() {
        let dir = std::env::temp_dir().join("nimblock-bench-results-test");

        let mut table = TextTable::new(vec!["a", "b"]);
        table.row(vec!["1".into(), "2".into()]);
        let mut writer = ResultWriter::new("unit_test_experiment", 2023, 10);
        writer.table("demo", &table).note("a note");
        let path = writer.write_to(&dir);

        let text = std::fs::read_to_string(&path).unwrap();
        let value = nimblock_ser::parse(&text).unwrap();
        assert_eq!(value.get("seed").and_then(Json::as_u64), Some(2023));
        assert_eq!(
            value
                .get("experiment")
                .and_then(Json::as_str)
                .map(str::to_owned)
                .as_deref(),
            Some("unit_test_experiment")
        );
        let tables = value.get("tables").and_then(Json::as_array).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(
            tables[0].get("headers").and_then(Json::as_array).unwrap().len(),
            2
        );
    }
}
