//! Cluster scaling benchmark: boards × threads wall-clock, plus the
//! regression gate CI runs against the committed baseline.
//!
//! The `cluster_scale` binary measures how long the parallel
//! [`nimblock_cluster::ClusterTestbed`] takes to run a fixed suite of
//! stimulus sequences at several worker-thread counts, verifies along the
//! way that every thread count produces a byte-identical merged report
//! (the determinism guarantee of DESIGN.md §12), and writes the numbers as
//! seed-stamped JSON (`results/BENCH_cluster.json`).
//!
//! The gate half ([`gate_compare`]) is deliberately a pure function over
//! two decoded [`BenchReport`]s so `scripts/bench_gate.sh` never parses
//! JSON in shell: a fresh measurement passes if its events/sec is within
//! `tolerance` of the committed baseline (default 15%), per
//! (boards, threads) row. Improvements always pass.
//!
//! Wall-clock numbers are honest about the host: `host_cpus` records what
//! `std::thread::available_parallelism` reported when the baseline was
//! captured. On a single-CPU container the speedup column will hover
//! around 1.0 — the determinism check, not the speedup, is the portable
//! claim.

use std::time::Instant;

use nimblock_cluster::{ClusterTestbed, DispatchPolicy};
use nimblock_core::NimblockScheduler;
use nimblock_ser::impl_json_struct;
use nimblock_workload::{generate, EventSequence, Scenario};

/// One (boards, threads) wall-clock sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Boards in the modelled cluster.
    pub boards: usize,
    /// Worker threads the cluster engine was given (1 = sequential oracle).
    pub threads: usize,
    /// Best-of-repeats wall-clock for the whole suite, seconds.
    pub wall_secs: f64,
    /// Events retired per second of wall-clock.
    pub events_per_sec: f64,
    /// Wall-clock of the threads=1 row divided by this row's wall-clock.
    pub speedup: f64,
}
impl_json_struct!(Measurement {
    boards,
    threads,
    wall_secs,
    events_per_sec,
    speedup
});

/// The seed-stamped benchmark report (`results/BENCH_cluster.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Always `"cluster_scale"`.
    pub experiment: String,
    /// Base RNG seed; sequence `i` uses `seed + i`.
    pub seed: u64,
    /// Events per stimulus sequence.
    pub events: usize,
    /// Sequences in the measured suite.
    pub sequences: usize,
    /// Logical CPUs the host reported when this was measured. Speedups are
    /// only meaningful relative to this.
    pub host_cpus: usize,
    /// Whether every thread count produced a byte-identical merged report.
    pub deterministic: bool,
    /// One row per measured thread count.
    pub measurements: Vec<Measurement>,
}
impl_json_struct!(BenchReport {
    experiment,
    seed,
    events,
    sequences,
    host_cpus,
    deterministic,
    measurements
});

/// Parameters for one benchmark run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Boards in the modelled cluster.
    pub boards: usize,
    /// Thread counts to measure, in order.
    pub threads: Vec<usize>,
    /// Events per stimulus sequence.
    pub events: usize,
    /// Sequences per suite.
    pub sequences: usize,
    /// Passes per thread count; the minimum wall-clock is kept.
    pub repeats: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            boards: 8,
            threads: vec![1, 2, 8],
            events: 200,
            sequences: 5,
            repeats: 3,
            seed: crate::BASE_SEED,
        }
    }
}

fn suite(config: &ScaleConfig) -> Vec<EventSequence> {
    (0..config.sequences)
        .map(|i| generate(config.seed + i as u64, config.events, Scenario::Stress))
        .collect()
}

fn run_suite_once(config: &ScaleConfig, suite: &[EventSequence], threads: usize) -> f64 {
    let start = Instant::now();
    for events in suite {
        let report = ClusterTestbed::new(config.boards, DispatchPolicy::FewestApps, || {
            NimblockScheduler::new()
        })
        .with_threads(threads)
        .run(events);
        // Keep the run from being optimised away and sanity-check it retired
        // every event.
        assert_eq!(report.merged().records().len(), events.len());
    }
    start.elapsed().as_secs_f64()
}

/// Serializes the merged outcome of one run for the determinism check.
fn merged_fingerprint(config: &ScaleConfig, events: &EventSequence, threads: usize) -> String {
    let report = ClusterTestbed::new(config.boards, DispatchPolicy::FewestApps, || {
        NimblockScheduler::new()
    })
    .with_threads(threads)
    .with_tracing()
    .run(events);
    let mut text = nimblock_ser::to_string_pretty(report.merged());
    text.push_str(&format!("\nassignments={:?}", report.assignments()));
    for trace in report.per_board_traces() {
        text.push('\n');
        text.push_str(&nimblock_ser::to_string(trace));
    }
    text
}

/// Runs the full measurement: determinism verification first, then the
/// timed boards × threads sweep.
///
/// # Panics
///
/// Panics if any thread count's merged report diverges from the
/// sequential (threads = 1) oracle — that is a correctness bug, not a
/// performance regression, and must never be recorded as a baseline.
pub fn measure(config: &ScaleConfig) -> BenchReport {
    let suite = suite(config);
    let total_events: usize = suite.iter().map(EventSequence::len).sum();

    // Determinism check on the first sequence before timing anything.
    let deterministic = if let Some(first) = suite.first() {
        let oracle = merged_fingerprint(config, first, 1);
        for &threads in &config.threads {
            let fresh = merged_fingerprint(config, first, threads);
            assert_eq!(
                fresh, oracle,
                "cluster run with {threads} threads diverged from the sequential oracle"
            );
        }
        true
    } else {
        true
    };

    let mut measurements = Vec::with_capacity(config.threads.len());
    let mut base_wall = None;
    for &threads in &config.threads {
        let wall_secs = (0..config.repeats.max(1))
            .map(|_| run_suite_once(config, &suite, threads))
            .fold(f64::INFINITY, f64::min);
        if threads == 1 || base_wall.is_none() {
            base_wall = Some(wall_secs);
        }
        let base = base_wall.expect("base wall-clock recorded");
        measurements.push(Measurement {
            boards: config.boards,
            threads,
            wall_secs,
            events_per_sec: total_events as f64 / wall_secs,
            speedup: base / wall_secs,
        });
    }

    BenchReport {
        experiment: "cluster_scale".to_owned(),
        seed: config.seed,
        events: config.events,
        sequences: config.sequences,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        deterministic,
        measurements,
    }
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// One row of the gate's delta table.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Boards of the compared row.
    pub boards: usize,
    /// Threads of the compared row.
    pub threads: usize,
    /// Baseline events/sec.
    pub baseline_eps: f64,
    /// Freshly measured events/sec (`None` if the row vanished).
    pub fresh_eps: Option<f64>,
    /// Relative change, percent (+ is faster).
    pub delta_pct: f64,
    /// Whether this row is within tolerance.
    pub pass: bool,
}

/// The gate verdict: per-row deltas plus the overall pass flag.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// One entry per baseline row.
    pub rows: Vec<GateRow>,
    /// True iff every row passed and the fresh run was deterministic.
    pub pass: bool,
}

/// Compares a fresh measurement against the committed baseline.
///
/// A row passes when `fresh_eps >= (1 - tolerance) * baseline_eps`;
/// `tolerance` is a fraction (0.15 = 15%). A baseline row missing from the
/// fresh report fails; extra fresh rows are ignored. A non-deterministic
/// fresh report fails regardless of timing.
pub fn gate_compare(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut rows = Vec::with_capacity(baseline.measurements.len());
    let mut pass = fresh.deterministic;
    for base in &baseline.measurements {
        let matched = fresh
            .measurements
            .iter()
            .find(|m| m.boards == base.boards && m.threads == base.threads);
        let row = match matched {
            Some(m) => {
                let delta_pct = (m.events_per_sec / base.events_per_sec - 1.0) * 100.0;
                let ok = m.events_per_sec >= (1.0 - tolerance) * base.events_per_sec;
                GateRow {
                    boards: base.boards,
                    threads: base.threads,
                    baseline_eps: base.events_per_sec,
                    fresh_eps: Some(m.events_per_sec),
                    delta_pct,
                    pass: ok,
                }
            }
            None => GateRow {
                boards: base.boards,
                threads: base.threads,
                baseline_eps: base.events_per_sec,
                fresh_eps: None,
                delta_pct: -100.0,
                pass: false,
            },
        };
        pass &= row.pass;
        rows.push(row);
    }
    GateOutcome { rows, pass }
}

/// Renders the gate's delta table as fixed-width text.
pub fn render_gate_table(outcome: &GateOutcome, tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6} {:>7} {:>14} {:>14} {:>9}  verdict (tolerance {:.0}%)\n",
        "boards",
        "threads",
        "base ev/s",
        "fresh ev/s",
        "delta",
        tolerance * 100.0
    ));
    for row in &outcome.rows {
        let fresh = row
            .fresh_eps
            .map_or_else(|| "missing".to_owned(), |eps| format!("{eps:.1}"));
        out.push_str(&format!(
            "{:>6} {:>7} {:>14.1} {:>14} {:>+8.1}%  {}\n",
            row.boards,
            row.threads,
            row.baseline_eps,
            fresh,
            row.delta_pct,
            if row.pass { "ok" } else { "REGRESSION" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(usize, usize, f64)]) -> BenchReport {
        BenchReport {
            experiment: "cluster_scale".to_owned(),
            seed: 1,
            events: 10,
            sequences: 1,
            host_cpus: 1,
            deterministic: true,
            measurements: rows
                .iter()
                .map(|&(boards, threads, eps)| Measurement {
                    boards,
                    threads,
                    wall_secs: 1.0,
                    events_per_sec: eps,
                    speedup: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn bench_report_roundtrips_through_json() {
        let original = report(&[(8, 1, 100.0), (8, 2, 120.0)]);
        let text = nimblock_ser::to_string_pretty(&original);
        let parsed: BenchReport = nimblock_ser::from_str(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn gate_passes_within_tolerance_and_on_improvement() {
        let baseline = report(&[(8, 1, 100.0), (8, 2, 100.0)]);
        let fresh = report(&[(8, 1, 90.0), (8, 2, 250.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        assert!(outcome.pass, "{outcome:?}");
        assert!(outcome.rows.iter().all(|r| r.pass));
        assert!(outcome.rows[1].delta_pct > 100.0);
    }

    #[test]
    fn gate_fails_on_regression_beyond_tolerance() {
        let baseline = report(&[(8, 1, 100.0)]);
        let fresh = report(&[(8, 1, 80.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        assert!(!outcome.pass);
        assert!(!outcome.rows[0].pass);
        assert!((outcome.rows[0].delta_pct - -20.0).abs() < 1e-9);
    }

    #[test]
    fn gate_tolerance_boundary_is_inclusive() {
        // The pass rule is `fresh >= (1 - tolerance) * baseline`: a row
        // exactly at the edge passes, an epsilon below it fails, and a
        // zero tolerance admits only non-regressions.
        let baseline = report(&[(8, 1, 1000.0)]);
        assert!(gate_compare(&baseline, &report(&[(8, 1, 850.0)]), 0.15).pass);
        assert!(!gate_compare(&baseline, &report(&[(8, 1, 849.9)]), 0.15).pass);
        assert!(gate_compare(&baseline, &report(&[(8, 1, 1000.0)]), 0.0).pass);
        assert!(!gate_compare(&baseline, &report(&[(8, 1, 999.9)]), 0.0).pass);
    }

    #[test]
    fn gate_fails_when_a_baseline_row_vanishes() {
        let baseline = report(&[(8, 1, 100.0), (8, 8, 100.0)]);
        let fresh = report(&[(8, 1, 100.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        assert!(!outcome.pass);
        assert_eq!(outcome.rows[1].fresh_eps, None);
    }

    #[test]
    fn gate_fails_on_nondeterministic_fresh_run() {
        let baseline = report(&[(8, 1, 100.0)]);
        let mut fresh = report(&[(8, 1, 100.0)]);
        fresh.deterministic = false;
        assert!(!gate_compare(&baseline, &fresh, 0.15).pass);
    }

    #[test]
    fn measure_produces_one_row_per_thread_count_and_is_deterministic() {
        let config = ScaleConfig {
            boards: 3,
            threads: vec![1, 2],
            events: 8,
            sequences: 1,
            repeats: 1,
            seed: crate::BASE_SEED,
        };
        let report = measure(&config);
        assert!(report.deterministic);
        assert_eq!(report.measurements.len(), 2);
        assert_eq!(report.measurements[0].threads, 1);
        assert!((report.measurements[0].speedup - 1.0).abs() < 1e-9);
        assert!(report.measurements.iter().all(|m| m.events_per_sec > 0.0));
    }

    #[test]
    fn render_gate_table_marks_regressions() {
        let baseline = report(&[(8, 1, 100.0)]);
        let fresh = report(&[(8, 1, 50.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        let table = render_gate_table(&outcome, 0.15);
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("tolerance 15%"), "{table}");
    }
}
