//! Engine hot-path benchmark: simulator events/sec on the calendar event
//! queue versus the retired binary-heap backend, plus its regression gate.
//!
//! Two scenarios bracket the hot path (DESIGN.md §14):
//!
//! * **queue-churn** — a synthetic handler that keeps a fixed population of
//!   event chains in flight, each reschedule drawing a pseudo-random delay
//!   that straddles the calendar's near window, so pushes land in ring
//!   buckets *and* the far-future heap. This isolates the queue itself.
//! * **hypervisor-stress** — a full single-board Nimblock run over a
//!   congested stimulus, built exactly like the production testbed but with
//!   an explicit queue backend. This measures the end-to-end per-event
//!   cost: queue, arena-indexed hypervisor tables, and scheduler
//!   decisions together.
//!
//! Both backends run the same workload; the report
//! (`results/BENCH_engine.json`) is seed-stamped and records events/sec
//! per (scenario, backend) with the calendar's speedup over the heap and
//! over [`SEED_BASELINE_EPS`], the pre-overhaul whole-pipeline figure.
//! [`engine_gate_compare`] holds future runs to the recorded numbers the
//! same way the cluster gate does (`scripts/bench_gate.sh`).

use std::time::Instant;

use nimblock_core::{Hypervisor, HvEvent, NimblockScheduler};
use nimblock_fpga::{Device, DeviceConfig};
use nimblock_prng::Prng;
use nimblock_ser::impl_json_struct;
use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};
use nimblock_workload::{generate, Scenario};

/// Events/sec of the simulation pipeline before the calendar-queue and
/// arena overhaul, measured on the same container class that runs CI. The
/// acceptance bar for the overhaul is ≥10× this figure on the
/// hypervisor-stress scenario.
pub const SEED_BASELINE_EPS: f64 = 2_000.0;

/// One (scenario, backend) sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMeasurement {
    /// `"queue-churn"` or `"hypervisor-stress"`.
    pub scenario: String,
    /// `"calendar"` or `"legacy-heap"`.
    pub backend: String,
    /// Simulator events processed per pass.
    pub events: u64,
    /// Best-of-repeats wall-clock, seconds.
    pub wall_secs: f64,
    /// Events processed per second of wall-clock.
    pub events_per_sec: f64,
}
impl_json_struct!(EngineMeasurement {
    scenario,
    backend,
    events,
    wall_secs,
    events_per_sec
});

/// The seed-stamped benchmark report (`results/BENCH_engine.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Always `"engine_hot_path"`.
    pub experiment: String,
    /// RNG seed for the churn delays and the stress stimulus.
    pub seed: u64,
    /// Logical CPUs the host reported when this was measured.
    pub host_cpus: usize,
    /// The pre-overhaul whole-pipeline figure the speedup claim is against.
    pub baseline_events_per_sec: f64,
    /// One row per (scenario, backend).
    pub measurements: Vec<EngineMeasurement>,
}
impl_json_struct!(EngineReport {
    experiment,
    seed,
    host_cpus,
    baseline_events_per_sec,
    measurements
});

impl EngineReport {
    /// Events/sec of a (scenario, backend) row, if present.
    pub fn events_per_sec(&self, scenario: &str, backend: &str) -> Option<f64> {
        self.measurements
            .iter()
            .find(|m| m.scenario == scenario && m.backend == backend)
            .map(|m| m.events_per_sec)
    }

    /// Calendar-over-heap speedup for a scenario, if both rows are present.
    pub fn speedup(&self, scenario: &str) -> Option<f64> {
        let calendar = self.events_per_sec(scenario, "calendar")?;
        let legacy = self.events_per_sec(scenario, "legacy-heap")?;
        Some(calendar / legacy)
    }
}

/// Parameters for one benchmark run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Events processed per queue-churn pass.
    pub churn_events: u64,
    /// Concurrent event chains kept in flight by the churn handler.
    pub churn_population: usize,
    /// Arrival events in the hypervisor-stress stimulus.
    pub stress_events: usize,
    /// Passes per row; the minimum wall-clock is kept.
    pub repeats: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            churn_events: 2_000_000,
            churn_population: 8_192,
            stress_events: 60,
            repeats: 3,
            seed: crate::BASE_SEED,
        }
    }
}

/// The queue-churn handler: every event reschedules itself after a
/// pseudo-random delay until the budget runs out. Delays span four near
/// windows, so a steady fraction of pushes overflows to the far heap and
/// the window rolls over thousands of times per pass.
struct Churn {
    remaining: u64,
    rng: Prng,
}

impl Handler<u64> for Churn {
    fn handle(&mut self, now: SimTime, chain: u64, queue: &mut EventQueue<u64>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        // Mostly-near delays model a busy board (items, ticks, retires all
        // land within the scheduling horizon); every 16th event jumps past
        // the window so the far-future heap and window rollover stay on the
        // measured path.
        let span = EventQueue::<u64>::CALENDAR_SPAN_MICROS;
        let delay = if self.rng.gen_bool(1.0 / 16.0) {
            self.rng.gen_range(span..=4 * span)
        } else {
            self.rng.gen_range(1..=span)
        };
        queue.push(now + SimDuration::from_micros(delay), chain);
    }
}

fn queue_for<E>(legacy: bool) -> EventQueue<E> {
    if legacy {
        EventQueue::legacy_heap()
    } else {
        EventQueue::new()
    }
}

/// Runs one queue-churn pass; returns (events processed, wall seconds).
fn run_churn(config: &EngineConfig, legacy: bool) -> (u64, f64) {
    let handler = Churn {
        remaining: config.churn_events,
        rng: Prng::seed_from_u64(config.seed),
    };
    let mut sim = Simulation::with_queue(handler, queue_for(legacy));
    for chain in 0..config.churn_population as u64 {
        sim.queue_mut().push(SimTime::from_micros(1 + chain), chain);
    }
    let start = Instant::now();
    sim.run_until(SimTime::MAX);
    let wall = start.elapsed().as_secs_f64();
    (sim.steps(), wall)
}

/// Runs one hypervisor-stress pass; returns (events processed, wall
/// seconds). Mirrors the production testbed wiring with an explicit queue.
fn run_stress(config: &EngineConfig, legacy: bool) -> (u64, f64) {
    let events = generate(config.seed, config.stress_events, Scenario::Stress);
    let tick = SimDuration::from_millis(nimblock_fpga::zcu106::SCHEDULING_INTERVAL_MILLIS);
    let hypervisor = Hypervisor::new(
        Device::new(DeviceConfig::zcu106()),
        NimblockScheduler::new(),
        events.events().to_vec(),
    )
    .with_tick_interval(tick);
    let mut sim = Simulation::with_queue(hypervisor, queue_for(legacy));
    for (index, event) in events.iter().enumerate() {
        sim.queue_mut().push(event.arrival(), HvEvent::Arrival(index));
    }
    sim.queue_mut().push(SimTime::ZERO + tick, HvEvent::Tick);
    let start = Instant::now();
    sim.run_until(SimTime::from_secs(10_000_000));
    let wall = start.elapsed().as_secs_f64();
    assert!(sim.handler().finished(), "stress run failed to retire");
    (sim.steps(), wall)
}

fn best_of(repeats: usize, mut pass: impl FnMut() -> (u64, f64)) -> (u64, f64) {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..repeats.max(1) {
        let (events, wall) = pass();
        if best.map_or(true, |(_, b)| wall < b) {
            best = Some((events, wall));
        }
    }
    best.expect("at least one pass")
}

/// Runs the full measurement: both scenarios on both backends.
pub fn measure(config: &EngineConfig) -> EngineReport {
    let mut measurements = Vec::with_capacity(4);
    for (scenario, legacy) in [
        ("queue-churn", false),
        ("queue-churn", true),
        ("hypervisor-stress", false),
        ("hypervisor-stress", true),
    ] {
        let (events, wall_secs) = match scenario {
            "queue-churn" => best_of(config.repeats, || run_churn(config, legacy)),
            _ => best_of(config.repeats, || run_stress(config, legacy)),
        };
        measurements.push(EngineMeasurement {
            scenario: scenario.to_owned(),
            backend: if legacy { "legacy-heap" } else { "calendar" }.to_owned(),
            events,
            wall_secs,
            events_per_sec: events as f64 / wall_secs,
        });
    }
    EngineReport {
        experiment: "engine_hot_path".to_owned(),
        seed: config.seed,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        baseline_events_per_sec: SEED_BASELINE_EPS,
        measurements,
    }
}

/// Compares a fresh engine measurement against the committed baseline,
/// with the same pass rule as the cluster gate: a (scenario, backend) row
/// passes when `fresh_eps >= (1 - tolerance) * baseline_eps`; a vanished
/// row fails; improvements always pass. Returns the rendered delta table
/// and the overall verdict.
pub fn engine_gate_compare(
    baseline: &EngineReport,
    fresh: &EngineReport,
    tolerance: f64,
) -> (String, bool) {
    let mut out = format!(
        "{:>18} {:>12} {:>14} {:>14} {:>9}  verdict (tolerance {:.0}%)\n",
        "scenario",
        "backend",
        "base ev/s",
        "fresh ev/s",
        "delta",
        tolerance * 100.0
    );
    let mut pass = true;
    for base in &baseline.measurements {
        let matched = fresh.events_per_sec(&base.scenario, &base.backend);
        let (fresh_text, delta_pct, ok) = match matched {
            Some(eps) => (
                format!("{eps:.1}"),
                (eps / base.events_per_sec - 1.0) * 100.0,
                eps >= (1.0 - tolerance) * base.events_per_sec,
            ),
            None => ("missing".to_owned(), -100.0, false),
        };
        pass &= ok;
        out.push_str(&format!(
            "{:>18} {:>12} {:>14.1} {:>14} {:>+8.1}%  {}\n",
            base.scenario,
            base.backend,
            base.events_per_sec,
            fresh_text,
            delta_pct,
            if ok { "ok" } else { "REGRESSION" }
        ));
    }
    (out, pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, &str, f64)]) -> EngineReport {
        EngineReport {
            experiment: "engine_hot_path".to_owned(),
            seed: 1,
            host_cpus: 1,
            baseline_events_per_sec: SEED_BASELINE_EPS,
            measurements: rows
                .iter()
                .map(|&(scenario, backend, eps)| EngineMeasurement {
                    scenario: scenario.to_owned(),
                    backend: backend.to_owned(),
                    events: 1000,
                    wall_secs: 1.0,
                    events_per_sec: eps,
                })
                .collect(),
        }
    }

    #[test]
    fn engine_report_roundtrips_through_json() {
        let original = report(&[("queue-churn", "calendar", 1e6), ("queue-churn", "legacy-heap", 2e5)]);
        let text = nimblock_ser::to_string_pretty(&original);
        let parsed: EngineReport = nimblock_ser::from_str(&text).unwrap();
        assert_eq!(parsed, original);
        assert_eq!(parsed.speedup("queue-churn"), Some(5.0));
    }

    #[test]
    fn engine_gate_tolerance_boundary_is_inclusive() {
        // The pass rule is `fresh >= (1 - tolerance) * baseline`: exactly
        // 15% down passes at 15% tolerance, an epsilon below it fails.
        let baseline = report(&[("queue-churn", "calendar", 1000.0)]);
        let at_edge = report(&[("queue-churn", "calendar", 850.0)]);
        let below = report(&[("queue-churn", "calendar", 849.9)]);
        assert!(engine_gate_compare(&baseline, &at_edge, 0.15).1);
        assert!(!engine_gate_compare(&baseline, &below, 0.15).1);
    }

    #[test]
    fn engine_gate_fails_on_missing_rows_and_passes_on_improvement() {
        let baseline = report(&[
            ("queue-churn", "calendar", 1000.0),
            ("hypervisor-stress", "calendar", 1000.0),
        ]);
        let improved = report(&[
            ("queue-churn", "calendar", 5000.0),
            ("hypervisor-stress", "calendar", 1001.0),
        ]);
        assert!(engine_gate_compare(&baseline, &improved, 0.15).1);
        let missing = report(&[("queue-churn", "calendar", 1000.0)]);
        let (table, pass) = engine_gate_compare(&baseline, &missing, 0.15);
        assert!(!pass);
        assert!(table.contains("missing"), "{table}");
    }

    #[test]
    fn a_small_measurement_covers_all_four_rows() {
        let config = EngineConfig {
            churn_events: 20_000,
            churn_population: 16,
            stress_events: 6,
            repeats: 1,
            seed: crate::BASE_SEED,
        };
        let report = measure(&config);
        assert_eq!(report.measurements.len(), 4);
        for scenario in ["queue-churn", "hypervisor-stress"] {
            for backend in ["calendar", "legacy-heap"] {
                let eps = report.events_per_sec(scenario, backend);
                assert!(eps.is_some_and(|e| e > 0.0), "{scenario}/{backend}: {eps:?}");
            }
        }
    }
}
