//! Shared experiment harness for the Nimblock evaluation binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5 for the index and EXPERIMENTS.md for paper-versus-
//! measured results). This library holds what they share: the policy
//! roster, the standard stimulus parameters, and result aggregation.

pub mod cluster_scale;
pub mod engine_hot_path;
pub mod faas_ingest;
pub mod micro;
pub mod plan_sweep;
pub mod results;

pub use results::ResultWriter;

use nimblock_core::{
    FcfsScheduler, NimblockConfig, NimblockScheduler, NoSharingScheduler, PremaScheduler,
    RoundRobinScheduler, Scheduler, Testbed,
};
use nimblock_metrics::Report;
use nimblock_workload::EventSequence;

/// Seed of the first sequence in every suite; sequence `i` uses
/// `BASE_SEED + i` (see `nimblock_workload::generate_suite`).
pub const BASE_SEED: u64 = 2023;

/// Sequences per test, as in the paper ("the same test of 10 distinct
/// event sequences").
pub const SEQUENCES_PER_TEST: usize = 10;

/// Events per sequence ("each sequence consists of 20 randomly selected
/// events").
pub const EVENTS_PER_SEQUENCE: usize = 20;

/// A scheduler roster entry: every policy the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// The no-sharing, no-virtualization baseline.
    NoSharing,
    /// First-come, first-served ready-task FIFO.
    Fcfs,
    /// Coyote-style per-slot priority queues.
    RoundRobin,
    /// Task-based PREMA (paper-faithful, candidates only).
    Prema,
    /// PREMA with the work-conserving backfill extension (not in the paper).
    PremaBackfill,
    /// The full Nimblock algorithm.
    Nimblock,
    /// Nimblock ablation: preemption off.
    NimblockNoPreempt,
    /// Nimblock ablation: pipelining off.
    NimblockNoPipe,
    /// Nimblock ablation: both off.
    NimblockNoPreemptNoPipe,
}

impl Policy {
    /// The five policies of the paper's main evaluation, in figure order.
    pub const MAIN: [Policy; 5] = [
        Policy::NoSharing,
        Policy::Fcfs,
        Policy::RoundRobin,
        Policy::Prema,
        Policy::Nimblock,
    ];

    /// The four sharing policies compared against the baseline.
    pub const SHARING: [Policy; 4] = [
        Policy::Fcfs,
        Policy::RoundRobin,
        Policy::Prema,
        Policy::Nimblock,
    ];

    /// The ablation roster of Figure 9.
    pub const ABLATION: [Policy; 4] = [
        Policy::Nimblock,
        Policy::NimblockNoPreempt,
        Policy::NimblockNoPipe,
        Policy::NimblockNoPreemptNoPipe,
    ];

    /// Returns the display name used in report tables.
    pub fn name(self) -> &'static str {
        match self {
            Policy::NoSharing => "NoSharing",
            Policy::Fcfs => "FCFS",
            Policy::RoundRobin => "RR",
            Policy::Prema => "PREMA",
            Policy::PremaBackfill => "PREMA+backfill",
            Policy::Nimblock => "Nimblock",
            Policy::NimblockNoPreempt => "NimblockNoPreempt",
            Policy::NimblockNoPipe => "NimblockNoPipe",
            Policy::NimblockNoPreemptNoPipe => "NimblockNoPreemptNoPipe",
        }
    }

    /// Builds a fresh scheduler instance.
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            Policy::NoSharing => Box::new(NoSharingScheduler::new()),
            Policy::Fcfs => Box::new(FcfsScheduler::new()),
            Policy::RoundRobin => Box::new(RoundRobinScheduler::new()),
            Policy::Prema => Box::new(PremaScheduler::new()),
            Policy::PremaBackfill => Box::new(PremaScheduler::with_backfill()),
            Policy::Nimblock => Box::new(NimblockScheduler::new()),
            Policy::NimblockNoPreempt => {
                Box::new(NimblockScheduler::with_config(NimblockConfig::no_preemption()))
            }
            Policy::NimblockNoPipe => {
                Box::new(NimblockScheduler::with_config(NimblockConfig::no_pipelining()))
            }
            Policy::NimblockNoPreemptNoPipe => Box::new(NimblockScheduler::with_config(
                NimblockConfig::no_preemption_no_pipelining(),
            )),
        }
    }

    /// Runs this policy on one stimulus sequence.
    pub fn run(self, events: &EventSequence) -> Report {
        Testbed::new(self.build()).run(events)
    }

    /// Runs this policy on every sequence of a suite.
    pub fn run_suite(self, suite: &[EventSequence]) -> Vec<Report> {
        suite.iter().map(|seq| self.run(seq)).collect()
    }
}

/// Returns the number of suite sequences to run, honoring the `--quick`
/// command-line flag (3 sequences instead of the paper's 10) so every
/// binary can be smoke-tested cheaply.
pub fn sequences_from_args() -> usize {
    if std::env::args().any(|a| a == "--quick") {
        3
    } else {
        SEQUENCES_PER_TEST
    }
}

/// Pools the per-event response times (seconds) of a suite of reports,
/// ascending.
pub fn pooled_response_secs(reports: &[Report]) -> Vec<f64> {
    let mut secs: Vec<f64> = reports
        .iter()
        .flat_map(|r| r.records().iter().map(|rec| rec.response_time().as_secs_f64()))
        .collect();
    secs.sort_by(f64::total_cmp);
    secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_workload::{generate, Scenario};

    #[test]
    fn every_policy_builds_and_names_consistently() {
        for policy in [
            Policy::NoSharing,
            Policy::Fcfs,
            Policy::RoundRobin,
            Policy::Prema,
            Policy::PremaBackfill,
            Policy::Nimblock,
            Policy::NimblockNoPreempt,
            Policy::NimblockNoPipe,
            Policy::NimblockNoPreemptNoPipe,
        ] {
            assert_eq!(policy.build().name(), policy.name());
        }
    }

    #[test]
    fn run_produces_one_record_per_event() {
        let events = generate(BASE_SEED, 4, Scenario::Stress);
        for policy in Policy::MAIN {
            assert_eq!(policy.run(&events).records().len(), 4, "{}", policy.name());
        }
    }

    #[test]
    fn pooled_responses_are_sorted() {
        let events = generate(BASE_SEED, 5, Scenario::Standard);
        let reports = Policy::Nimblock.run_suite(&[events]);
        let pooled = pooled_response_secs(&reports);
        assert_eq!(pooled.len(), 5);
        assert!(pooled.windows(2).all(|w| w[0] <= w[1]));
    }
}
