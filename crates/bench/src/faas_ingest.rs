//! Front-door ingest benchmark: streamed invocations/sec through the
//! serving layer, plus the regression gate CI runs against the committed
//! baseline (`results/BENCH_faas.json`).
//!
//! The `faas_ingest` binary drives [`nimblock_faas::FrontDoor`] over a
//! lazily generated arrival stream — the full run pushes **one million
//! invocations** through admission control, shedding, and cache-aware
//! dispatch without ever materializing the invocation list (memory is
//! bounded by the serve chunk; the report's `peak_buffered` proves it).
//! Before timing anything it verifies that every worker-thread count
//! produces a byte-identical serving report (the determinism guarantee the
//! cluster engine carries, extended to the front door), then writes the
//! numbers as seed-stamped JSON.
//!
//! The gate half ([`gate_compare`]) mirrors `cluster_scale`: a pure
//! function over two decoded [`BenchReport`]s keyed by thread count, so
//! `scripts/bench_gate.sh` never parses JSON in shell. A fresh measurement
//! passes when its invocations/sec is within `tolerance` of the committed
//! baseline; improvements always pass.

use std::time::Instant;

use nimblock_faas::{FrontDoor, FrontDoorConfig, FunctionRegistry, TenantPolicy};
use nimblock_ser::impl_json_struct;
use nimblock_sim::SimDuration;
use nimblock_workload::ArrivalProcess;

/// One thread-count wall-clock sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Worker threads the serving stage was given (1 = sequential oracle).
    pub threads: usize,
    /// Best-of-repeats wall-clock for the whole stream, seconds.
    pub wall_secs: f64,
    /// Invocations ingested per second of wall-clock.
    pub events_per_sec: f64,
    /// Wall-clock of the threads=1 row divided by this row's wall-clock.
    pub speedup: f64,
}
impl_json_struct!(Measurement {
    threads,
    wall_secs,
    events_per_sec,
    speedup
});

/// The seed-stamped benchmark report (`results/BENCH_faas.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Always `"faas_ingest"`.
    pub experiment: String,
    /// RNG seed of the measured stream.
    pub seed: u64,
    /// Invocations streamed per pass.
    pub invocations: u64,
    /// Largest number of admitted invocations buffered at once — the
    /// bounded-memory claim, carried from the measured run.
    pub peak_buffered: u64,
    /// Logical CPUs the host reported when this was measured.
    pub host_cpus: usize,
    /// Whether every thread count produced a byte-identical serving report.
    pub deterministic: bool,
    /// One row per measured thread count.
    pub measurements: Vec<Measurement>,
}
impl_json_struct!(BenchReport {
    experiment,
    seed,
    invocations,
    peak_buffered,
    host_cpus,
    deterministic,
    measurements
});

/// Parameters for one benchmark run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Invocations streamed per timed pass.
    pub invocations: u64,
    /// Thread counts to measure, in order.
    pub threads: Vec<usize>,
    /// Passes per thread count; the minimum wall-clock is kept.
    pub repeats: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            invocations: 1_000_000,
            threads: vec![1, 2, 8],
            repeats: 3,
            seed: crate::BASE_SEED,
        }
    }
}

/// The measured workload: a bursty open-loop stream far beyond cluster
/// capacity, with rate limits and quotas engaged so every admission-control
/// path (admit / shed / reject) stays hot. Shedding is what keeps millions
/// of invocations in bounded memory, so the benchmark measures the door
/// under exactly the conditions the bound matters.
fn door_config(seed: u64, invocations: u64, threads: usize) -> FrontDoorConfig {
    let mut config = FrontDoorConfig::new(seed);
    config.invocations = invocations;
    config.process = ArrivalProcess::parse("bursty:2000").expect("bench process parses");
    config.shed_horizon = SimDuration::from_millis(200);
    config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
    config.threads = threads;
    config
}

fn run_once(config: &IngestConfig, threads: usize) -> (f64, u64) {
    let door = FrontDoor::new(
        FunctionRegistry::benchmark_suite(),
        door_config(config.seed, config.invocations, threads),
    );
    let start = Instant::now();
    let report = door.run();
    let wall = start.elapsed().as_secs_f64();
    // Keep the run from being optimised away and sanity-check conservation.
    assert!(report.conserves(), "serving counters must conserve invocations");
    assert_eq!(report.counters.offered, config.invocations);
    (wall, report.peak_buffered)
}

/// Serializes one (shorter) run for the determinism check.
fn fingerprint(config: &IngestConfig, invocations: u64, threads: usize) -> String {
    let door = FrontDoor::new(
        FunctionRegistry::benchmark_suite(),
        door_config(config.seed, invocations, threads),
    );
    nimblock_ser::to_string_pretty(&door.run())
}

/// Runs the full measurement: determinism verification first (on a
/// truncated stream, so the check does not triple the wall time), then the
/// timed thread sweep over the full stream.
///
/// # Panics
///
/// Panics if any thread count's serving report diverges from the
/// sequential (threads = 1) oracle, or if any pass fails conservation —
/// correctness bugs must never be recorded as a baseline.
pub fn measure(config: &IngestConfig) -> BenchReport {
    let check_invocations = config.invocations.min(50_000);
    let oracle = fingerprint(config, check_invocations, 1);
    for &threads in &config.threads {
        let fresh = fingerprint(config, check_invocations, threads);
        assert_eq!(
            fresh, oracle,
            "front door with {threads} threads diverged from the sequential oracle"
        );
    }

    let mut measurements = Vec::with_capacity(config.threads.len());
    let mut peak_buffered = 0u64;
    let mut base_wall = None;
    for &threads in &config.threads {
        let mut wall_secs = f64::INFINITY;
        for _ in 0..config.repeats.max(1) {
            let (wall, peak) = run_once(config, threads);
            wall_secs = wall_secs.min(wall);
            peak_buffered = peak_buffered.max(peak);
        }
        if threads == 1 || base_wall.is_none() {
            base_wall = Some(wall_secs);
        }
        let base = base_wall.expect("base wall-clock recorded");
        measurements.push(Measurement {
            threads,
            wall_secs,
            events_per_sec: config.invocations as f64 / wall_secs,
            speedup: base / wall_secs,
        });
    }

    BenchReport {
        experiment: "faas_ingest".to_owned(),
        seed: config.seed,
        invocations: config.invocations,
        peak_buffered,
        host_cpus: std::thread::available_parallelism().map_or(1, usize::from),
        deterministic: true,
        measurements,
    }
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// One row of the gate's delta table.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Threads of the compared row.
    pub threads: usize,
    /// Baseline invocations/sec.
    pub baseline_eps: f64,
    /// Freshly measured invocations/sec (`None` if the row vanished).
    pub fresh_eps: Option<f64>,
    /// Relative change, percent (+ is faster).
    pub delta_pct: f64,
    /// Whether this row is within tolerance.
    pub pass: bool,
}

/// The gate verdict: per-row deltas plus the overall pass flag.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// One entry per baseline row.
    pub rows: Vec<GateRow>,
    /// True iff every row passed and the fresh run was deterministic.
    pub pass: bool,
}

/// Compares a fresh measurement against the committed baseline, keyed by
/// thread count. A row passes when
/// `fresh_eps >= (1 - tolerance) * baseline_eps`; a baseline row missing
/// from the fresh report fails; a non-deterministic fresh report fails
/// regardless of timing.
pub fn gate_compare(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut rows = Vec::with_capacity(baseline.measurements.len());
    let mut pass = fresh.deterministic;
    for base in &baseline.measurements {
        let matched = fresh.measurements.iter().find(|m| m.threads == base.threads);
        let row = match matched {
            Some(m) => {
                let delta_pct = (m.events_per_sec / base.events_per_sec - 1.0) * 100.0;
                let ok = m.events_per_sec >= (1.0 - tolerance) * base.events_per_sec;
                GateRow {
                    threads: base.threads,
                    baseline_eps: base.events_per_sec,
                    fresh_eps: Some(m.events_per_sec),
                    delta_pct,
                    pass: ok,
                }
            }
            None => GateRow {
                threads: base.threads,
                baseline_eps: base.events_per_sec,
                fresh_eps: None,
                delta_pct: -100.0,
                pass: false,
            },
        };
        pass &= row.pass;
        rows.push(row);
    }
    GateOutcome { rows, pass }
}

/// Renders the gate's delta table as fixed-width text.
pub fn render_gate_table(outcome: &GateOutcome, tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>7} {:>14} {:>14} {:>9}  verdict (tolerance {:.0}%)\n",
        "threads",
        "base inv/s",
        "fresh inv/s",
        "delta",
        tolerance * 100.0
    ));
    for row in &outcome.rows {
        let fresh = row
            .fresh_eps
            .map_or_else(|| "missing".to_owned(), |eps| format!("{eps:.1}"));
        out.push_str(&format!(
            "{:>7} {:>14.1} {:>14} {:>+8.1}%  {}\n",
            row.threads,
            row.baseline_eps,
            fresh,
            row.delta_pct,
            if row.pass { "ok" } else { "REGRESSION" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(usize, f64)]) -> BenchReport {
        BenchReport {
            experiment: "faas_ingest".to_owned(),
            seed: 1,
            invocations: 1000,
            peak_buffered: 64,
            host_cpus: 1,
            deterministic: true,
            measurements: rows
                .iter()
                .map(|&(threads, eps)| Measurement {
                    threads,
                    wall_secs: 1.0,
                    events_per_sec: eps,
                    speedup: 1.0,
                })
                .collect(),
        }
    }

    #[test]
    fn bench_report_roundtrips_through_json() {
        let original = report(&[(1, 100.0), (2, 120.0)]);
        let text = nimblock_ser::to_string_pretty(&original);
        let parsed: BenchReport = nimblock_ser::from_str(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn gate_passes_within_tolerance_and_on_improvement() {
        let baseline = report(&[(1, 100.0), (2, 100.0)]);
        let fresh = report(&[(1, 90.0), (2, 250.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        assert!(outcome.pass, "{outcome:?}");
        assert!(outcome.rows[1].delta_pct > 100.0);
    }

    #[test]
    fn gate_fails_on_regression_missing_row_or_nondeterminism() {
        let baseline = report(&[(1, 100.0), (8, 100.0)]);
        let outcome = gate_compare(&baseline, &report(&[(1, 80.0), (8, 100.0)]), 0.15);
        assert!(!outcome.pass);
        assert!(!outcome.rows[0].pass);

        let outcome = gate_compare(&baseline, &report(&[(1, 100.0)]), 0.15);
        assert!(!outcome.pass);
        assert_eq!(outcome.rows[1].fresh_eps, None);

        let mut fresh = report(&[(1, 100.0), (8, 100.0)]);
        fresh.deterministic = false;
        assert!(!gate_compare(&baseline, &fresh, 0.15).pass);
    }

    #[test]
    fn gate_tolerance_boundary_is_inclusive() {
        let baseline = report(&[(1, 1000.0)]);
        assert!(gate_compare(&baseline, &report(&[(1, 850.0)]), 0.15).pass);
        assert!(!gate_compare(&baseline, &report(&[(1, 849.9)]), 0.15).pass);
        assert!(gate_compare(&baseline, &report(&[(1, 1000.0)]), 0.0).pass);
    }

    #[test]
    fn measure_streams_and_stays_deterministic() {
        let config = IngestConfig {
            invocations: 5_000,
            threads: vec![1, 2],
            repeats: 1,
            seed: crate::BASE_SEED,
        };
        let report = measure(&config);
        assert!(report.deterministic);
        assert_eq!(report.measurements.len(), 2);
        assert_eq!(report.invocations, 5_000);
        assert!(report.peak_buffered > 0);
        assert!(report.measurements.iter().all(|m| m.events_per_sec > 0.0));
    }

    #[test]
    fn render_gate_table_marks_regressions() {
        let baseline = report(&[(1, 100.0)]);
        let fresh = report(&[(1, 50.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        let table = render_gate_table(&outcome, 0.15);
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("tolerance 15%"), "{table}");
    }
}
