//! Minimal micro-benchmark runner replacing `criterion` for the offline
//! build.
//!
//! The protocol per benchmark:
//!
//! 1. **Calibrate**: double the batch size until one batch takes at least
//!    [`MIN_BATCH_NANOS`], so timer resolution never dominates.
//! 2. **Warm up**: run (and discard) a few calibrated batches to populate
//!    caches and branch predictors.
//! 3. **Sample**: time [`SAMPLES`] batches and report the **median** (plus
//!    mean/min/max) per-iteration nanoseconds — the median is robust to the
//!    scheduling noise a shared CI machine injects.
//!
//! [`Runner::finish`] prints a text table and writes
//! `results/micro/<group>.json` (see DESIGN.md §7 for the schema), so runs
//! are diffable and machine-readable without any plotting dependency.

use std::hint::black_box;
use std::time::Instant;

use nimblock_metrics::TextTable;
use nimblock_ser::{impl_json_struct, to_string_pretty};

/// Samples taken per benchmark; the median of these is reported.
pub const SAMPLES: usize = 15;

/// Minimum wall time per measured batch, in nanoseconds (2 ms).
pub const MIN_BATCH_NANOS: u128 = 2_000_000;

/// Warmup batches run (and discarded) before sampling.
pub const WARMUP_BATCHES: usize = 3;

/// One benchmark's aggregated timing, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name within the group.
    pub name: String,
    /// Iterations per timed batch after calibration.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: u32,
    /// Median per-iteration time across samples.
    pub median_ns: f64,
    /// Mean per-iteration time across samples.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Elements processed per iteration (0 when not a throughput bench);
    /// lets consumers derive elements/second.
    pub elements: u64,
}

impl_json_struct!(BenchResult {
    name,
    iters_per_sample,
    samples,
    median_ns,
    mean_ns,
    min_ns,
    max_ns,
    elements,
});

/// The JSON document written per group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// Group name (one file per group).
    pub group: String,
    /// Protocol constants, recorded so old files stay interpretable.
    pub samples_per_bench: u32,
    /// Minimum batch time the calibration targets, in nanoseconds.
    pub min_batch_nanos: u64,
    /// The results, in registration order.
    pub results: Vec<BenchResult>,
}

impl_json_struct!(GroupReport {
    group,
    samples_per_bench,
    min_batch_nanos,
    results,
});

/// A named group of micro-benchmarks (the criterion `benchmark_group`
/// analogue).
pub struct Runner {
    group: String,
    results: Vec<BenchResult>,
    quick: bool,
}

impl Runner {
    /// Creates a runner for `group`. Passing `--quick` on the command line
    /// cuts sampling to 3 samples for smoke tests.
    pub fn new(group: &str) -> Self {
        Runner {
            group: group.to_owned(),
            results: Vec::new(),
            quick: std::env::args().any(|a| a == "--quick"),
        }
    }

    fn samples(&self) -> usize {
        if self.quick {
            3
        } else {
            SAMPLES
        }
    }

    /// Benchmarks `f`, reporting per-iteration time.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) -> &mut Self {
        self.bench_elements(name, 0, f)
    }

    /// Benchmarks `f` which processes `elements` items per call, so the
    /// JSON consumer can derive throughput.
    pub fn bench_elements<R>(
        &mut self,
        name: &str,
        elements: u64,
        mut f: impl FnMut() -> R,
    ) -> &mut Self {
        // Calibrate: find an iteration count whose batch is long enough to
        // be timed reliably.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed >= MIN_BATCH_NANOS || iters >= 1 << 20 {
                break;
            }
            // Aim directly for the target when we have signal, else double.
            iters = if elapsed == 0 {
                iters * 2
            } else {
                (iters * 2).max((iters as u128 * MIN_BATCH_NANOS / elapsed) as u64)
            };
        }

        for _ in 0..WARMUP_BATCHES {
            for _ in 0..iters {
                black_box(f());
            }
        }

        let mut per_iter: Vec<f64> = (0..self.samples())
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

        self.results.push(BenchResult {
            name: name.to_owned(),
            iters_per_sample: iters,
            samples: per_iter.len() as u32,
            median_ns: median,
            mean_ns: mean,
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            elements,
        });
        self
    }

    /// Prints the group's table and writes `results/micro/<group>.json`.
    ///
    /// # Panics
    ///
    /// Panics if the results directory cannot be created or written — a
    /// benchmark run that cannot record its output should fail loudly.
    pub fn finish(self) {
        let mut table = TextTable::new(vec![
            "benchmark",
            "median",
            "mean",
            "min",
            "max",
            "throughput",
        ]);
        for r in &self.results {
            let throughput = if r.elements > 0 && r.median_ns > 0.0 {
                format!("{:.1} Melem/s", r.elements as f64 / r.median_ns * 1e3)
            } else {
                "-".to_owned()
            };
            table.row(vec![
                r.name.clone(),
                fmt_ns(r.median_ns),
                fmt_ns(r.mean_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                throughput,
            ]);
        }
        println!("group: {}\n{table}", self.group);

        let report = GroupReport {
            group: self.group.clone(),
            samples_per_bench: self.samples() as u32,
            min_batch_nanos: MIN_BATCH_NANOS as u64,
            results: self.results,
        };
        let dir = workspace_root().join("results").join("micro");
        std::fs::create_dir_all(&dir).expect("cannot create results/micro");
        let path = dir.join(format!("{}.json", report.group));
        std::fs::write(&path, to_string_pretty(&report))
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        println!("wrote {}\n", path.display());
    }
}

/// Returns the workspace root: cargo runs bench binaries with the package
/// directory as CWD, so ascend from the crate's manifest directory to the
/// first ancestor holding a `Cargo.lock` (falling back to the manifest
/// directory itself).
fn workspace_root() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").is_file())
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Formats a nanosecond quantity with a human-friendly unit.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_result_roundtrips_as_json() {
        let report = GroupReport {
            group: "g".into(),
            samples_per_bench: 15,
            min_batch_nanos: 2_000_000,
            results: vec![BenchResult {
                name: "b".into(),
                iters_per_sample: 128,
                samples: 15,
                median_ns: 12.5,
                mean_ns: 13.0,
                min_ns: 11.0,
                max_ns: 20.0,
                elements: 1_000,
            }],
        };
        let json = nimblock_ser::to_string(&report);
        let back: GroupReport = nimblock_ser::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn fmt_ns_picks_sensible_units() {
        assert_eq!(fmt_ns(5.0), "5.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.000 s");
    }
}
