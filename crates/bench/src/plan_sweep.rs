//! Capacity-planner benchmark: recorded-trace replay throughput and the
//! estimator's speedup over exact simulation, plus the regression gate
//! CI runs against the committed baseline (`results/BENCH_plan.json`).
//!
//! The `plan_sweep` binary records one overloaded serving day as a
//! compact trace (the same admission-control shape as `faas_ingest`),
//! then times the two engines `analyze plan` composes:
//!
//! * **replay** — the recorded offered sequence replayed through the
//!   full front door ([`nimblock_plan::estimator::exact_outcome`] on
//!   the baseline scenario), reported as records replayed per second of
//!   wall-clock;
//! * **estimate** — the analytical estimator sweeping `boards=1..32`,
//!   reported as record-scenarios evaluated per second (each scenario
//!   re-walks every record).
//!
//! The headline number is `estimator_speedup`: how many times faster
//! the estimator walks one record than exact simulation does — the
//! ratio that makes wide what-if sweeps affordable (DESIGN.md §18).
//! Before timing anything the harness verifies the planner is
//! deterministic (two full `plan()` passes over the same trace render
//! byte-identically), then writes the numbers as seed-stamped JSON.
//!
//! The gate half ([`gate_compare`]) mirrors `faas_ingest`: a pure
//! function over two decoded [`BenchReport`]s keyed by stage name, so
//! `scripts/bench_gate.sh` never parses JSON in shell.

use std::time::Instant;

use nimblock_faas::{FrontDoor, FrontDoorConfig, FunctionRegistry, TenantPolicy};
use nimblock_obs::record::{TraceReader, TraceRecord};
use nimblock_plan::estimator::exact_outcome;
use nimblock_plan::{expand_scenarios, plan, render_plan, Calibration, Estimator, PlanFormat,
    PlanOptions, Scenario, SweepAxis};
use nimblock_ser::impl_json_struct;
use nimblock_sim::SimDuration;
use nimblock_workload::ArrivalProcess;

/// One timed stage: `replay` (exact simulation) or `estimate` (the
/// analytical model).
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Stage name: `replay` or `estimate`.
    pub stage: String,
    /// Best-of-repeats wall-clock for the stage, seconds.
    pub wall_secs: f64,
    /// Records walked per second of wall-clock (for `estimate`, each
    /// record counts once per swept scenario).
    pub records_per_sec: f64,
}
impl_json_struct!(Measurement {
    stage,
    wall_secs,
    records_per_sec
});

/// The seed-stamped benchmark report (`results/BENCH_plan.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Always `"plan_sweep"`.
    pub experiment: String,
    /// RNG seed of the recorded serving day.
    pub seed: u64,
    /// Invocations recorded in the measured trace.
    pub invocations: u64,
    /// Scenarios the estimate stage sweeps.
    pub scenarios: u64,
    /// Estimator records/sec divided by replay records/sec.
    pub estimator_speedup: f64,
    /// Whether two full `plan()` passes rendered byte-identically.
    pub deterministic: bool,
    /// One row per timed stage.
    pub measurements: Vec<Measurement>,
}
impl_json_struct!(BenchReport {
    experiment,
    seed,
    invocations,
    scenarios,
    estimator_speedup,
    deterministic,
    measurements
});

/// Parameters for one benchmark run.
#[derive(Debug, Clone)]
pub struct PlanBenchConfig {
    /// Invocations recorded in the measured trace.
    pub invocations: u64,
    /// Passes per timed stage; the minimum wall-clock is kept.
    pub repeats: usize,
    /// RNG seed of the recorded serving day.
    pub seed: u64,
}

impl Default for PlanBenchConfig {
    fn default() -> Self {
        PlanBenchConfig { invocations: 200_000, repeats: 3, seed: crate::BASE_SEED }
    }
}

/// The sweep the estimate stage times — the acceptance-criteria sweep.
const ESTIMATE_SWEEP: &str = "boards=1..32";

/// Exact replays per timed repeat. One replay of a shed-heavy trace
/// takes tens of milliseconds — too short to gate at a 15% tolerance —
/// so each timed region replays the trace this many times and reports
/// the aggregate records/sec.
const REPLAY_PASSES: usize = 8;

/// The recorded workload: the same deliberately overloaded stream as
/// `faas_ingest`, so calibration sees admits, sheds, and rejections.
fn door_config(seed: u64, invocations: u64) -> FrontDoorConfig {
    let mut config = FrontDoorConfig::new(seed);
    config.invocations = invocations;
    config.process = ArrivalProcess::parse("bursty:2000").expect("bench process parses");
    config.shed_horizon = SimDuration::from_millis(200);
    config.tenant_policy = TenantPolicy { rate_per_sec: 300.0, burst: 32, quota: 64 };
    config
}

/// Records the measured serving day as a compact trace.
fn recorded_trace(config: &PlanBenchConfig, invocations: u64) -> Vec<u8> {
    let door =
        FrontDoor::new(FunctionRegistry::benchmark_suite(), door_config(config.seed, invocations));
    let (_report, trace) = door.run_recorded(1.0);
    trace
}

/// Renders a full planner pass for the determinism fingerprint.
fn fingerprint(trace: &[u8]) -> String {
    let options = PlanOptions {
        sweeps: vec!["boards=1..4".to_owned()],
        slo_target: 0.95,
        replays: 1,
    };
    let report = plan(trace, &options).expect("bench trace plans");
    render_plan(&report, PlanFormat::Json)
}

/// Runs the full measurement: determinism verification first (two
/// planner passes over a truncated trace must render byte-identically),
/// then the timed replay and estimate stages over the full trace.
///
/// # Panics
///
/// Panics if the planner is non-deterministic, the trace fails to
/// parse, or a replay diverges from the recorded report — correctness
/// bugs must never be recorded as a baseline.
pub fn measure(config: &PlanBenchConfig) -> BenchReport {
    let check_trace = recorded_trace(config, config.invocations.min(20_000));
    assert_eq!(
        fingerprint(&check_trace),
        fingerprint(&check_trace),
        "two planner passes over the same trace diverged"
    );

    let trace = recorded_trace(config, config.invocations);
    let registry = FunctionRegistry::benchmark_suite();
    let reader = TraceReader::parse(&trace).expect("bench trace parses");
    let header = reader.header().clone();
    let records: Vec<TraceRecord> =
        reader.records().collect::<Result<_, _>>().expect("bench records decode");
    let baseline = Scenario::baseline(&header);
    let axis = SweepAxis::parse(ESTIMATE_SWEEP).expect("bench sweep parses");
    let scenarios = expand_scenarios(&baseline, &[axis]).expect("bench sweep expands");

    // Replay stage: exact simulation of the baseline scenario.
    let mut replay_wall = f64::INFINITY;
    for _ in 0..config.repeats.max(1) {
        let start = Instant::now();
        for _ in 0..REPLAY_PASSES {
            let outcome =
                exact_outcome(&header, &registry, &records, &baseline).expect("baseline replays");
            assert_eq!(outcome.offered, config.invocations, "replay must walk every record");
        }
        replay_wall = replay_wall.min(start.elapsed().as_secs_f64());
    }

    // Estimate stage: the analytical model over the full sweep.
    let calibration =
        Calibration::from_trace(&header, &records, &registry).expect("bench trace calibrates");
    let estimator = Estimator::new(&header, &registry, &calibration);
    let mut estimate_wall = f64::INFINITY;
    for _ in 0..config.repeats.max(1) {
        let start = Instant::now();
        for scenario in &scenarios {
            let outcome = estimator.predict(scenario, &records);
            assert_eq!(outcome.offered, config.invocations, "estimate must walk every record");
        }
        estimate_wall = estimate_wall.min(start.elapsed().as_secs_f64());
    }

    let replay_rps = config.invocations as f64 * REPLAY_PASSES as f64 / replay_wall;
    let estimate_rps = config.invocations as f64 * scenarios.len() as f64 / estimate_wall;
    BenchReport {
        experiment: "plan_sweep".to_owned(),
        seed: config.seed,
        invocations: config.invocations,
        scenarios: scenarios.len() as u64,
        estimator_speedup: estimate_rps / replay_rps,
        deterministic: true,
        measurements: vec![
            Measurement {
                stage: "replay".to_owned(),
                wall_secs: replay_wall,
                records_per_sec: replay_rps,
            },
            Measurement {
                stage: "estimate".to_owned(),
                wall_secs: estimate_wall,
                records_per_sec: estimate_rps,
            },
        ],
    }
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

/// One row of the gate's delta table.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Stage of the compared row.
    pub stage: String,
    /// Baseline records/sec.
    pub baseline_rps: f64,
    /// Freshly measured records/sec (`None` if the stage vanished).
    pub fresh_rps: Option<f64>,
    /// Relative change, percent (+ is faster).
    pub delta_pct: f64,
    /// Whether this row is within tolerance.
    pub pass: bool,
}

/// The gate verdict: per-stage deltas plus the overall pass flag.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// One entry per baseline stage.
    pub rows: Vec<GateRow>,
    /// True iff every row passed and the fresh run was deterministic.
    pub pass: bool,
}

/// Compares a fresh measurement against the committed baseline, keyed
/// by stage name. A row passes when
/// `fresh_rps >= (1 - tolerance) * baseline_rps`; a baseline stage
/// missing from the fresh report fails; a non-deterministic fresh
/// report fails regardless of timing.
pub fn gate_compare(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> GateOutcome {
    let mut rows = Vec::with_capacity(baseline.measurements.len());
    let mut pass = fresh.deterministic;
    for base in &baseline.measurements {
        let matched = fresh.measurements.iter().find(|m| m.stage == base.stage);
        let row = match matched {
            Some(m) => {
                let delta_pct = (m.records_per_sec / base.records_per_sec - 1.0) * 100.0;
                let ok = m.records_per_sec >= (1.0 - tolerance) * base.records_per_sec;
                GateRow {
                    stage: base.stage.clone(),
                    baseline_rps: base.records_per_sec,
                    fresh_rps: Some(m.records_per_sec),
                    delta_pct,
                    pass: ok,
                }
            }
            None => GateRow {
                stage: base.stage.clone(),
                baseline_rps: base.records_per_sec,
                fresh_rps: None,
                delta_pct: -100.0,
                pass: false,
            },
        };
        pass &= row.pass;
        rows.push(row);
    }
    GateOutcome { rows, pass }
}

/// Renders the gate's delta table as fixed-width text.
pub fn render_gate_table(outcome: &GateOutcome, tolerance: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>9} {:>14} {:>14} {:>9}  verdict (tolerance {:.0}%)\n",
        "stage",
        "base rec/s",
        "fresh rec/s",
        "delta",
        tolerance * 100.0
    ));
    for row in &outcome.rows {
        let fresh = row
            .fresh_rps
            .map_or_else(|| "missing".to_owned(), |rps| format!("{rps:.1}"));
        out.push_str(&format!(
            "{:>9} {:>14.1} {:>14} {:>+8.1}%  {}\n",
            row.stage,
            row.baseline_rps,
            fresh,
            row.delta_pct,
            if row.pass { "ok" } else { "REGRESSION" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            experiment: "plan_sweep".to_owned(),
            seed: 1,
            invocations: 1000,
            scenarios: 32,
            estimator_speedup: 10.0,
            deterministic: true,
            measurements: rows
                .iter()
                .map(|&(stage, rps)| Measurement {
                    stage: stage.to_owned(),
                    wall_secs: 1.0,
                    records_per_sec: rps,
                })
                .collect(),
        }
    }

    #[test]
    fn bench_report_roundtrips_through_json() {
        let original = report(&[("replay", 100.0), ("estimate", 1000.0)]);
        let text = nimblock_ser::to_string_pretty(&original);
        let parsed: BenchReport = nimblock_ser::from_str(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn gate_passes_within_tolerance_and_on_improvement() {
        let baseline = report(&[("replay", 100.0), ("estimate", 100.0)]);
        let fresh = report(&[("replay", 90.0), ("estimate", 250.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        assert!(outcome.pass, "{outcome:?}");
        assert!(outcome.rows[1].delta_pct > 100.0);
    }

    #[test]
    fn gate_fails_on_regression_missing_stage_or_nondeterminism() {
        let baseline = report(&[("replay", 100.0), ("estimate", 100.0)]);
        let outcome = gate_compare(&baseline, &report(&[("replay", 80.0), ("estimate", 100.0)]), 0.15);
        assert!(!outcome.pass);
        assert!(!outcome.rows[0].pass);

        let outcome = gate_compare(&baseline, &report(&[("replay", 100.0)]), 0.15);
        assert!(!outcome.pass);
        assert_eq!(outcome.rows[1].fresh_rps, None);

        let mut fresh = report(&[("replay", 100.0), ("estimate", 100.0)]);
        fresh.deterministic = false;
        assert!(!gate_compare(&baseline, &fresh, 0.15).pass);
    }

    #[test]
    fn render_gate_table_marks_regressions() {
        let baseline = report(&[("replay", 100.0)]);
        let fresh = report(&[("replay", 50.0)]);
        let outcome = gate_compare(&baseline, &fresh, 0.15);
        let table = render_gate_table(&outcome, 0.15);
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("tolerance 15%"), "{table}");
    }

    #[test]
    fn measure_times_both_stages_and_stays_deterministic() {
        let config = PlanBenchConfig { invocations: 2_000, repeats: 1, seed: crate::BASE_SEED };
        let report = measure(&config);
        assert!(report.deterministic);
        assert_eq!(report.measurements.len(), 2);
        assert_eq!(report.invocations, 2_000);
        assert_eq!(report.scenarios, 32);
        assert!(report.estimator_speedup > 1.0, "the estimator must beat exact simulation");
        assert!(report.measurements.iter().all(|m| m.records_per_sec > 0.0));
    }
}
