//! Serverless experiment (the paper's §1 motivation): SLO attainment and
//! per-function latency when the six benchmarks are deployed as functions
//! with Zipf-like popularity, compared across schedulers.

use nimblock_bench::{sequences_from_args, ResultWriter};
use nimblock_core::{FcfsScheduler, NimblockScheduler, PremaScheduler, RoundRobinScheduler, Scheduler};
use nimblock_faas::{FaasGateway, FaasSummary, FunctionRegistry, InvocationWorkload};
use nimblock_metrics::{fmt3, TextTable};

fn run(gateway: &FaasGateway, workload: &InvocationWorkload, scheduler: impl Scheduler) -> FaasSummary {
    gateway.run(workload, scheduler)
}

fn main() {
    let quick = sequences_from_args() < 10;
    let invocations = if quick { 40 } else { 120 };
    const SEED: u64 = 2023;
    let gateway = FaasGateway::new(FunctionRegistry::benchmark_suite());
    let workload = InvocationWorkload::new(SEED)
        .invocations(invocations)
        .mean_gap_millis(150)
        .max_items(8);
    println!(
        "FaaS over the virtualized FPGA: {invocations} invocations, Zipf popularity,\nsix functions (three latency-class, two standard, one batch)\n"
    );

    let summaries = vec![
        run(&gateway, &workload, FcfsScheduler::new()),
        run(&gateway, &workload, RoundRobinScheduler::new()),
        run(&gateway, &workload, PremaScheduler::new()),
        run(&gateway, &workload, NimblockScheduler::default()),
    ];

    let mut table = TextTable::new(vec![
        "scheduler",
        "overall SLO attainment",
        "latency-class p95 (s)",
        "mean latency (s)",
    ]);
    for summary in &summaries {
        let latency_p95 = summary
            .per_function()
            .iter()
            .filter(|f| f.slo.name() == "latency")
            .map(|f| f.p95_latency_secs)
            .fold(0.0f64, f64::max);
        let mean = summary
            .per_function()
            .iter()
            .map(|f| f.mean_latency_secs * f.invocations as f64)
            .sum::<f64>()
            / summary.total_invocations() as f64;
        table.row(vec![
            summary.scheduler().to_owned(),
            fmt3(summary.overall_attainment()),
            fmt3(latency_p95),
            fmt3(mean),
        ]);
    }
    print!("{table}");

    println!("\nPer-function detail under Nimblock:\n");
    let nimblock = summaries.last().expect("roster is non-empty");
    let mut detail = TextTable::new(vec![
        "function", "class", "invocations", "mean (s)", "p95 (s)", "SLO attainment",
    ]);
    for stats in nimblock.per_function() {
        detail.row(vec![
            stats.function.clone(),
            stats.slo.to_string(),
            stats.invocations.to_string(),
            fmt3(stats.mean_latency_secs),
            fmt3(stats.p95_latency_secs),
            fmt3(stats.slo_attainment),
        ]);
    }
    print!("{detail}");
    println!(
        "\nExpected: the priority-aware schedulers (Nimblock, PREMA) hold latency-class\nSLOs under load where FCFS/RR let hot short functions queue behind batch work."
    );
    ResultWriter::new("faas", SEED, invocations)
        .table("SLO attainment and latency per scheduler", &table)
        .note("invocation count recorded in the sequences field")
        .table("per-function detail under Nimblock", &detail)
        .write();
}
