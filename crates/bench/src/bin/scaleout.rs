//! Scale-out experiment (beyond the paper's single-board evaluation):
//! mean response time versus cluster size and dispatch policy, with every
//! board running the Nimblock scheduler.

use nimblock_bench::{sequences_from_args, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_cluster::{ClusterTestbed, DispatchPolicy};
use nimblock_core::NimblockScheduler;
use nimblock_metrics::{fmt3, TextTable};
use nimblock_workload::{generate_suite, Scenario};

fn main() {
    let sequences = sequences_from_args();
    let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, Scenario::Stress);
    println!(
        "Scale-out: mean response time (s) vs boards and dispatch policy\n(stress test, {sequences} sequences x {EVENTS_PER_SEQUENCE} events, Nimblock per board)\n"
    );
    let mut header = vec!["dispatch".to_owned()];
    let board_counts = [1usize, 2, 4, 8];
    header.extend(board_counts.iter().map(|b| format!("{b} board(s)")));
    let mut table = TextTable::new(header);
    for dispatch in DispatchPolicy::ALL {
        let mut row = vec![dispatch.name().to_owned()];
        for &boards in &board_counts {
            let mut total = 0.0;
            for seq in &suite {
                let report =
                    ClusterTestbed::new(boards, dispatch, NimblockScheduler::default).run(seq);
                total += report.merged().mean_response_secs();
            }
            row.push(fmt3(total / suite.len() as f64));
        }
        table.row(row);
    }
    print!("{table}");

    // Short applications are where dispatch quality shows: their response
    // is queueing-dominated, not execution-dominated.
    let mut header = vec!["dispatch".to_owned()];
    header.extend(board_counts.iter().map(|b| format!("{b} board(s)")));
    let mut short_table = TextTable::new(header);
    for dispatch in DispatchPolicy::ALL {
        let mut row = vec![dispatch.name().to_owned()];
        for &boards in &board_counts {
            let mut samples = Vec::new();
            for seq in &suite {
                let report =
                    ClusterTestbed::new(boards, dispatch, NimblockScheduler::default).run(seq);
                samples.extend(
                    report
                        .merged()
                        .records()
                        .iter()
                        .filter(|r| {
                            matches!(
                                r.app_name.as_str(),
                                "LeNet" | "ImageCompression" | "3DRendering"
                            )
                        })
                        .map(|r| r.response_time().as_secs_f64()),
                );
            }
            row.push(fmt3(samples.iter().sum::<f64>() / samples.len() as f64));
        }
        short_table.row(row);
    }
    println!("\nShort applications only (LeNet, ImageCompression, 3DRendering):\n");
    print!("{short_table}");
    println!(
        "\nExpected: overall means fall with boards until the long benchmarks'\nexecution floors them. For short, queueing-dominated applications,\nfewest-apps dispatch beats blind round-robin; least-outstanding is misled\nby remaining-compute totals that ignore how well a board parallelizes them."
    );
}
