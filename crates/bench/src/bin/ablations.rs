//! Design-choice ablations beyond the paper's Figure 9: sensitivity of the
//! Nimblock system to its main model and policy parameters.
//!
//! Sections:
//!   1. scheduling-interval sweep (the 400 ms slot-reallocation epoch),
//!   2. reconfiguration-latency sensitivity (how much the CAP speed
//!      matters — the paper stresses masking PR latency),
//!   3. data-movement model: through-PS overhead versus an idealized NoC
//!      (the paper's §7 future work),
//!   4. token scale factor α,
//!   5. goal-number knee threshold of the saturation analysis.
//!
//! Each section reports Nimblock's mean response time on a fixed stress
//! stimulus; lower is better.

use nimblock_bench::{sequences_from_args, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_core::{NimblockConfig, NimblockScheduler, Testbed};
use nimblock_fpga::DeviceConfig;
use nimblock_metrics::{fmt3, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::{generate_suite, EventSequence, Scenario};

fn mean_over(suite: &[EventSequence], build: impl Fn() -> Testbed<NimblockScheduler>) -> f64 {
    let mut total = 0.0;
    for seq in suite {
        total += build().run(seq).mean_response_secs();
    }
    total / suite.len() as f64
}

fn main() {
    let sequences = sequences_from_args();
    let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, Scenario::Stress);
    println!(
        "Design-choice ablations on the stress test ({sequences} sequences x {EVENTS_PER_SEQUENCE} events); Nimblock mean response time (s)\n"
    );
    let mut writer = ResultWriter::new("ablations", BASE_SEED, sequences);

    // 1. Scheduling interval. The hypervisor also reacts to events, so the
    //    tick mainly bounds how stale token counts can get.
    {
        let mut table = TextTable::new(vec!["scheduling interval (ms)", "mean response (s)"]);
        for millis in [100u64, 200, 400, 800, 1_600, 3_200] {
            let mean = mean_over(&suite, move || {
                Testbed::new(NimblockScheduler::default())
                    .with_scheduling_interval(SimDuration::from_millis(millis))
            });
            table.row(vec![millis.to_string(), fmt3(mean)]);
        }
        println!("1. Scheduling interval (400 ms on the evaluated system):");
        print!("{table}");
        writer.table("scheduling-interval sweep", &table);
    }

    // 2. Reconfiguration latency sensitivity: sweep the CAP bandwidth so a
    //    slot takes 20..320 ms to reconfigure.
    {
        let mut table = TextTable::new(vec!["reconfig latency (ms)", "mean response (s)"]);
        for millis in [20u64, 40, 80, 160, 320] {
            let mut config = DeviceConfig::zcu106();
            config.cap_bandwidth_bytes_per_sec =
                nimblock_fpga::zcu106::SLOT_BITSTREAM_BYTES * 1_000 / millis;
            let config_for_run = config.clone();
            let mean = mean_over(&suite, move || {
                Testbed::new(NimblockScheduler::default())
                    .with_device_config(config_for_run.clone())
            });
            table.row(vec![millis.to_string(), fmt3(mean)]);
        }
        println!("\n2. Reconfiguration-latency sensitivity:");
        print!("{table}");
        writer.table("reconfiguration-latency sensitivity", &table);
    }

    // 3. Data movement: per-item overhead of through-PS transfers versus an
    //    idealized NoC (zero overhead) and slower fabrics.
    {
        let mut table = TextTable::new(vec!["per-item overhead", "mean response (s)"]);
        for (label, micros) in [
            ("0 (ideal NoC)", 0u64),
            ("100 us", 100),
            ("1 ms (through-PS default)", 1_000),
            ("5 ms", 5_000),
            ("20 ms", 20_000),
        ] {
            let mean = mean_over(&suite, move || {
                Testbed::new(NimblockScheduler::default())
                    .with_per_item_overhead(SimDuration::from_micros(micros))
            });
            table.row(vec![label.to_owned(), fmt3(mean)]);
        }
        println!("\n3. Data-movement model (paper §7: a NoC would optimize inter-slot transfers):");
        print!("{table}");
        writer.table("data-movement model sweep", &table);
    }

    // 4. Token scale factor alpha.
    {
        let mut table = TextTable::new(vec!["alpha", "mean response (s)"]);
        for alpha in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let mean = mean_over(&suite, move || {
                Testbed::new(NimblockScheduler::with_config(NimblockConfig {
                    alpha,
                    ..NimblockConfig::full()
                }))
            });
            table.row(vec![alpha.to_string(), fmt3(mean)]);
        }
        println!("\n4. Token-accumulation scale factor:");
        print!("{table}");
        writer.table("token scale factor alpha sweep", &table);
    }

    // 5. Goal-number knee threshold.
    {
        let mut table = TextTable::new(vec!["knee threshold", "mean response (s)"]);
        for threshold in [0.01, 0.05, 0.15, 0.40, 0.90] {
            let mean = mean_over(&suite, move || {
                Testbed::new(NimblockScheduler::with_config(NimblockConfig {
                    improvement_threshold: threshold,
                    ..NimblockConfig::full()
                }))
            });
            table.row(vec![threshold.to_string(), fmt3(mean)]);
        }
        println!("\n5. Goal-number knee threshold (higher => smaller goal numbers):");
        print!("{table}");
        writer.table("goal-number knee threshold sweep", &table);
    }
    writer
        .note("Nimblock mean response time (s) on the stress test; lower is better")
        .write();
}
