//! Utilization study: the paper motivates fine-grained sharing with
//! resource efficiency ("dedicating entire pieces of hardware to a single
//! job … potentially leading to resource under-utilization", §1). This
//! bench measures mean slot occupancy from schedule traces.

use nimblock_bench::{sequences_from_args, Policy, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_core::Testbed;
use nimblock_metrics::{fmt3, TextTable};
use nimblock_workload::{generate_suite, Scenario};

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Slot utilization from schedule traces ({sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let mut table = TextTable::new(vec![
        "scheduler",
        "standard util",
        "stress util",
        "real-time util",
    ]);
    let mut rows: Vec<Vec<String>> = Policy::MAIN
        .iter()
        .map(|p| vec![p.name().to_owned()])
        .collect();
    for scenario in Scenario::ALL {
        let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, scenario);
        for (policy, row) in Policy::MAIN.iter().zip(&mut rows) {
            let mut util_sum = 0.0;
            for seq in &suite {
                let (_, trace) = Testbed::new(policy.build()).run_traced(seq);
                let per_slot = trace.slot_utilization();
                util_sum += per_slot.iter().sum::<f64>() / per_slot.len() as f64;
            }
            row.push(fmt3(util_sum / suite.len() as f64));
        }
    }
    for row in rows {
        table.row(row);
    }
    print!("{table}");
    println!(
        "\nNote: utilization is work/makespan, so a faster scheduler doing the same work\nin less time shows HIGHER occupancy. The baseline's low number is the paper's\nmotivating under-utilization: one application at a time cannot fill ten slots."
    );
}
