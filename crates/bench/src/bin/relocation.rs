//! Bitstream storage study (paper §2.2): the evaluated flow generates one
//! partial bitstream *per task per slot* ("for n slots on the FPGA, each
//! task will have n partial bitstreams, to provide complete flexibility"),
//! and notes that bitstream relocation could cut that storage n-fold.
//!
//! This experiment quantifies both: the static storage footprint of the
//! two flows, and — from a traced Nimblock run — how many of the per-slot
//! variants a real schedule actually exercises.

use std::collections::BTreeSet;

use nimblock_bench::{sequences_from_args, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_app::benchmarks;
use nimblock_core::{NimblockScheduler, Testbed, TraceEvent};
use nimblock_fpga::zcu106;
use nimblock_metrics::TextTable;
use nimblock_workload::{generate, Scenario};

fn mib(bytes: u64) -> String {
    format!("{:.0}", bytes as f64 / (1 << 20) as f64)
}

fn main() {
    let _ = sequences_from_args();
    let slots = zcu106::SLOT_COUNT as u64;
    let per_bitstream = zcu106::SLOT_BITSTREAM_BYTES;

    println!("Bitstream storage: per-slot variants vs relocation (paper §2.2)\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "tasks",
        "per-slot flow (MiB)",
        "relocatable (MiB)",
        "saving",
    ]);
    let mut total_per_slot = 0u64;
    let mut total_relocatable = 0u64;
    for app in benchmarks::all() {
        let tasks = app.graph().task_count() as u64;
        let per_slot = tasks * slots * per_bitstream;
        let relocatable = tasks * per_bitstream;
        total_per_slot += per_slot;
        total_relocatable += relocatable;
        table.row(vec![
            app.name().to_owned(),
            tasks.to_string(),
            mib(per_slot),
            mib(relocatable),
            format!("{}x", slots),
        ]);
    }
    table.row(vec![
        "TOTAL".into(),
        benchmarks::all()
            .iter()
            .map(|a| a.graph().task_count())
            .sum::<usize>()
            .to_string(),
        mib(total_per_slot),
        mib(total_relocatable),
        format!("{}x", slots),
    ]);
    print!("{table}");

    // How much flexibility does a real schedule use? Trace one stress run
    // and count the distinct slots each application task was configured to.
    let events = generate(BASE_SEED, EVENTS_PER_SEQUENCE, Scenario::Stress);
    let (_, trace) = Testbed::new(NimblockScheduler::default()).run_traced(&events);
    let mut variants: BTreeSet<(u64, u32, u32)> = BTreeSet::new();
    let mut placements = 0usize;
    for event in trace.events() {
        if let TraceEvent::Reconfig { slot, app, task, .. } = event {
            variants.insert((app.raw(), task.index() as u32, slot.index() as u32));
            placements += 1;
        }
    }
    let distinct_pairs: BTreeSet<(u64, u32)> =
        variants.iter().map(|&(a, t, _)| (a, t)).collect();
    let avg_variants = variants.len() as f64 / distinct_pairs.len() as f64;
    println!(
        "\nOne traced Nimblock stress run ({} placements): {} task instances used\n{} distinct (task, slot) bitstream variants — {:.2} slots per task on average,\nout of the {} variants the per-slot flow stores.",
        placements,
        distinct_pairs.len(),
        variants.len(),
        avg_variants,
        zcu106::SLOT_COUNT,
    );
    println!(
        "\nConclusion: the per-slot flow stores {}x more bitstream data than a\nrelocatable flow, while a real schedule touches only ~{:.0}% of those variants —\nthe flexibility is needed *somewhere* unpredictable, which is exactly the case\nrelocation (or on-demand generation) addresses.",
        slots,
        100.0 * avg_variants / zcu106::SLOT_COUNT as f64,
    );
}
