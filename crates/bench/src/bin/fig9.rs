//! Figure 9: ablation study — relative response time for the stress test
//! under different fixed batch sizes, normalized to the full Nimblock
//! algorithm.
//!
//! Stimulus (paper §5.6): stress-test inter-arrival delays with fixed batch
//! sizes, random benchmarks and priorities. Each ablated variant's
//! per-event response times are normalized to full Nimblock's and averaged
//! (>1 means the variant is slower).

use nimblock_bench::{sequences_from_args, Policy, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_metrics::{fmt3, Report};
use nimblock_metrics::TextTable;
use nimblock_sim::SimDuration;
use nimblock_workload::fixed_batch_sequence;

/// Stress-test inter-arrival midpoint (the generator's 150–200 ms range).
const STRESS_DELAY: SimDuration = SimDuration::from_millis(175);

pub(crate) const BATCH_SIZES: [u32; 7] = [1, 5, 10, 15, 20, 25, 30];

fn mean_ratio(variant: &[Report], base: &[Report]) -> f64 {
    let mut ratios = Vec::new();
    for (v, b) in variant.iter().zip(base) {
        for record in v.records() {
            let baseline = b
                .record_for_event(record.event_index)
                .expect("same stimulus");
            ratios.push(
                record.response_time().as_secs_f64() / baseline.response_time().as_secs_f64(),
            );
        }
    }
    ratios.iter().sum::<f64>() / ratios.len() as f64
}

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Figure 9: ablation — mean per-event response time normalized to full Nimblock\n(stress delays, fixed batch sizes, {sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let mut header = vec!["Variant".to_owned()];
    header.extend(BATCH_SIZES.iter().map(|b| format!("batch {b}")));
    let mut table = TextTable::new(header);
    let mut rows: Vec<Vec<String>> = Policy::ABLATION
        .iter()
        .map(|p| vec![p.name().to_owned()])
        .collect();
    for batch in BATCH_SIZES {
        let suite: Vec<_> = (0..sequences)
            .map(|i| {
                fixed_batch_sequence(
                    BASE_SEED + i as u64,
                    EVENTS_PER_SEQUENCE,
                    batch,
                    STRESS_DELAY,
                )
            })
            .collect();
        let base = Policy::Nimblock.run_suite(&suite);
        for (policy, row) in Policy::ABLATION.iter().zip(&mut rows) {
            if *policy == Policy::Nimblock {
                row.push("1.000x".to_owned());
                continue;
            }
            let reports = policy.run_suite(&suite);
            row.push(format!("{}x", fmt3(mean_ratio(&reports, &base))));
        }
    }
    for row in rows {
        table.row(row);
    }
    print!("{table}");
    println!(
        "\nPaper: NoPreempt runs 1.07-1.14x worse across batch sizes; NoPipe ~1.2x worse;\nNoPreemptNoPipe overlaps NoPipe (without pipelining nobody monopolizes slots, so\npreemption has little left to reclaim)."
    );
    ResultWriter::new("fig9", BASE_SEED, sequences)
        .table("ablation: mean per-event response time normalized to full Nimblock", &table)
        .note("stress delays, fixed batch sizes")
        .write();
}
