//! Engine hot-path benchmark and regression gate.
//!
//! Measurement mode (default) times the simulator's per-event cost on both
//! event-queue backends — the calendar queue and the retired binary heap —
//! across a queue-only churn scenario and a full hypervisor stress run,
//! then writes `results/BENCH_engine.json`:
//!
//! ```text
//! cargo run --release --bin engine_hot_path
//! cargo run --release --bin engine_hot_path -- --quick --out /tmp/fresh.json
//! ```
//!
//! Gate mode re-measures with a committed baseline's workload and exits
//! nonzero if any (scenario, backend) row regresses beyond the tolerance
//! (wired into CI by `scripts/bench_gate.sh`):
//!
//! ```text
//! cargo run --release --bin engine_hot_path -- --quick \
//!     --gate results/BENCH_engine.json --tolerance 15
//! ```

use std::process::ExitCode;

use nimblock_bench::engine_hot_path::{
    engine_gate_compare, measure, EngineConfig, EngineReport, SEED_BASELINE_EPS,
};

struct Options {
    config: EngineConfig,
    out: String,
    gate: Option<String>,
    tolerance: f64,
}

fn parse_options() -> Result<Options, String> {
    let mut config = EngineConfig::default();
    let mut out = "results/BENCH_engine.json".to_owned();
    let mut gate = None;
    let mut tolerance = 0.15;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                config.churn_events = 200_000;
                config.stress_events = 20;
                config.repeats = 1;
            }
            "--churn-events" => {
                config.churn_events =
                    value(&mut i, "--churn-events")?.parse().map_err(|e| format!("--churn-events: {e}"))?;
            }
            "--stress-events" => {
                config.stress_events =
                    value(&mut i, "--stress-events")?.parse().map_err(|e| format!("--stress-events: {e}"))?;
            }
            "--repeats" => {
                config.repeats = value(&mut i, "--repeats")?.parse().map_err(|e| format!("--repeats: {e}"))?;
            }
            "--seed" => {
                config.seed = value(&mut i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = value(&mut i, "--out")?,
            "--gate" => gate = Some(value(&mut i, "--gate")?),
            "--tolerance" => {
                let pct: f64 =
                    value(&mut i, "--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?;
                tolerance = pct / 100.0;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(Options { config, out, gate, tolerance })
}

fn load_baseline(path: &str) -> Result<EngineReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    nimblock_ser::from_str(&text).map_err(|e| format!("malformed baseline {path}: {e}"))
}

fn main() -> ExitCode {
    let mut options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("engine_hot_path: {message}");
            eprintln!(
                "usage: engine_hot_path [--quick] [--churn-events N] [--stress-events N] \
                 [--repeats N] [--seed N] [--out FILE] [--gate BASELINE --tolerance PCT]"
            );
            return ExitCode::FAILURE;
        }
    };

    // Gate runs must reproduce the baseline's workload exactly; only
    // `--repeats` stays caller-chosen.
    let baseline = match &options.gate {
        Some(path) => match load_baseline(path) {
            Ok(baseline) => {
                options.config.seed = baseline.seed;
                Some(baseline)
            }
            Err(message) => {
                eprintln!("engine_hot_path: {message}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!(
        "engine_hot_path: churn_events={} stress_events={} repeats={} seed={}",
        options.config.churn_events,
        options.config.stress_events,
        options.config.repeats,
        options.config.seed,
    );
    let fresh = measure(&options.config);
    for m in &fresh.measurements {
        println!(
            "  {:<18} {:<12} {:>10} events  wall={:>8.3}s  {:>12.1} events/s",
            m.scenario, m.backend, m.events, m.wall_secs, m.events_per_sec
        );
    }
    for scenario in ["queue-churn", "hypervisor-stress"] {
        if let Some(speedup) = fresh.speedup(scenario) {
            println!("  {scenario}: calendar is {speedup:.1}x the legacy heap");
        }
    }
    if let Some(eps) = fresh.events_per_sec("hypervisor-stress", "calendar") {
        println!(
            "  hypervisor-stress: {:.0}x the pre-overhaul {} events/s pipeline",
            eps / SEED_BASELINE_EPS,
            SEED_BASELINE_EPS
        );
    }

    if let Some(baseline) = baseline {
        let (table, pass) = engine_gate_compare(&baseline, &fresh, options.tolerance);
        print!("{table}");
        if !pass {
            eprintln!("engine_hot_path: regression beyond tolerance against {:?}", options.gate);
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if let Some(parent) = std::path::Path::new(&options.out).parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("engine_hot_path: create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let text = nimblock_ser::to_string_pretty(&fresh);
    if let Err(e) = std::fs::write(&options.out, text) {
        eprintln!("engine_hot_path: write {}: {e}", options.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", options.out);
    ExitCode::SUCCESS
}
