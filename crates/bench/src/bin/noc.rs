//! Interconnect experiment (paper §7 future work): through-PS data
//! movement versus a ring NoC, with Nimblock's placement affinity.
//!
//! "A NoC would allow for optimized data transfer between slots; the
//! current design requires slots to communicate through the ARM core."

use nimblock_bench::{sequences_from_args, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_core::{NimblockScheduler, Testbed};
use nimblock_fpga::Interconnect;
use nimblock_metrics::{fmt3, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::{fixed_batch_sequence, generate_suite, Scenario};

fn main() {
    let sequences = sequences_from_args();
    let interconnects: [(&str, Interconnect); 4] = [
        ("through-PS 1 ms (evaluated)", Interconnect::zcu106_default()),
        ("through-PS 20 ms (frame DMA)", Interconnect::ThroughPs { per_transfer: SimDuration::from_millis(20) }),
        ("ring NoC (50us + 10us/hop)", Interconnect::ring_noc_default()),
        (
            "ring NoC, slow PS ingress",
            Interconnect::RingNoc {
                base: SimDuration::from_micros(50),
                per_hop: SimDuration::from_micros(10),
                ps_transfer: SimDuration::from_millis(20),
            },
        ),
    ];

    // Part 1: a deep pipelined chain (OpticalFlow, batch 30) where every
    // item crosses eight inter-task edges — the NoC's best case.
    println!("Interconnect study — Nimblock with placement affinity\n");
    println!("1. Single ImageCompression, batch 30 (17-22 ms stages: transfer cost bites):\n");
    let mut table = TextTable::new(vec!["interconnect", "response (s)"]);
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{ArrivalEvent, EventSequence};
    let solo = EventSequence::new(vec![ArrivalEvent::new(
        benchmarks::image_compression(),
        30,
        Priority::Medium,
        SimTime::ZERO,
    )]);
    for (label, interconnect) in interconnects {
        let report = Testbed::new(NimblockScheduler::default())
            .with_interconnect(interconnect)
            .run(&solo);
        table.row(vec![
            label.to_owned(),
            fmt3(report.records()[0].response_time().as_secs_f64()),
        ]);
    }
    print!("{table}");

    // Part 2: the stress mix.
    println!("\n2. Stress mix ({sequences} sequences x {EVENTS_PER_SEQUENCE} events), mean response (s):\n");
    let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, Scenario::Stress);
    let mut table = TextTable::new(vec!["interconnect", "mean response (s)"]);
    for (label, interconnect) in interconnects {
        let mut total = 0.0;
        for seq in &suite {
            total += Testbed::new(NimblockScheduler::default())
                .with_interconnect(interconnect)
                .run(seq)
                .mean_response_secs();
        }
        table.row(vec![label.to_owned(), fmt3(total / suite.len() as f64)]);
    }
    print!("{table}");

    // Part 3: fixed batch ablation at the NoC's sweet spot.
    println!("\n3. Fixed batch 30, stress delays — per-item transfer cost exposed:\n");
    let seq = fixed_batch_sequence(BASE_SEED, EVENTS_PER_SEQUENCE, 30, SimDuration::from_millis(175));
    let mut table = TextTable::new(vec!["interconnect", "mean response (s)"]);
    for (label, interconnect) in interconnects {
        let report = Testbed::new(NimblockScheduler::default())
            .with_interconnect(interconnect)
            .run(&seq);
        table.row(vec![label.to_owned(), fmt3(report.mean_response_secs())]);
    }
    print!("{table}");
    println!(
        "\nExpected: the NoC shaves the per-item transfer cost off every pipelined edge;\nthe gap versus through-PS widens as the PS path slows, and placement affinity\nkeeps NoC hops short."
    );
}
