//! Future-work experiment (paper §7): fine-grained preemption on a
//! checkpoint-capable overlay versus the evaluated batch-preemption.
//!
//! Sweeps the checkpoint-save cost and reports high-priority deadline
//! violations and mean high-priority response time on a stress stimulus.

use nimblock_bench::{sequences_from_args, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_app::Priority;
use nimblock_core::{NimblockConfig, NimblockScheduler, Testbed};
use nimblock_metrics::{fmt3, violation_rate, Report, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::{deadline, generate_suite, EventSequence, Scenario};

const RECONFIG: SimDuration = SimDuration::from_millis(80);

fn high_prio_mean(reports: &[Report]) -> f64 {
    let samples: Vec<f64> = reports
        .iter()
        .flat_map(Report::records)
        .filter(|r| r.priority == Priority::High)
        .map(|r| r.response_time().as_secs_f64())
        .collect();
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn tight_violations(reports: &[Report], suite: &[EventSequence], ds: f64) -> f64 {
    let mut violated = 0.0;
    let mut total = 0.0;
    for (report, seq) in reports.iter().zip(suite) {
        let high = report
            .records()
            .iter()
            .filter(|r| r.priority == Priority::High)
            .count() as f64;
        violated += high
            * violation_rate(report, Some(Priority::High), |i| {
                Some(deadline::deadline_for(&seq.events()[i], ds, RECONFIG))
            });
        total += high;
    }
    violated / total
}

fn main() {
    let sequences = sequences_from_args();
    let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, Scenario::Stress);
    println!(
        "Fine-grained preemption (paper §7 future work) vs batch-preemption\n(stress test, {sequences} sequences x {EVENTS_PER_SEQUENCE} events, high-priority applications)\n"
    );
    let mut table = TextTable::new(vec![
        "overlay / policy",
        "viol @ Ds=1",
        "viol @ Ds=2",
        "mean high-prio resp (s)",
        "preemptions",
    ]);

    // Baseline overlay: batch-preemption only.
    {
        let reports: Vec<Report> = suite
            .iter()
            .map(|s| Testbed::new(NimblockScheduler::default()).run(s))
            .collect();
        let preemptions: u32 = reports
            .iter()
            .flat_map(Report::records)
            .map(|r| r.preemptions)
            .sum();
        table.row(vec![
            "batch-preemption (evaluated overlay)".into(),
            fmt3(tight_violations(&reports, &suite, 1.0)),
            fmt3(tight_violations(&reports, &suite, 2.0)),
            fmt3(high_prio_mean(&reports)),
            preemptions.to_string(),
        ]);
    }

    // Checkpoint-capable overlay at several checkpoint costs.
    for checkpoint_ms in [0u64, 10, 80, 500] {
        let reports: Vec<Report> = suite
            .iter()
            .map(|s| {
                Testbed::new(NimblockScheduler::with_config(NimblockConfig::fine_preemption()))
                    .with_fine_preemption(SimDuration::from_millis(checkpoint_ms))
                    .run(s)
            })
            .collect();
        let preemptions: u32 = reports
            .iter()
            .flat_map(Report::records)
            .map(|r| r.preemptions)
            .sum();
        table.row(vec![
            format!("fine, checkpoint {checkpoint_ms} ms"),
            fmt3(tight_violations(&reports, &suite, 1.0)),
            fmt3(tight_violations(&reports, &suite, 2.0)),
            fmt3(high_prio_mean(&reports)),
            preemptions.to_string(),
        ]);
    }
    print!("{table}");
    println!(
        "\nExpected: fine-grained preemption lowers high-priority response times and tight-\ndeadline violations further than batch-preemption (the paper's motivation for the\nfuture-work overlay), with diminishing benefit as the checkpoint cost grows."
    );
    ResultWriter::new("fine_preempt", BASE_SEED, sequences)
        .table("fine-grained preemption vs batch-preemption (stress test)", &table)
        .note("sweeps the checkpoint-save cost of a checkpoint-capable overlay")
        .write();
}
