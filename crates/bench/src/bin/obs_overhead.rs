//! Telemetry overhead: proves the disabled-instrumentation hot path is
//! essentially free.
//!
//! Every hypervisor and policy carries *detached* instrument handles —
//! plain relaxed atomics never exported anywhere — so an uninstrumented
//! run pays one atomic add per event instead of any branch-and-allocate
//! machinery. This bench runs a fig5-style stimulus three ways:
//!
//! * `plain`: the ordinary testbed (detached handles, no monitor),
//! * `metered`: the same run with a live registry attached
//!   (`Testbed::with_metrics`, which also times scheduler decisions),
//! * `monitored`: the same run with a continuous monitor attached
//!   (`Testbed::with_monitor`: tumbling windows, flight recorder, SLO
//!   rules — the `--timeseries-out` machinery),
//! * `traced`: the same run with schedule tracing on, for scale.
//!
//! and prints the relative overhead of each over `plain`. The micro half
//! measures the raw per-op cost of the registry and monitor instruments.
//!
//! `--gate <pct>` is the CI tripwire for detached-sink overhead. A
//! testbed without `with_monitor` skips every monitor emission point
//! with one `Option` check, so the truly detached path *is* the plain
//! run — there is no slower variant to compare it against. What CAN
//! regress is the plumbing between an emission point and the sinks:
//! the gate attaches a *sink-less* monitor (zero window, ring, and
//! alert capacity, no rules — nothing is retained) and checks that
//! every lock, branch, and lazily-skipped string stays under `<pct>`
//! percent of the plain run. A failure means monitoring work leaked
//! outside the attached-monitor guards (an eager `format!`, a scan on
//! the no-op path). Both configurations are measured as interleaved
//! best-of-N pairs so machine drift cancels instead of biasing one
//! side.
//!
//! ```sh
//! cargo run --release -p nimblock-bench --bin obs_overhead [-- --quick] [--gate 4]
//! ```

use nimblock_bench::micro::Runner;
use nimblock_bench::BASE_SEED;
use nimblock_core::{NimblockScheduler, Testbed};
use nimblock_obs::{parse_rules, Counter, Histogram, MonitorConfig, MonitorHandle, Registry};
use nimblock_workload::{generate, EventSequence, Scenario};
use std::time::Instant;

/// Samples per end-to-end configuration; the median is reported.
const RUN_SAMPLES: usize = 9;

fn sample_count() -> usize {
    if std::env::args().any(|a| a == "--quick") {
        3
    } else {
        RUN_SAMPLES
    }
}

fn samples_secs(samples: usize, mut f: impl FnMut()) -> Vec<f64> {
    // One discarded warmup run.
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times
}

fn median_secs(f: impl FnMut()) -> f64 {
    let times = samples_secs(sample_count(), f);
    times[times.len() / 2]
}

/// The monitor configuration the end-to-end comparisons attach: default
/// 10 ms windows with one rule from each SLO family, so the window
/// aggregation, flight recorder, and burn-rate engine are all live.
fn monitor_config() -> MonitorConfig {
    MonitorConfig::default().rules(
        parse_rules(&[
            "util>=20%".into(),
            "queue<=8".into(),
            "resp:med:p95<=200ms".into(),
            "burn:low:p50<=500ms@3/5".into(),
        ])
        .expect("bench SLO rules parse"),
    )
}

fn run_plain(events: &EventSequence) {
    let report = Testbed::new(NimblockScheduler::default()).run(events);
    assert_eq!(report.records().len(), 20);
}

fn run_monitored(events: &EventSequence) {
    let monitor = MonitorHandle::new(monitor_config(), 0);
    let report = Testbed::new(NimblockScheduler::default())
        .with_monitor(monitor)
        .run(events);
    assert_eq!(report.records().len(), 20);
}

/// A monitor that retains nothing: the emission points pay their locks
/// and branches, the sinks drop everything on the floor. The marginal
/// cost of this run over plain is the plumbing ceiling the gate bounds.
fn sinkless_config() -> MonitorConfig {
    let mut config = MonitorConfig::default();
    config.window_capacity = 0;
    config.ring_capacity = 0;
    config
}

fn run_sinkless(events: &EventSequence) {
    let monitor = MonitorHandle::new(sinkless_config(), 0);
    let report = Testbed::new(NimblockScheduler::default())
        .with_monitor(monitor)
        .run(events);
    assert_eq!(report.records().len(), 20);
}

/// Interleaved pairs for the gate: enough that the median per-pair
/// ratio is stable on a noisy shared host, still well under a minute.
const GATE_PAIRS: usize = 25;

/// `--gate <pct>`: interleaved plain/sink-less pairs, gating the
/// *median of the per-pair ratios* — the two runs of a pair are
/// adjacent in time, so host drift hits both sides of each ratio
/// equally, and the median discards the pairs a noisy neighbour ruins.
/// Exits nonzero past the allowance.
fn gate(events: &EventSequence, max_pct: f64) -> Result<(), String> {
    // Warm both paths once.
    run_plain(events);
    run_sinkless(events);
    let mut ratios = Vec::with_capacity(GATE_PAIRS);
    let mut best_plain = f64::INFINITY;
    let mut best_sinkless = f64::INFINITY;
    for _ in 0..GATE_PAIRS {
        let start = Instant::now();
        run_plain(events);
        let plain = start.elapsed().as_secs_f64();
        let start = Instant::now();
        run_sinkless(events);
        let sinkless = start.elapsed().as_secs_f64();
        ratios.push(sinkless / plain);
        best_plain = best_plain.min(plain);
        best_sinkless = best_sinkless.min(sinkless);
    }
    ratios.sort_by(f64::total_cmp);
    let pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    println!(
        "monitor gate: plain {:.3} ms, sink-less monitor {:.3} ms (best of {} pairs), \
         median pair ratio {:+.2}% (allowance {:.1}%)",
        best_plain * 1e3,
        best_sinkless * 1e3,
        GATE_PAIRS,
        pct,
        max_pct
    );
    if pct > max_pct {
        return Err(format!(
            "detached-sink monitor plumbing costs {pct:+.2}% over the plain hot \
             path (allowance {max_pct:.1}%) — monitoring work is leaking outside \
             the attached-monitor guards"
        ));
    }
    Ok(())
}

fn main() {
    // --- End-to-end: a fig5-style run (one stress sequence, 20 events). ---
    let events = generate(BASE_SEED, 20, Scenario::Stress);

    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--gate") {
        let max_pct: f64 = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--gate needs a percent allowance, e.g. --gate 4");
        if let Err(message) = gate(&events, max_pct) {
            eprintln!("obs_overhead gate: FAIL — {message}");
            std::process::exit(1);
        }
        return;
    }

    let plain = median_secs(|| run_plain(&events));
    let metered = median_secs(|| {
        let report = Testbed::new(NimblockScheduler::default())
            .with_metrics(Registry::new())
            .run(&events);
        assert_eq!(report.records().len(), 20);
    });
    let monitored = median_secs(|| run_monitored(&events));
    let traced = median_secs(|| {
        let (report, _trace) = Testbed::new(NimblockScheduler::default()).run_traced(&events);
        assert_eq!(report.records().len(), 20);
    });

    let overhead = |x: f64| (x / plain - 1.0) * 100.0;
    println!("End-to-end fig5-style run (median of repeated runs):");
    println!("  plain     (detached handles): {:>8.3} ms", plain * 1e3);
    println!(
        "  metered   (registry attached): {:>7.3} ms  ({:+.2}% vs plain)",
        metered * 1e3,
        overhead(metered)
    );
    println!(
        "  monitored (windows+SLO rules): {:>7.3} ms  ({:+.2}% vs plain)",
        monitored * 1e3,
        overhead(monitored)
    );
    println!(
        "  traced    (schedule tracing):  {:>7.3} ms  ({:+.2}% vs plain)",
        traced * 1e3,
        overhead(traced)
    );
    println!(
        "\nThe disabled-instrumentation path IS the plain path: without a\n\
         registry every handle is a detached atomic, and without a monitor\n\
         every emission point is one Option check, so there is no separate\n\
         \"instrumentation off\" build to compare against. The metered and\n\
         monitored runs above bound the full cost of live telemetry.\n"
    );

    // --- Micro: raw per-op instrument costs. ---
    let mut runner = Runner::new("obs_overhead");
    let detached = Counter::detached();
    runner.bench("counter_inc_detached", || detached.inc());
    let registry = Registry::new();
    let registered = registry.counter("bench_counter_total", "bench");
    runner.bench("counter_inc_registered", || registered.inc());
    let histogram = Histogram::detached();
    let mut v = 0u64;
    runner.bench("histogram_observe_detached", || {
        v = v.wrapping_add(2_654_435_761);
        histogram.observe(v >> 32);
    });
    let registered_h = registry.histogram("bench_histogram", "bench");
    runner.bench("histogram_observe_registered", || {
        v = v.wrapping_add(2_654_435_761);
        registered_h.observe(v >> 32);
    });
    runner.bench("render_prometheus", || registry.render_prometheus());
    // Monitor hot-path ops through the shared handle (lock included),
    // advancing virtual time so window rollover cost is in the number.
    let monitor = MonitorHandle::new(monitor_config(), 4);
    let mut now = 0u64;
    runner.bench("monitor_sample_attached", || {
        now = now.wrapping_add(137);
        monitor.with(|m| m.sample(now, 3, 3, 2));
    });
    runner.bench("monitor_arrival_attached", || {
        now = now.wrapping_add(137);
        monitor.with(|m| m.on_arrival(now));
    });
    runner.finish();
}
