//! Telemetry overhead: proves the disabled-instrumentation hot path is
//! essentially free.
//!
//! Every hypervisor and policy carries *detached* instrument handles —
//! plain relaxed atomics never exported anywhere — so an uninstrumented
//! run pays one atomic add per event instead of any branch-and-allocate
//! machinery. This bench runs a fig5-style stimulus three ways:
//!
//! * `plain`: the ordinary testbed (detached handles),
//! * `metered`: the same run with a live registry attached
//!   (`Testbed::with_metrics`, which also times scheduler decisions),
//! * `traced`: the same run with schedule tracing on, for scale.
//!
//! and asserts that `plain` is within 2% of itself across configurations —
//! concretely, prints the relative overhead of `metered` and `traced` over
//! `plain`. The micro half measures the raw per-op cost of the registry
//! instruments.
//!
//! ```sh
//! cargo run --release -p nimblock-bench --bin obs_overhead [-- --quick]
//! ```

use nimblock_bench::micro::Runner;
use nimblock_bench::BASE_SEED;
use nimblock_core::{NimblockScheduler, Testbed};
use nimblock_obs::{Counter, Histogram, Registry};
use nimblock_workload::{generate, Scenario};
use std::time::Instant;

/// Samples per end-to-end configuration; the median is reported.
const RUN_SAMPLES: usize = 9;

fn median_secs(mut f: impl FnMut()) -> f64 {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 3 } else { RUN_SAMPLES };
    // One discarded warmup run.
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() {
    // --- End-to-end: a fig5-style run (one stress sequence, 20 events). ---
    let events = generate(BASE_SEED, 20, Scenario::Stress);

    let plain = median_secs(|| {
        let report = Testbed::new(NimblockScheduler::default()).run(&events);
        assert_eq!(report.records().len(), 20);
    });
    let metered = median_secs(|| {
        let report = Testbed::new(NimblockScheduler::default())
            .with_metrics(Registry::new())
            .run(&events);
        assert_eq!(report.records().len(), 20);
    });
    let traced = median_secs(|| {
        let (report, _trace) = Testbed::new(NimblockScheduler::default()).run_traced(&events);
        assert_eq!(report.records().len(), 20);
    });

    let overhead = |x: f64| (x / plain - 1.0) * 100.0;
    println!("End-to-end fig5-style run (median of repeated runs):");
    println!("  plain   (detached handles): {:>8.3} ms", plain * 1e3);
    println!(
        "  metered (registry attached): {:>7.3} ms  ({:+.2}% vs plain)",
        metered * 1e3,
        overhead(metered)
    );
    println!(
        "  traced  (schedule tracing):  {:>7.3} ms  ({:+.2}% vs plain)",
        traced * 1e3,
        overhead(traced)
    );
    println!(
        "\nThe disabled-instrumentation path IS the plain path: without a\n\
         registry every handle is a detached atomic, so there is no separate\n\
         \"instrumentation off\" build to compare against. The metered run\n\
         above bounds the full cost of live telemetry.\n"
    );

    // --- Micro: raw per-op instrument costs. ---
    let mut runner = Runner::new("obs_overhead");
    let detached = Counter::detached();
    runner.bench("counter_inc_detached", || detached.inc());
    let registry = Registry::new();
    let registered = registry.counter("bench_counter_total", "bench");
    runner.bench("counter_inc_registered", || registered.inc());
    let histogram = Histogram::detached();
    let mut v = 0u64;
    runner.bench("histogram_observe_detached", || {
        v = v.wrapping_add(2_654_435_761);
        histogram.observe(v >> 32);
    });
    let registered_h = registry.histogram("bench_histogram", "bench");
    runner.bench("histogram_observe_registered", || {
        v = v.wrapping_add(2_654_435_761);
        registered_h.observe(v >> 32);
    });
    runner.bench("render_prometheus", || registry.render_prometheus());
    runner.finish();
}
