//! Figure 6: tail (95th / 99th percentile) response-time reduction under
//! the three congestion conditions, normalized to the baseline.
//!
//! Response times of all events of all sequences pool into one
//! distribution per scheduler; the tail reduction at percentile `p` is
//! `p-th percentile of baseline / p-th percentile of the scheduler`.

use nimblock_bench::{
    pooled_response_secs, sequences_from_args, Policy, ResultWriter, BASE_SEED,
    EVENTS_PER_SEQUENCE,
};
use nimblock_metrics::{fmt3, percentile, TextTable};
use nimblock_workload::{generate_suite, Scenario};

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Figure 6: tail response time reduction vs baseline ({sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let mut table = TextTable::new(vec![
        "Scheduler", "Std-95", "Std-99", "Str-95", "Str-99", "RT-95", "RT-99",
    ]);
    let mut rows: Vec<Vec<String>> = Policy::SHARING
        .iter()
        .map(|p| vec![p.name().to_owned()])
        .collect();
    for scenario in Scenario::ALL {
        let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, scenario);
        let base = pooled_response_secs(&Policy::NoSharing.run_suite(&suite));
        for (policy, row) in Policy::SHARING.iter().zip(&mut rows) {
            let pooled = pooled_response_secs(&policy.run_suite(&suite));
            for p in [95.0, 99.0] {
                row.push(format!(
                    "{}x",
                    fmt3(percentile(&base, p) / percentile(&pooled, p))
                ));
            }
        }
    }
    for row in rows {
        table.row(row);
    }
    print!("{table}");
    println!(
        "\nPaper: Nimblock best at the 95th percentile in every scenario; lowest 99th\npercentile under real-time (4.8x/6.6x better than RR/FCFS, 1.2x better than PREMA);\nin the stress test at p99, FCFS/PREMA edge out Nimblock/RR by ~1.1x."
    );
    ResultWriter::new("fig6", BASE_SEED, sequences)
        .table("tail response-time reduction vs baseline (p95/p99)", &table)
        .note("paper: Nimblock best at p95 in every scenario")
        .write();
}
