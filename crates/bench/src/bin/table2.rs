//! Table 2: benchmark sizes (tasks and task-graph edges).

use nimblock_app::benchmarks;
use nimblock_metrics::TextTable;

fn main() {
    println!("Table 2: Benchmark Sizes\n");
    let mut table = TextTable::new(vec![
        "Benchmark",
        "Number of Tasks",
        "Number of Edges",
        "Depth",
        "Max Width",
        "Σ latency (s)",
    ]);
    for app in benchmarks::all() {
        let graph = app.graph();
        table.row(vec![
            app.name().to_owned(),
            graph.task_count().to_string(),
            graph.edge_count().to_string(),
            graph.depth().to_string(),
            graph.max_width().to_string(),
            format!("{:.3}", graph.total_latency().as_secs_f64()),
        ]);
    }
    print!("{table}");
    println!("\nPaper values (tasks/edges): LN 3/2, AN 38/184, IMGC 6/5, OF 9/8, 3DR 3/2, DR 3/2.");
    println!("Depth, width, and calibrated latencies are model detail beyond the paper's table.");
}
