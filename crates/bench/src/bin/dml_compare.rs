//! Nimblock versus a DML-style static planner (paper §6.2).
//!
//! DML solves slot allocation with an offline ILP but "relies on prior
//! knowledge of applications and their arrival times, and it disregards
//! application priority levels". The static planner here gets that prior
//! knowledge (the full stimulus) and an exact ILP split; Nimblock gets
//! neither. The paper's argument is that dynamic allocation competes
//! without the oracle — this experiment measures by how much.

use nimblock_bench::{sequences_from_args, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_core::{DmlStaticScheduler, NimblockScheduler, Testbed};
use nimblock_metrics::{fmt3, harmonic_speedup, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::{generate_suite, Scenario};

fn main() {
    let sequences = sequences_from_args();
    let reconfig = SimDuration::from_millis(80);
    println!(
        "Nimblock (no prior knowledge) vs DML-style static ILP planner (full oracle)\n({sequences} sequences x {EVENTS_PER_SEQUENCE} events per scenario)\n"
    );
    let mut table = TextTable::new(vec![
        "scenario",
        "DML-static mean (s)",
        "Nimblock mean (s)",
        "Nimblock vs DML",
    ]);
    for scenario in Scenario::ALL {
        let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, scenario);
        let mut dml_mean = 0.0;
        let mut nb_mean = 0.0;
        let mut speedups = Vec::new();
        for seq in &suite {
            let planner = DmlStaticScheduler::plan(seq, 10, reconfig);
            let dml = Testbed::new(planner).run(seq);
            let nb = Testbed::new(NimblockScheduler::default()).run(seq);
            dml_mean += dml.mean_response_secs() / suite.len() as f64;
            nb_mean += nb.mean_response_secs() / suite.len() as f64;
            speedups.push(harmonic_speedup(&dml, &nb));
        }
        let mean_speedup = speedups.iter().sum::<f64>() / speedups.len() as f64;
        table.row(vec![
            scenario.name().to_owned(),
            fmt3(dml_mean),
            fmt3(nb_mean),
            format!("{}x", fmt3(mean_speedup)),
        ]);
    }
    print!("{table}");
    println!(
        "\nExpected: Nimblock matches or beats the static plan (>= ~1x) because static\nallocations cannot adapt when arrivals overlap unpredictably, and the planner\ncannot preempt; the oracle's only edge is avoiding reallocation churn."
    );
    ResultWriter::new("dml_compare", BASE_SEED, sequences)
        .table("Nimblock (no prior knowledge) vs DML-style static ILP planner", &table)
        .note("the static planner sees the full stimulus in advance; Nimblock does not")
        .write();
}
