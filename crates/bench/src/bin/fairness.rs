//! Fairness study (beyond the paper): how evenly each policy degrades its
//! applications, measured as Jain's index over per-application slowdowns
//! (response time over isolated single-slot latency).
//!
//! Nimblock's token thresholding exists to bound degradation per
//! application; pure shortest-job-first maximizes mean performance by
//! starving the long tail. This bench quantifies that trade.

use nimblock_bench::{sequences_from_args, Policy, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_core::{SjfScheduler, Testbed};
use nimblock_metrics::{fmt3, slowdown_fairness, slowdowns, Report, Summary};
use nimblock_sim::SimDuration;
use nimblock_workload::{generate_suite, EventSequence, Scenario};

const RECONFIG: SimDuration = SimDuration::from_millis(80);

fn isolated(seq: &EventSequence) -> impl Fn(usize) -> Option<SimDuration> + '_ {
    move |i| {
        let event = &seq.events()[i];
        Some(event.app().single_slot_latency(event.batch_size(), RECONFIG))
    }
}

fn analyze(reports: &[Report], suite: &[EventSequence]) -> (f64, f64, f64) {
    let mut fairness_sum = 0.0;
    let mut all: Vec<f64> = Vec::new();
    for (report, seq) in reports.iter().zip(suite) {
        fairness_sum += slowdown_fairness(report, isolated(seq));
        all.extend(slowdowns(report, isolated(seq)));
    }
    let summary = Summary::of(&all);
    (fairness_sum / reports.len() as f64, summary.mean, summary.max)
}

fn main() {
    let sequences = sequences_from_args();
    let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, Scenario::Stress);
    println!(
        "Fairness: Jain's index over per-application slowdowns\n(stress test, {sequences} sequences x {EVENTS_PER_SEQUENCE} events; slowdown = response / single-slot latency)\n"
    );
    let mut table = nimblock_metrics::TextTable::new(vec![
        "scheduler",
        "Jain fairness",
        "mean slowdown",
        "worst slowdown",
    ]);
    for policy in Policy::MAIN {
        let reports = policy.run_suite(&suite);
        let (fairness, mean, worst) = analyze(&reports, &suite);
        table.row(vec![
            policy.name().to_owned(),
            fmt3(fairness),
            fmt3(mean),
            fmt3(worst),
        ]);
    }
    // SJF: the starvation-prone contrast.
    let reports: Vec<Report> = suite
        .iter()
        .map(|s| Testbed::new(SjfScheduler::new()).run(s))
        .collect();
    let (fairness, mean, worst) = analyze(&reports, &suite);
    table.row(vec!["SJF".into(), fmt3(fairness), fmt3(mean), fmt3(worst)]);
    print!("{table}");
    println!(
        "\nReading the table: slowdown normalizes waits by isolated latency, so SJF looks\nexcellent here — long applications absorb its delays invisibly in this unit\n(their isolated latencies are huge). The contrasts that matter: Nimblock posts\nFCFS-level fairness with the lowest preemption-enabled mean slowdown; RR\'s\nper-slot head-of-line blocking craters both; the baseline is uniformly slow\n(fair in misery, Jain over slowdowns still low because queue position skews)."
    );
    ResultWriter::new("fairness", BASE_SEED, sequences)
        .table("Jain's index over per-application slowdowns (stress test)", &table)
        .note("slowdown = response time / isolated single-slot latency")
        .write();
}
