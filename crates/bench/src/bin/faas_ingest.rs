//! Front-door ingest benchmark and regression gate.
//!
//! Measurement mode (default) streams a million invocations through the
//! serving front door at several worker-thread counts, verifies every
//! count is byte-identical to the sequential oracle, and writes
//! `results/BENCH_faas.json`:
//!
//! ```text
//! cargo run --release --bin faas_ingest
//! cargo run --release --bin faas_ingest -- --quick --out /tmp/fresh.json
//! ```
//!
//! Gate mode measures fresh numbers and compares them to a committed
//! baseline, printing a delta table and exiting nonzero on a regression
//! (this is what `scripts/bench_gate.sh` runs as the last CI stage):
//!
//! ```text
//! cargo run --release --bin faas_ingest -- --quick \
//!     --gate results/BENCH_faas.json --tolerance 15
//! ```

use std::process::ExitCode;

use nimblock_bench::faas_ingest::{
    gate_compare, measure, render_gate_table, BenchReport, IngestConfig,
};

struct Options {
    config: IngestConfig,
    out: String,
    gate: Option<String>,
    tolerance: f64,
}

fn parse_options() -> Result<Options, String> {
    let mut config = IngestConfig::default();
    let mut out = "results/BENCH_faas.json".to_owned();
    let mut gate = None;
    let mut tolerance = 0.15;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                config.invocations = 100_000;
                config.repeats = 1;
            }
            "--invocations" => {
                config.invocations = value(&mut i, "--invocations")?
                    .parse()
                    .map_err(|e| format!("--invocations: {e}"))?;
            }
            "--threads" => {
                let list = value(&mut i, "--threads")?;
                config.threads = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
                if config.threads.is_empty() {
                    return Err("--threads needs at least one entry".to_owned());
                }
            }
            "--repeats" => {
                config.repeats =
                    value(&mut i, "--repeats")?.parse().map_err(|e| format!("--repeats: {e}"))?;
            }
            "--seed" => {
                config.seed = value(&mut i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = value(&mut i, "--out")?,
            "--gate" => gate = Some(value(&mut i, "--gate")?),
            "--tolerance" => {
                let pct: f64 =
                    value(&mut i, "--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?;
                tolerance = pct / 100.0;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(Options { config, out, gate, tolerance })
}

fn load_baseline(path: &str) -> Result<BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    nimblock_ser::from_str(&text).map_err(|e| format!("malformed baseline {path}: {e}"))
}

fn main() -> ExitCode {
    let mut options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("faas_ingest: {message}");
            eprintln!(
                "usage: faas_ingest [--quick] [--invocations N] [--threads A,B,..] \
                 [--repeats N] [--seed N] [--out FILE] [--gate BASELINE --tolerance PCT]"
            );
            return ExitCode::FAILURE;
        }
    };

    // In gate mode the fresh run must use the baseline's exact workload —
    // seed, invocation count, threads — or the invocations/sec comparison
    // is meaningless. Only `--repeats` stays caller-chosen.
    let baseline = match &options.gate {
        Some(path) => match load_baseline(path) {
            Ok(baseline) => {
                options.config.seed = baseline.seed;
                options.config.invocations = baseline.invocations;
                let threads: Vec<usize> =
                    baseline.measurements.iter().map(|m| m.threads).collect();
                if !threads.is_empty() {
                    options.config.threads = threads;
                }
                Some(baseline)
            }
            Err(message) => {
                eprintln!("faas_ingest: {message}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!(
        "faas_ingest: invocations={} threads={:?} repeats={} seed={}",
        options.config.invocations,
        options.config.threads,
        options.config.repeats,
        options.config.seed,
    );
    let fresh = measure(&options.config);
    println!(
        "host_cpus={} deterministic={} peak_buffered={}",
        fresh.host_cpus, fresh.deterministic, fresh.peak_buffered
    );
    for m in &fresh.measurements {
        println!(
            "  threads={:<3} wall={:>8.3}s  {:>12.1} invocations/s  speedup {:.2}x",
            m.threads, m.wall_secs, m.events_per_sec, m.speedup
        );
    }

    if let Some(baseline) = baseline {
        let outcome = gate_compare(&baseline, &fresh, options.tolerance);
        print!("{}", render_gate_table(&outcome, options.tolerance));
        if outcome.pass {
            println!("bench gate: PASS");
            ExitCode::SUCCESS
        } else {
            println!("bench gate: FAIL (set NIMBLOCK_SKIP_BENCH_GATE=1 to bypass)");
            ExitCode::FAILURE
        }
    } else {
        let json = nimblock_ser::to_string_pretty(&fresh);
        if let Some(parent) = std::path::Path::new(&options.out).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("faas_ingest: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(&options.out, json + "\n") {
            eprintln!("faas_ingest: cannot write {}: {e}", options.out);
            return ExitCode::FAILURE;
        }
        println!("wrote {}", options.out);
        ExitCode::SUCCESS
    }
}
