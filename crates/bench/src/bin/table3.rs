//! Table 3: benchmark latencies and response times.
//!
//! Stimulus (paper §5.5): a sequence with a fixed batch size of 5 where
//! events have 500 ms of delay between them. The top half reports the
//! baseline's per-benchmark execution and response times; the bottom half
//! reports response times under the four sharing schedulers.

use std::collections::BTreeMap;

use nimblock_bench::{sequences_from_args, Policy, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_metrics::{fmt3, Report, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::fixed_batch_sequence;

const BENCHMARK_ORDER: [&str; 6] = [
    "LeNet",
    "AlexNet",
    "ImageCompression",
    "OpticalFlow",
    "3DRendering",
    "DigitRecognition",
];

/// Mean of `f` over every record of `app` pooled across reports.
fn per_benchmark_mean(
    reports: &[Report],
    app: &str,
    f: impl Fn(&nimblock_metrics::ResponseRecord) -> f64,
) -> f64 {
    let samples: Vec<f64> = reports
        .iter()
        .flat_map(Report::records)
        .filter(|r| r.app_name == app)
        .map(&f)
        .collect();
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn main() {
    let sequences = sequences_from_args();
    let suite: Vec<_> = (0..sequences)
        .map(|i| {
            fixed_batch_sequence(
                BASE_SEED + i as u64,
                EVENTS_PER_SEQUENCE,
                5,
                SimDuration::from_millis(500),
            )
        })
        .collect();

    let mut by_policy: BTreeMap<&str, Vec<Report>> = BTreeMap::new();
    for policy in Policy::MAIN {
        by_policy.insert(policy.name(), policy.run_suite(&suite));
    }

    println!("Table 3 (top): baseline execution and response times, batch 5, 500 ms delay\n");
    let mut top = TextTable::new(vec!["Benchmark", "Execution Time (s)", "Response Time (s)"]);
    let baseline = &by_policy["NoSharing"];
    for app in BENCHMARK_ORDER {
        top.row(vec![
            app.to_owned(),
            fmt3(per_benchmark_mean(baseline, app, |r| {
                r.execution_time().as_secs_f64()
            })),
            fmt3(per_benchmark_mean(baseline, app, |r| {
                r.response_time().as_secs_f64()
            })),
        ]);
    }
    print!("{top}");
    println!(
        "\nPaper (exec): LN 0.73, AN 65.44, IMGC 0.56, OF 22.91, 3DR 1.55, DR 984.23 — the\ncalibration target. Response times depend on each random sequence's queueing."
    );

    println!("\nTable 3 (bottom): mean response times (s) under the sharing schedulers\n");
    let mut bottom = TextTable::new(vec!["Benchmark", "Nimblock", "PREMA", "RR", "FCFS"]);
    for app in BENCHMARK_ORDER {
        bottom.row(vec![
            app.to_owned(),
            fmt3(per_benchmark_mean(&by_policy["Nimblock"], app, |r| {
                r.response_time().as_secs_f64()
            })),
            fmt3(per_benchmark_mean(&by_policy["PREMA"], app, |r| {
                r.response_time().as_secs_f64()
            })),
            fmt3(per_benchmark_mean(&by_policy["RR"], app, |r| {
                r.response_time().as_secs_f64()
            })),
            fmt3(per_benchmark_mean(&by_policy["FCFS"], app, |r| {
                r.response_time().as_secs_f64()
            })),
        ]);
    }
    print!("{bottom}");
    println!(
        "\nExpected shape: sharing schedulers crush the baseline for short benchmarks;\nNimblock generally best for longer-running benchmarks (paper §5.5)."
    );
}
