//! Figure 11: AlexNet throughput under different batch sizes, for the
//! Nimblock ablation variants.
//!
//! Throughput is batch items retired per second of response time,
//! averaged over the AlexNet events of the Figure 9 stimulus.

use nimblock_bench::{sequences_from_args, Policy, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_metrics::{fmt3, Report, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::fixed_batch_sequence;

const STRESS_DELAY: SimDuration = SimDuration::from_millis(175);
const BATCH_SIZES: [u32; 7] = [1, 5, 10, 15, 20, 25, 30];

fn alexnet_throughput(reports: &[Report]) -> f64 {
    let samples: Vec<f64> = reports
        .iter()
        .flat_map(Report::records)
        .filter(|r| r.app_name == "AlexNet")
        .map(|r| f64::from(r.batch_size) / r.response_time().as_secs_f64())
        .collect();
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Figure 11: AlexNet throughput (items/s) vs batch size under the ablations\n(stress delays, {sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let mut header = vec!["Variant".to_owned()];
    header.extend(BATCH_SIZES.iter().map(|b| format!("batch {b}")));
    let mut table = TextTable::new(header);
    let mut rows: Vec<Vec<String>> = Policy::ABLATION
        .iter()
        .map(|p| vec![p.name().to_owned()])
        .collect();
    for batch in BATCH_SIZES {
        let suite: Vec<_> = (0..sequences)
            .map(|i| {
                fixed_batch_sequence(
                    BASE_SEED + i as u64,
                    EVENTS_PER_SEQUENCE,
                    batch,
                    STRESS_DELAY,
                )
            })
            .collect();
        for (policy, row) in Policy::ABLATION.iter().zip(&mut rows) {
            let reports = policy.run_suite(&suite);
            row.push(fmt3(alexnet_throughput(&reports)));
        }
    }
    for row in rows {
        table.row(row);
    }
    print!("{table}");
    println!(
        "\nPaper: the pipelining variants (Nimblock, NimblockNoPreempt) sustain the highest\nAlexNet throughput; gains flatten past batch ~5 — even small batches use the\navailable resources well."
    );
    ResultWriter::new("fig11", BASE_SEED, sequences)
        .table("AlexNet throughput (items/s) vs batch size under the ablations", &table)
        .note("stress delays, fixed batch sizes")
        .write();
}
