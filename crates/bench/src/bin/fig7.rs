//! Figure 7 (a/b/c): deadline failure rate of high-priority applications
//! across a sweep of deadline scaling factors `D_s`.
//!
//! An application's deadline is `D_s` times its single-slot latency; it
//! fails if its response time exceeds the deadline (paper §5.4). The sweep
//! runs `D_s` from 1 to 20 at 0.25 steps; this binary prints a coarse
//! sample of each curve plus the tightest-deadline rates and 10% error
//! points.

use nimblock_bench::{sequences_from_args, Policy, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_app::Priority;
use nimblock_metrics::{fmt3, violation_rate, DeadlineCurve, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::{deadline, generate_suite, EventSequence, Scenario};

const RECONFIG: SimDuration = SimDuration::from_millis(80);

/// Builds the failure-rate curve of one policy over a suite.
fn curve(policy: Policy, suite: &[EventSequence]) -> DeadlineCurve {
    let reports = policy.run_suite(suite);
    let points = deadline::ds_values()
        .into_iter()
        .map(|ds| {
            // Pool violations over all sequences: weighted by each
            // sequence's number of high-priority events.
            let mut violated = 0.0;
            let mut total = 0.0;
            for (report, seq) in reports.iter().zip(suite) {
                let high = report
                    .records()
                    .iter()
                    .filter(|r| r.priority == Priority::High)
                    .count() as f64;
                let rate = violation_rate(report, Some(Priority::High), |i| {
                    Some(deadline::deadline_for(&seq.events()[i], ds, RECONFIG))
                });
                violated += rate * high;
                total += high;
            }
            (ds, if total == 0.0 { 0.0 } else { violated / total })
        })
        .collect();
    DeadlineCurve::new(policy.name(), points)
}

fn main() {
    let sequences = sequences_from_args();
    let sample_ds = [1.0, 1.75, 2.5, 3.5, 5.0, 6.0, 8.0, 10.0, 15.0, 20.0];
    let mut writer = ResultWriter::new("fig7", BASE_SEED, sequences);
    for (scenario, figure) in Scenario::ALL.iter().zip(["7a", "7b", "7c"]) {
        println!(
            "\nFigure {figure}: deadline failure rate, {} test ({sequences} sequences, high-priority apps)\n",
            scenario.name()
        );
        let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, *scenario);
        let mut header: Vec<String> = vec!["Scheduler".into()];
        header.extend(sample_ds.iter().map(|ds| format!("Ds={ds}")));
        header.push("10% err pt".into());
        let mut table = TextTable::new(header);
        for policy in Policy::MAIN {
            let curve = curve(policy, &suite);
            let mut row = vec![policy.name().to_owned()];
            for ds in sample_ds {
                let rate = curve
                    .points()
                    .iter()
                    .find(|&&(d, _)| (d - ds).abs() < 1e-9)
                    .map(|&(_, r)| r)
                    .unwrap_or(f64::NAN);
                row.push(fmt3(rate));
            }
            row.push(
                curve
                    .error_point(0.10)
                    .map(|ds| format!("Ds={ds}"))
                    .unwrap_or_else(|| "never".to_owned()),
            );
            table.row(row);
        }
        print!("{table}");
        writer.table(
            &format!("figure {figure}: deadline failure rate, {} test", scenario.name()),
            &table,
        );
    }
    println!(
        "\nPaper: Nimblock has the lowest violation rate at the tightest deadlines in all\nscenarios (49% lower than PREMA/RR in standard, 44% in stress, 14.3% in real-time)\nand reaches the 10% error point earlier than PREMA (stress: Ds=3.5 vs 6.0;\nreal-time: Ds=4.25 vs 5.75)."
    );
    writer
        .note("paper: Nimblock lowest violation rate at the tightest deadlines in all scenarios")
        .write();
}
