//! Table 1: slot and static region utilization on the ZCU106 overlay.
//!
//! Prints the modelled per-slot resource inventories, their min–max ranges
//! (the form Table 1 reports), and the static region.

use nimblock_fpga::{zcu106, Resources};
use nimblock_metrics::TextTable;

fn row(label: &str, r: &Resources) -> Vec<String> {
    vec![
        label.to_owned(),
        r.dsp.to_string(),
        r.lut.to_string(),
        r.ff.to_string(),
        r.carry.to_string(),
        r.ramb18.to_string(),
        r.ramb36.to_string(),
        r.iobuf.to_string(),
    ]
}

fn main() {
    println!("Table 1: Slot and Static Region Utilization (ZCU106 overlay model)\n");
    let mut table = TextTable::new(vec![
        "Region", "DSP", "LUT", "FF", "Carry", "RAMB18", "RAMB36", "IOBuf",
    ]);
    table.row(vec![
        "Slot (range)".to_owned(),
        format!("{}-{}", zcu106::SLOT_MIN.dsp, zcu106::SLOT_MAX.dsp),
        format!("{}-{}", zcu106::SLOT_MIN.lut, zcu106::SLOT_MAX.lut),
        format!("{}-{}", zcu106::SLOT_MIN.ff, zcu106::SLOT_MAX.ff),
        format!("{}-{}", zcu106::SLOT_MIN.carry, zcu106::SLOT_MAX.carry),
        format!("{}-{}", zcu106::SLOT_MIN.ramb18, zcu106::SLOT_MAX.ramb18),
        format!("{}-{}", zcu106::SLOT_MIN.ramb36, zcu106::SLOT_MAX.ramb36),
        format!("{}-{}", zcu106::SLOT_MIN.iobuf, zcu106::SLOT_MAX.iobuf),
    ]);
    table.row(row("Static", &zcu106::STATIC_REGION));
    for i in 0..zcu106::SLOT_COUNT {
        table.row(row(&format!("slot#{i}"), &zcu106::slot_resources(i)));
    }
    print!("{table}");
    println!(
        "\n{} slots; partial reconfiguration {} ms ({} MiB bitstream over the CAP); scheduling interval {} ms",
        zcu106::SLOT_COUNT,
        zcu106::RECONFIG_MILLIS,
        zcu106::SLOT_BITSTREAM_BYTES >> 20,
        zcu106::SCHEDULING_INTERVAL_MILLIS,
    );
    println!("Paper values: slot ranges and static region reproduced exactly (Table 1).");
}
