//! Figure 10: AlexNet response time under different batch sizes, for the
//! Nimblock ablation variants.
//!
//! Uses the Figure 9 stimulus (stress delays, fixed batch sizes) and
//! reports the mean response time of the AlexNet events only.

use nimblock_bench::{sequences_from_args, Policy, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_metrics::{fmt3, Report, TextTable};
use nimblock_sim::SimDuration;
use nimblock_workload::fixed_batch_sequence;

const STRESS_DELAY: SimDuration = SimDuration::from_millis(175);
const BATCH_SIZES: [u32; 7] = [1, 5, 10, 15, 20, 25, 30];

fn alexnet_mean_response(reports: &[Report]) -> f64 {
    let samples: Vec<f64> = reports
        .iter()
        .flat_map(Report::records)
        .filter(|r| r.app_name == "AlexNet")
        .map(|r| r.response_time().as_secs_f64())
        .collect();
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Figure 10: AlexNet mean response time (s) vs batch size under the ablations\n(stress delays, {sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let mut header = vec!["Variant".to_owned()];
    header.extend(BATCH_SIZES.iter().map(|b| format!("batch {b}")));
    let mut table = TextTable::new(header);
    let mut rows: Vec<Vec<String>> = Policy::ABLATION
        .iter()
        .map(|p| vec![p.name().to_owned()])
        .collect();
    for batch in BATCH_SIZES {
        let suite: Vec<_> = (0..sequences)
            .map(|i| {
                fixed_batch_sequence(
                    BASE_SEED + i as u64,
                    EVENTS_PER_SEQUENCE,
                    batch,
                    STRESS_DELAY,
                )
            })
            .collect();
        for (policy, row) in Policy::ABLATION.iter().zip(&mut rows) {
            let reports = policy.run_suite(&suite);
            row.push(fmt3(alexnet_mean_response(&reports)));
        }
    }
    for row in rows {
        table.row(row);
    }
    print!("{table}");
    println!(
        "\nPaper: removing pipelining hurts AlexNet the most; NimblockNoPipe and\nNimblockNoPreemptNoPipe overlap; at batch 1 all variants coincide; response time\ngrows sublinearly in batch size thanks to multi-slot parallelism."
    );
    ResultWriter::new("fig10", BASE_SEED, sequences)
        .table("AlexNet mean response time (s) vs batch size under the ablations", &table)
        .note("stress delays, fixed batch sizes")
        .write();
}
