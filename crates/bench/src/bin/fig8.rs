//! Figure 8: run time, partial-reconfiguration time, and wait time as a
//! proportion of total application time under the Nimblock scheduler.
//!
//! Run time sums every task's item run times (tasks overlap, so it can
//! exceed execution time); PR time sums the application's partial
//! reconfigurations; wait time is arrival to first launch.

use std::collections::BTreeMap;

use nimblock_bench::{sequences_from_args, Policy, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_metrics::TextTable;
use nimblock_workload::{generate_suite, Scenario};

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Figure 8: run / PR / wait shares of total application time under Nimblock\n(standard scenario, {sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, Scenario::Standard);
    let reports = Policy::Nimblock.run_suite(&suite);

    // Pool the three components per benchmark.
    let mut sums: BTreeMap<String, (f64, f64, f64, f64)> = BTreeMap::new();
    for record in reports.iter().flat_map(|r| r.records()) {
        let entry = sums.entry(record.app_name.clone()).or_default();
        entry.0 += record.run_time.as_secs_f64();
        entry.1 += record.reconfig_time.as_secs_f64();
        entry.2 += record.wait_time().as_secs_f64();
        entry.3 += record.response_time().as_secs_f64();
    }

    let mut table = TextTable::new(vec![
        "Benchmark", "Run %", "PR %", "Wait %", "mean total (s)",
    ]);
    for (app, (run, pr, wait, total)) in &sums {
        // Normalize by run+pr+wait (the figure shows proportions of the
        // application's accounted time).
        let denom = run + pr + wait;
        table.row(vec![
            app.clone(),
            format!("{:.1}", 100.0 * run / denom),
            format!("{:.1}", 100.0 * pr / denom),
            format!("{:.1}", 100.0 * wait / denom),
            format!("{:.1}", total / (sequences as f64)),
        ]);
    }
    print!("{table}");
    println!(
        "\nExpected shape (paper Figure 8): PR time is a large share for short benchmarks\n(LeNet, ImageCompression, 3DRendering) and negligible for DigitRecognition;\nlong-running benchmarks are dominated by run time; wait time varies with queueing."
    );
    ResultWriter::new("fig8", BASE_SEED, sequences)
        .table("run / PR / wait shares of total application time under Nimblock", &table)
        .note("standard scenario; shares normalized by run+PR+wait")
        .write();
}
