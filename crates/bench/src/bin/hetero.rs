//! Heterogeneous-overlay study (the Hetero-ViTAL direction the paper cites
//! in §6.1): does trading four uniform slots for two double-size slots help
//! a workload whose tasks have mixed footprints?
//!
//! Tasks that fit only the large slots contend for them; the schedulers'
//! fit-aware placement handles the constraint, and the comparison shows
//! what the partitioning choice costs.

use nimblock_bench::{sequences_from_args, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_app::{AppSpec, Priority, TaskGraphBuilder, TaskSpec};
use nimblock_core::{NimblockScheduler, Testbed};
use nimblock_fpga::{zcu106, DeviceConfig, Resources};
use nimblock_metrics::{fmt3, TextTable};
use nimblock_sim::{SimDuration, SimTime};
use nimblock_workload::{generate, ArrivalEvent, EventSequence, Scenario};
use rand_shim::mix;

/// A tiny deterministic mixer so the stimulus stays reproducible without
/// pulling `rand` into this binary.
mod rand_shim {
    pub fn mix(seed: u64, index: u64) -> u64 {
        let mut x = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x ^= x >> 31;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 29)
    }
}

fn double(r: Resources) -> Resources {
    Resources {
        dsp: r.dsp * 2,
        lut: r.lut * 2,
        ff: r.ff * 2,
        carry: r.carry * 2,
        ramb18: r.ramb18 * 2,
        ramb36: r.ramb36 * 2,
        iobuf: r.iobuf * 2,
    }
}

/// 8 uniform slots vs 4 small + 2 large (same total fabric).
fn overlays() -> [(&'static str, DeviceConfig); 2] {
    let small = zcu106::SLOT_MIN;
    let large = double(small);
    [
        (
            "uniform (8 small slots)",
            DeviceConfig::zcu106().with_slot_resources(vec![small; 8]),
        ),
        (
            "hetero (4 small + 2 large)",
            DeviceConfig::zcu106()
                .with_slot_resources(vec![small, small, small, small, large, large]),
        ),
    ]
}

/// A pipeline whose middle stage needs a large slot.
fn wide_middle_app(latency_scale: u64) -> AppSpec {
    let big = Resources {
        dsp: zcu106::SLOT_MIN.dsp + 20,
        ..zcu106::SLOT_MIN
    };
    let mut builder = TaskGraphBuilder::new();
    let a = builder.add_task(TaskSpec::new("pre", SimDuration::from_millis(20 * latency_scale)));
    let b = builder.add_task(
        TaskSpec::new("wide", SimDuration::from_millis(40 * latency_scale)).with_resources(big),
    );
    let c = builder.add_task(TaskSpec::new("post", SimDuration::from_millis(15 * latency_scale)));
    builder.add_chain(&[a, b, c]).expect("fresh chain");
    AppSpec::new("wide-middle", builder.build().expect("valid chain"))
}

/// Mixed stimulus: wide-middle apps interleaved with small-task apps.
fn stimulus(seed: u64, events: usize) -> EventSequence {
    let mut list = Vec::new();
    for i in 0..events as u64 {
        let roll = mix(seed, i);
        let app = if roll.is_multiple_of(3) {
            wide_middle_app(1 + (roll >> 8) % 3)
        } else {
            nimblock_app::benchmarks::image_compression()
        };
        let batch = 2 + (roll >> 16) % 6;
        let priority = Priority::ALL[(roll >> 24) as usize % 3];
        list.push(ArrivalEvent::new(
            app,
            batch as u32,
            priority,
            SimTime::from_millis(i * 200),
        ));
    }
    EventSequence::new(list)
}

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Heterogeneous overlays: mixed-footprint workload, Nimblock ({sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let mut table = TextTable::new(vec![
        "overlay",
        "mixed workload mean (s)",
        "uniform workload mean (s)",
    ]);
    for (label, config) in overlays() {
        // Mixed footprints: every third app needs a large slot. On the
        // uniform overlay the wide task fits no slot, and the hypervisor
        // rejects it at admission — report that instead of a number.
        let mut mixed_total = 0.0;
        let mut rejected = false;
        for i in 0..sequences {
            let seq = stimulus(BASE_SEED + i as u64, EVENTS_PER_SEQUENCE);
            let config_for_run = config.clone();
            let outcome = std::panic::catch_unwind(move || {
                Testbed::new(NimblockScheduler::default())
                    .with_device_config(config_for_run)
                    .run(&seq)
                    .mean_response_secs()
            });
            match outcome {
                Ok(mean) => mixed_total += mean,
                Err(_) => {
                    rejected = true;
                    break;
                }
            }
        }
        // Uniform small footprints (the paper's benchmarks) for contrast.
        let mut uniform_total = 0.0;
        for i in 0..sequences {
            let seq = generate(BASE_SEED + i as u64, EVENTS_PER_SEQUENCE, Scenario::Stress);
            uniform_total += Testbed::new(NimblockScheduler::default())
                .with_device_config(config.clone())
                .run(&seq)
                .mean_response_secs();
        }
        table.row(vec![
            label.to_owned(),
            if rejected {
                "rejected at admission".to_owned()
            } else {
                fmt3(mixed_total / sequences as f64)
            },
            fmt3(uniform_total / sequences as f64),
        ]);
    }
    print!("{table}");
    println!(
        "\nReading: the uniform small-slot overlay cannot host the wide tasks at all —\nthe hypervisor rejects them at admission — while the hetero overlay runs the\nmixed workload; the uniform-footprint column shows what the hetero partition\ncosts when nobody needs the large slots (fewer schedulable slots)."
    );
}
