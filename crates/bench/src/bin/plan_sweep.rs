//! Capacity-planner benchmark and regression gate.
//!
//! Measurement mode (default) records an overloaded serving day as a
//! compact trace, times exact replay against the analytical estimator
//! over a `boards=1..32` sweep, and writes two seed-stamped artifacts:
//! the gate baseline `results/BENCH_plan.json` and, through the shared
//! [`nimblock_bench::ResultWriter`], the human-readable tables as
//! `results/plan_sweep.json`:
//!
//! ```text
//! cargo run --release --bin plan_sweep
//! cargo run --release --bin plan_sweep -- --quick --out /tmp/fresh.json
//! ```
//!
//! Gate mode measures fresh numbers and compares them to a committed
//! baseline, printing a delta table and exiting nonzero on a regression
//! (this is what `scripts/bench_gate.sh` runs as the fourth baseline):
//!
//! ```text
//! cargo run --release --bin plan_sweep -- --quick \
//!     --gate results/BENCH_plan.json --tolerance 15
//! ```

use std::process::ExitCode;

use nimblock_bench::plan_sweep::{
    gate_compare, measure, render_gate_table, BenchReport, PlanBenchConfig,
};
use nimblock_bench::ResultWriter;
use nimblock_metrics::TextTable;

struct Options {
    config: PlanBenchConfig,
    out: String,
    gate: Option<String>,
    tolerance: f64,
}

fn parse_options() -> Result<Options, String> {
    let mut config = PlanBenchConfig::default();
    let mut out = "results/BENCH_plan.json".to_owned();
    let mut gate = None;
    let mut tolerance = 0.15;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                config.invocations = 20_000;
                config.repeats = 1;
            }
            "--invocations" => {
                config.invocations = value(&mut i, "--invocations")?
                    .parse()
                    .map_err(|e| format!("--invocations: {e}"))?;
            }
            "--repeats" => {
                config.repeats =
                    value(&mut i, "--repeats")?.parse().map_err(|e| format!("--repeats: {e}"))?;
            }
            "--seed" => {
                config.seed = value(&mut i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--out" => out = value(&mut i, "--out")?,
            "--gate" => gate = Some(value(&mut i, "--gate")?),
            "--tolerance" => {
                let pct: f64 =
                    value(&mut i, "--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?;
                tolerance = pct / 100.0;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(Options { config, out, gate, tolerance })
}

fn load_baseline(path: &str) -> Result<BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    nimblock_ser::from_str(&text).map_err(|e| format!("malformed baseline {path}: {e}"))
}

fn stage_table(report: &BenchReport) -> TextTable {
    let mut table = TextTable::new(vec!["stage", "wall (s)", "records/s"]);
    for m in &report.measurements {
        table.row(vec![
            m.stage.clone(),
            format!("{:.3}", m.wall_secs),
            format!("{:.1}", m.records_per_sec),
        ]);
    }
    table
}

fn main() -> ExitCode {
    let mut options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("plan_sweep: {message}");
            eprintln!(
                "usage: plan_sweep [--quick] [--invocations N] [--repeats N] [--seed N] \
                 [--out FILE] [--gate BASELINE --tolerance PCT]"
            );
            return ExitCode::FAILURE;
        }
    };

    // In gate mode the fresh run must use the baseline's exact workload —
    // seed and invocation count — or the records/sec comparison is
    // meaningless. Only `--repeats` stays caller-chosen.
    let baseline = match &options.gate {
        Some(path) => match load_baseline(path) {
            Ok(baseline) => {
                options.config.seed = baseline.seed;
                options.config.invocations = baseline.invocations;
                Some(baseline)
            }
            Err(message) => {
                eprintln!("plan_sweep: {message}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!(
        "plan_sweep: invocations={} repeats={} seed={}",
        options.config.invocations, options.config.repeats, options.config.seed,
    );
    let fresh = measure(&options.config);
    println!(
        "scenarios={} deterministic={} estimator_speedup={:.1}x",
        fresh.scenarios, fresh.deterministic, fresh.estimator_speedup
    );
    let table = stage_table(&fresh);
    print!("{table}");

    if let Some(baseline) = baseline {
        let outcome = gate_compare(&baseline, &fresh, options.tolerance);
        print!("{}", render_gate_table(&outcome, options.tolerance));
        if outcome.pass {
            println!("bench gate: PASS");
            ExitCode::SUCCESS
        } else {
            println!("bench gate: FAIL (set NIMBLOCK_SKIP_BENCH_GATE=1 to bypass)");
            ExitCode::FAILURE
        }
    } else {
        let json = nimblock_ser::to_string_pretty(&fresh);
        if let Some(parent) = std::path::Path::new(&options.out).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("plan_sweep: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Err(e) = std::fs::write(&options.out, json + "\n") {
            eprintln!("plan_sweep: cannot write {}: {e}", options.out);
            return ExitCode::FAILURE;
        }
        println!("wrote {}", options.out);
        // The human-readable tables, seed-stamped like every experiment.
        let mut writer = ResultWriter::new("plan_sweep", fresh.seed, 1);
        writer
            .table("planner stage throughput", &table)
            .note(&format!(
                "estimator walks one record {:.1}x faster than exact simulation \
                 across a {}-scenario boards sweep",
                fresh.estimator_speedup, fresh.scenarios
            ));
        writer.write();
        ExitCode::SUCCESS
    }
}
