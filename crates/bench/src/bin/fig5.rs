//! Figure 5: relative response-time reduction under the three congestion
//! conditions, normalized to the no-sharing baseline.
//!
//! For each scenario, every scheduler runs the same 10 sequences of 20
//! random events; the reduction is the harmonic-mean per-event speedup
//! (see `nimblock_metrics::harmonic_speedup` for why), alongside the
//! ratio of mean response times for reference.

use nimblock_bench::{sequences_from_args, Policy, ResultWriter, BASE_SEED, EVENTS_PER_SEQUENCE};
use nimblock_metrics::{fmt3, harmonic_speedup, TextTable};
use nimblock_workload::{generate_suite, Scenario};

fn main() {
    let sequences = sequences_from_args();
    println!(
        "Figure 5: relative response time reduction vs baseline ({sequences} sequences x {EVENTS_PER_SEQUENCE} events)\n"
    );
    let mut table = TextTable::new(vec![
        "Scheduler",
        "standard",
        "stress",
        "real-time",
        "std mean_rt(s)",
        "str mean_rt(s)",
        "rt mean_rt(s)",
    ]);
    let mut rows: Vec<Vec<String>> = Policy::SHARING
        .iter()
        .map(|p| vec![p.name().to_owned()])
        .collect();
    let mut mean_cols: Vec<Vec<String>> = vec![Vec::new(); Policy::SHARING.len()];

    for scenario in Scenario::ALL {
        let suite = generate_suite(BASE_SEED, sequences, EVENTS_PER_SEQUENCE, scenario);
        let baselines = Policy::NoSharing.run_suite(&suite);
        for ((policy, row), means) in Policy::SHARING.iter().zip(&mut rows).zip(&mut mean_cols) {
            let reports = policy.run_suite(&suite);
            // Harmonic speedup over the pooled per-event distribution.
            let mut inverse = Vec::new();
            for (base, rep) in baselines.iter().zip(&reports) {
                let h = harmonic_speedup(base, rep);
                // Re-derive the per-sequence inverse mean so sequences pool
                // with equal per-event weight.
                let n = rep.records().len() as f64;
                if h > 0.0 {
                    inverse.push((n, n / h));
                }
            }
            let total_events: f64 = inverse.iter().map(|&(n, _)| n).sum();
            let sum_inverse: f64 = inverse.iter().map(|&(_, s)| s).sum();
            let reduction = total_events / sum_inverse;
            row.push(format!("{}x", fmt3(reduction)));
            let mean_rt = reports.iter().map(|r| r.mean_response_secs()).sum::<f64>()
                / reports.len() as f64;
            means.push(fmt3(mean_rt));
        }
    }
    for (row, means) in rows.into_iter().zip(mean_cols) {
        let mut cells = row;
        cells.extend(means);
        table.row(cells);
    }
    print!("{table}");
    println!(
        "\nPaper: standard Nimblock 4.7x (1.4x over PREMA); stress Nimblock 5.7x, PREMA 4.8x,\nRR 3.7x, FCFS 4.3x; real-time Nimblock 3.1x, PREMA 2.4x, RR/FCFS slightly below baseline."
    );
    println!("Expected shape: Nimblock best in every scenario; PREMA and FCFS next; RR behind.");
    ResultWriter::new("fig5", BASE_SEED, sequences)
        .table("relative response-time reduction vs no-sharing baseline", &table)
        .note("paper: standard Nimblock 4.7x; stress Nimblock 5.7x; real-time Nimblock 3.1x")
        .write();
}
