//! Micro-benchmarks of the discrete-event engine: the hypervisor's
//! scheduling overhead rides on this substrate, so its throughput bounds
//! how fast whole experiments run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};

fn event_queue_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000u64, 10_000] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(format!("push_pop_{n}"), |b| {
            b.iter_batched(
                EventQueue::<u64>::new,
                |mut queue| {
                    // Reverse-ordered pushes are the worst case for a heap.
                    for i in (0..n).rev() {
                        queue.push(SimTime::from_micros(i), i);
                    }
                    while queue.pop().is_some() {}
                    queue
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

struct ChainHandler {
    remaining: u64,
}

impl Handler<u64> for ChainHandler {
    fn handle(&mut self, now: SimTime, event: u64, queue: &mut EventQueue<u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.push(now + SimDuration::from_micros(1), event + 1);
        }
    }
}

fn simulation_event_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    group.bench_function("chained_events_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(ChainHandler { remaining: n });
            sim.queue_mut().push(SimTime::ZERO, 0);
            sim.run();
            sim.steps()
        });
    });
    group.finish();
}

criterion_group!(benches, event_queue_push_pop, simulation_event_rate);
criterion_main!(benches);
