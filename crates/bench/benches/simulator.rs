//! Micro-benchmarks of the discrete-event engine: the hypervisor's
//! scheduling overhead rides on this substrate, so its throughput bounds
//! how fast whole experiments run.
//!
//! Run with `cargo bench --bench simulator` (add `--quick` for a smoke
//! pass). Results land in `results/micro/event_queue.json` and
//! `results/micro/simulation.json`.

use nimblock_bench::micro::Runner;
use nimblock_sim::{EventQueue, Handler, SimDuration, SimTime, Simulation};

fn event_queue_push_pop() {
    let mut runner = Runner::new("event_queue");
    for &n in &[1_000u64, 10_000] {
        runner.bench_elements(&format!("push_pop_{n}"), n, || {
            let mut queue = EventQueue::<u64>::new();
            // Reverse-ordered pushes are the worst case for a heap.
            for i in (0..n).rev() {
                queue.push(SimTime::from_micros(i), i);
            }
            while queue.pop().is_some() {}
            queue
        });
    }
    runner.finish();
}

struct ChainHandler {
    remaining: u64,
}

impl Handler<u64> for ChainHandler {
    fn handle(&mut self, now: SimTime, event: u64, queue: &mut EventQueue<u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.push(now + SimDuration::from_micros(1), event + 1);
        }
    }
}

fn simulation_event_rate() {
    let mut runner = Runner::new("simulation");
    let n = 100_000u64;
    runner.bench_elements("chained_events_100k", n, || {
        let mut sim = Simulation::new(ChainHandler { remaining: n });
        sim.queue_mut().push(SimTime::ZERO, 0);
        sim.run();
        sim.steps()
    });
    runner.finish();
}

fn main() {
    event_queue_push_pop();
    simulation_event_rate();
}
