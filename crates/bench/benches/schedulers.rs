//! Whole-testbed throughput per scheduling policy: how long the hypervisor
//! takes (host time) to simulate a fixed ten-event stress sequence. This is
//! the "scheduler overhead" measure — the paper argues Nimblock must stay
//! cheap enough to run on the embedded ARM core without an ILP solver on
//! the critical path.

use criterion::{criterion_group, criterion_main, Criterion};

use nimblock_bench::Policy;
use nimblock_workload::{generate, Scenario};

fn policy_run_time(c: &mut Criterion) {
    let events = generate(1, 10, Scenario::Stress);
    let mut group = c.benchmark_group("testbed_run");
    group.sample_size(10);
    for policy in [
        Policy::NoSharing,
        Policy::Fcfs,
        Policy::RoundRobin,
        Policy::Prema,
        Policy::Nimblock,
        Policy::NimblockNoPipe,
    ] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| policy.run(&events));
        });
    }
    group.finish();
}

fn nimblock_admission_cost(c: &mut Criterion) {
    // Admission runs the goal-number saturation analysis (cached per
    // benchmark/batch); measure a cold single-app run to capture it.
    let mut group = c.benchmark_group("admission");
    group.sample_size(10);
    group.bench_function("single_alexnet_batch20", |b| {
        use nimblock_app::{benchmarks, Priority};
        use nimblock_sim::SimTime;
        use nimblock_workload::{ArrivalEvent, EventSequence};
        let events = EventSequence::new(vec![ArrivalEvent::new(
            benchmarks::alexnet(),
            20,
            Priority::High,
            SimTime::ZERO,
        )]);
        b.iter(|| Policy::Nimblock.run(&events));
    });
    group.finish();
}

criterion_group!(benches, policy_run_time, nimblock_admission_cost);
criterion_main!(benches);
