//! Whole-testbed throughput per scheduling policy: how long the hypervisor
//! takes (host time) to simulate a fixed ten-event stress sequence. This is
//! the "scheduler overhead" measure — the paper argues Nimblock must stay
//! cheap enough to run on the embedded ARM core without an ILP solver on
//! the critical path.
//!
//! Run with `cargo bench --bench schedulers` (add `--quick` for a smoke
//! pass). Results land in `results/micro/testbed_run.json` and
//! `results/micro/admission.json`.

use nimblock_bench::micro::Runner;
use nimblock_bench::Policy;
use nimblock_workload::{generate, Scenario};

fn policy_run_time() {
    let events = generate(1, 10, Scenario::Stress);
    let mut runner = Runner::new("testbed_run");
    for policy in [
        Policy::NoSharing,
        Policy::Fcfs,
        Policy::RoundRobin,
        Policy::Prema,
        Policy::Nimblock,
        Policy::NimblockNoPipe,
    ] {
        runner.bench(policy.name(), || policy.run(&events));
    }
    runner.finish();
}

fn nimblock_admission_cost() {
    // Admission runs the goal-number saturation analysis (cached per
    // benchmark/batch); measure a cold single-app run to capture it.
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{ArrivalEvent, EventSequence};
    let events = EventSequence::new(vec![ArrivalEvent::new(
        benchmarks::alexnet(),
        20,
        Priority::High,
        SimTime::ZERO,
    )]);
    let mut runner = Runner::new("admission");
    runner.bench("single_alexnet_batch20", || Policy::Nimblock.run(&events));
    runner.finish();
}

fn main() {
    policy_run_time();
    nimblock_admission_cost();
}
