//! Micro-benchmarks of the ILP solver and the saturation analysis — the
//! paper keeps this work off the scheduling critical path; these numbers
//! show why that is the right call and how cheap the estimator is.
//!
//! Run with `cargo bench --bench ilp` (add `--quick` for a smoke pass).
//! Results land in `results/micro/ilp_solve.json`,
//! `results/micro/estimator_makespan.json`,
//! `results/micro/saturation_analyze.json`, and
//! `results/micro/ilp_slot_split.json`.

use nimblock_app::benchmarks;
use nimblock_bench::micro::Runner;
use nimblock_ilp::{saturation, EstimatorConfig, PipelineEstimator, Problem, Relation, Sense};
use nimblock_sim::SimDuration;

fn knapsack(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| p.add_integer_var(0.0, 1.0, ((i * 7) % 13 + 1) as f64))
        .collect();
    let weights: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, ((i * 5) % 11 + 1) as f64))
        .collect();
    p.add_constraint(&weights, Relation::LessEq, (3 * n) as f64 / 2.0);
    p
}

fn ilp_solver() {
    let mut runner = Runner::new("ilp_solve");
    for n in [8usize, 16, 24] {
        let problem = knapsack(n);
        runner.bench(&format!("knapsack_{n}"), || problem.solve().unwrap());
    }
    runner.finish();
}

fn estimator_makespan() {
    let estimator = PipelineEstimator::new(EstimatorConfig {
        reconfig: SimDuration::from_millis(80),
        pipelining: true,
    });
    let mut runner = Runner::new("estimator_makespan");
    for app in benchmarks::all() {
        runner.bench(app.name(), || estimator.makespan(app.graph(), 20, 10));
    }
    runner.finish();
}

fn saturation_sweep() {
    let mut runner = Runner::new("saturation_analyze");
    for app in [benchmarks::lenet(), benchmarks::alexnet()] {
        runner.bench(app.name(), || {
            saturation::analyze(&app, 20, 10, SimDuration::from_millis(80))
        });
    }
    runner.finish();
}

fn optimal_split() {
    // The exact ILP the rule-based allocator avoids at runtime.
    let curves: Vec<Vec<SimDuration>> = benchmarks::all()
        .iter()
        .map(|app| {
            saturation::analyze(app, 10, 10, SimDuration::from_millis(80))
                .makespans()
                .to_vec()
        })
        .collect();
    let mut runner = Runner::new("ilp_slot_split");
    runner.bench("six_apps_ten_slots", || {
        saturation::optimal_slot_split(&curves, 10).unwrap()
    });
    runner.finish();
}

fn main() {
    ilp_solver();
    estimator_makespan();
    saturation_sweep();
    optimal_split();
}
