//! Micro-benchmarks of the ILP solver and the saturation analysis — the
//! paper keeps this work off the scheduling critical path; these numbers
//! show why that is the right call and how cheap the estimator is.

use criterion::{criterion_group, criterion_main, Criterion};

use nimblock_app::benchmarks;
use nimblock_ilp::{saturation, EstimatorConfig, PipelineEstimator, Problem, Relation, Sense};
use nimblock_sim::SimDuration;

fn knapsack(n: usize) -> Problem {
    let mut p = Problem::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| p.add_integer_var(0.0, 1.0, ((i * 7) % 13 + 1) as f64))
        .collect();
    let weights: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, ((i * 5) % 11 + 1) as f64))
        .collect();
    p.add_constraint(&weights, Relation::LessEq, (3 * n) as f64 / 2.0);
    p
}

fn ilp_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_solve");
    for n in [8usize, 16, 24] {
        let problem = knapsack(n);
        group.bench_function(format!("knapsack_{n}"), |b| {
            b.iter(|| problem.solve().unwrap());
        });
    }
    group.finish();
}

fn estimator_makespan(c: &mut Criterion) {
    let estimator = PipelineEstimator::new(EstimatorConfig {
        reconfig: SimDuration::from_millis(80),
        pipelining: true,
    });
    let mut group = c.benchmark_group("estimator_makespan");
    for app in benchmarks::all() {
        group.bench_function(app.name(), |b| {
            b.iter(|| estimator.makespan(app.graph(), 20, 10));
        });
    }
    group.finish();
}

fn saturation_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation_analyze");
    group.sample_size(20);
    for app in [benchmarks::lenet(), benchmarks::alexnet()] {
        group.bench_function(app.name().to_owned(), |b| {
            b.iter(|| saturation::analyze(&app, 20, 10, SimDuration::from_millis(80)));
        });
    }
    group.finish();
}

fn optimal_split(c: &mut Criterion) {
    // The exact ILP the rule-based allocator avoids at runtime.
    let curves: Vec<Vec<SimDuration>> = benchmarks::all()
        .iter()
        .map(|app| {
            saturation::analyze(app, 10, 10, SimDuration::from_millis(80))
                .makespans()
                .to_vec()
        })
        .collect();
    let mut group = c.benchmark_group("ilp_slot_split");
    group.sample_size(10);
    group.bench_function("six_apps_ten_slots", |b| {
        b.iter(|| saturation::optimal_slot_split(&curves, 10).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    ilp_solver,
    estimator_makespan,
    saturation_sweep,
    optimal_split
);
criterion_main!(benches);
