//! Arrival events and sequences.

use std::sync::Arc;

use nimblock_ser::impl_json_struct;

use nimblock_app::{AppSpec, Priority};
use nimblock_sim::SimTime;

/// The arrival of one application at the hypervisor: which benchmark, how
/// many batch items, at what priority, and when (paper §5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalEvent {
    app: Arc<AppSpec>,
    batch_size: u32,
    priority: Priority,
    arrival: SimTime,
}

impl_json_struct!(ArrivalEvent { app, batch_size, priority, arrival });

impl ArrivalEvent {
    /// Creates an arrival event.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero — an application with nothing to
    /// compute never retires.
    pub fn new(
        app: impl Into<Arc<AppSpec>>,
        batch_size: u32,
        priority: Priority,
        arrival: SimTime,
    ) -> Self {
        assert!(batch_size > 0, "batch size must be at least 1");
        ArrivalEvent {
            app: app.into(),
            batch_size,
            priority,
            arrival,
        }
    }

    /// Returns the application specification.
    pub fn app(&self) -> &Arc<AppSpec> {
        &self.app
    }

    /// Returns the batch size requested by the user.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Returns the priority level.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Returns the arrival time.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }
}

/// An ordered sequence of arrival events — one test stimulus.
///
/// # Example
///
/// ```
/// use nimblock_app::{benchmarks, Priority};
/// use nimblock_sim::SimTime;
/// use nimblock_workload::{ArrivalEvent, EventSequence};
///
/// let seq = EventSequence::new(vec![
///     ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(100)),
///     ArrivalEvent::new(benchmarks::rendering_3d(), 1, Priority::Low, SimTime::ZERO),
/// ]);
/// // Sequences sort themselves by arrival time.
/// assert_eq!(seq.events()[0].app().name(), "3DRendering");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventSequence {
    events: Vec<ArrivalEvent>,
}

impl_json_struct!(EventSequence { events });

impl EventSequence {
    /// Creates a sequence, sorting events by arrival time (stable, so
    /// same-instant events keep their given order).
    pub fn new(mut events: Vec<ArrivalEvent>) -> Self {
        events.sort_by_key(ArrivalEvent::arrival);
        EventSequence { events }
    }

    /// Returns the events in arrival order.
    pub fn events(&self) -> &[ArrivalEvent] {
        &self.events
    }

    /// Returns the number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the sequence has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Returns an iterator over the events.
    pub fn iter(&self) -> std::slice::Iter<'_, ArrivalEvent> {
        self.events.iter()
    }
}

impl FromIterator<ArrivalEvent> for EventSequence {
    fn from_iter<I: IntoIterator<Item = ArrivalEvent>>(iter: I) -> Self {
        EventSequence::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a EventSequence {
    type Item = &'a ArrivalEvent;
    type IntoIter = std::slice::Iter<'a, ArrivalEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::benchmarks;

    #[test]
    fn sequence_sorts_by_arrival() {
        let seq = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::lenet(), 1, Priority::Low, SimTime::from_millis(50)),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::Low, SimTime::ZERO),
        ]);
        assert_eq!(seq.events()[0].batch_size(), 2);
        assert_eq!(seq.len(), 2);
    }

    #[test]
    fn stable_sort_keeps_simultaneous_order() {
        let seq = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::lenet(), 1, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::Low, SimTime::ZERO),
        ]);
        assert_eq!(seq.events()[0].batch_size(), 1);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        ArrivalEvent::new(benchmarks::lenet(), 0, Priority::Low, SimTime::ZERO);
    }

    #[test]
    fn collects_from_iterator() {
        let seq: EventSequence = (0..3)
            .map(|i| {
                ArrivalEvent::new(
                    benchmarks::lenet(),
                    i + 1,
                    Priority::Medium,
                    SimTime::from_millis(u64::from(i) * 10),
                )
            })
            .collect();
        assert_eq!(seq.len(), 3);
        assert!(!seq.is_empty());
    }
}
