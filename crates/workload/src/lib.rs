//! Arrival-event sequences and scenario generators.
//!
//! The paper's testbed (§5.1) reads a sequence of *events* — each the
//! arrival of an application with a batch size, priority level, and arrival
//! time — and releases them to the hypervisor as their arrival times pass.
//! This crate reproduces that stimulus side of the evaluation:
//!
//! * [`ArrivalEvent`] / [`EventSequence`] — the event model,
//! * [`Scenario`] — the three congestion conditions (standard, stress,
//!   real-time) with the paper's inter-arrival delays,
//! * [`generate`] / [`generate_suite`] — seeded random sequences of 20
//!   events over the six-benchmark pool (10 sequences per test),
//! * [`deadline`] — the `D_s` sweep of the deadline analysis (§5.4),
//! * [`ArrivalProcess`] / [`ZipfSampler`] — lazy streaming arrival
//!   processes (steady/diurnal/bursty) and the heavy-tailed function
//!   popularity law behind the serving front door (DESIGN.md §17).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
mod arrival;
mod event;
mod generator;

pub use arrival::{
    ArrivalKind, ArrivalProcess, ArrivalStream, ZipfSampler, DIURNAL_AMPLITUDE,
    DIURNAL_PERIOD_SECS,
};
pub use event::{ArrivalEvent, EventSequence};
pub use generator::{generate, generate_suite, fixed_batch_sequence, poisson_sequence, Scenario, MAX_BATCH_SIZE};
