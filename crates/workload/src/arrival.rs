//! Lazy, streaming arrival processes for the serving front door.
//!
//! The batch generators in [`crate::generate`] materialize a full
//! [`crate::EventSequence`] up front — fine for 20-event paper stimuli,
//! impossible for the ROADMAP's millions-of-invocations serving runs. This
//! module provides the streaming complement: an [`ArrivalProcess`] describes
//! *how* load arrives (steady Poisson, diurnal sinusoid, bursty on/off) and
//! [`ArrivalProcess::stream`] turns it into an [`ArrivalStream`] that yields
//! one inter-arrival gap at a time, in O(1) memory, deterministically per
//! seed. Function popularity is modelled separately by [`ZipfSampler`], the
//! classic heavy-tailed FaaS invocation mix.

use nimblock_prng::Prng;
use nimblock_ser::impl_json_enum_units;
use nimblock_sim::SimDuration;

/// Virtual period of one diurnal cycle, in seconds. Real diurnal cycles are
/// 24 h; the simulator compresses them so that serving runs of tens of
/// virtual seconds still sweep through peak and trough.
pub const DIURNAL_PERIOD_SECS: f64 = 120.0;

/// Fraction by which the diurnal rate swings above/below the mean.
pub const DIURNAL_AMPLITUDE: f64 = 0.6;

/// Mean dwell time in the bursty ON state, seconds.
const BURST_ON_MEAN_SECS: f64 = 2.0;
/// Mean dwell time in the bursty OFF state, seconds.
const BURST_OFF_MEAN_SECS: f64 = 8.0;
/// Rate multiplier while the bursty process is ON.
const BURST_ON_FACTOR: f64 = 3.0;
/// Rate multiplier while the bursty process is OFF. Chosen together with
/// the dwell times so the long-run mean rate stays at the configured rate:
/// (2·3.0 + 8·0.5) / 10 = 1.0.
const BURST_OFF_FACTOR: f64 = 0.5;

/// The shape of an arrival process — how the instantaneous arrival rate
/// evolves over virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrivalKind {
    /// Homogeneous Poisson arrivals at the configured rate.
    Steady,
    /// Sinusoid-modulated Poisson: the rate swings ±[`DIURNAL_AMPLITUDE`]
    /// around the mean over a [`DIURNAL_PERIOD_SECS`] virtual-time cycle.
    Diurnal,
    /// Two-state Markov-modulated Poisson: ON bursts at 3× the mean rate,
    /// OFF troughs at 0.5×, with exponentially distributed dwell times
    /// tuned so the long-run mean equals the configured rate.
    Bursty,
}

impl_json_enum_units!(ArrivalKind { Steady, Diurnal, Bursty });

impl ArrivalKind {
    /// All arrival kinds, in documentation order.
    pub const ALL: [ArrivalKind; 3] =
        [ArrivalKind::Steady, ArrivalKind::Diurnal, ArrivalKind::Bursty];

    /// Returns the kind's CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Steady => "steady",
            ArrivalKind::Diurnal => "diurnal",
            ArrivalKind::Bursty => "bursty",
        }
    }
}

/// A lazily evaluated arrival process: a shape plus a mean rate.
///
/// # Example
///
/// ```
/// use nimblock_workload::ArrivalProcess;
///
/// let process = ArrivalProcess::parse("bursty:500").unwrap();
/// let mut stream = process.stream(42, 1.0);
/// let gap = stream.next_gap();
/// assert!(gap.as_micros() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    rate_per_sec: f64,
}

impl ArrivalProcess {
    /// Creates a process of `kind` with long-run mean `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not positive and finite.
    pub fn new(kind: ArrivalKind, rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        ArrivalProcess { kind, rate_per_sec }
    }

    /// Parses a CLI spec of the form `kind[:rate_per_sec]`, e.g. `steady`,
    /// `diurnal:2000`, `bursty:500`. The rate defaults to 1000/s.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind_str, rate_str) = match spec.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (spec, None),
        };
        let kind = match kind_str {
            "steady" => ArrivalKind::Steady,
            "diurnal" => ArrivalKind::Diurnal,
            "bursty" => ArrivalKind::Bursty,
            other => {
                return Err(format!(
                    "unknown arrival process '{other}' (expected steady, diurnal, or bursty)"
                ))
            }
        };
        let rate = match rate_str {
            None => 1000.0,
            Some(r) => {
                let parsed: f64 = r
                    .parse()
                    .map_err(|_| format!("invalid arrival rate '{r}'"))?;
                if !(parsed.is_finite() && parsed > 0.0) {
                    return Err(format!("arrival rate must be positive, got '{r}'"));
                }
                parsed
            }
        };
        Ok(ArrivalProcess::new(kind, rate))
    }

    /// Returns the process shape.
    pub fn kind(self) -> ArrivalKind {
        self.kind
    }

    /// Returns the long-run mean arrival rate, per virtual second.
    pub fn rate_per_sec(self) -> f64 {
        self.rate_per_sec
    }

    /// Renders the process back to its `kind:rate` CLI spec. The rate
    /// uses Rust's shortest-round-trip float formatting, so
    /// `ArrivalProcess::parse(&p.spec())` reconstructs `p` exactly —
    /// the property recorded traces rely on.
    pub fn spec(self) -> String {
        format!("{}:{}", self.kind.name(), self.rate_per_sec)
    }

    /// Returns the same process with its mean rate multiplied by `factor`
    /// — the load knob behind the goodput/SLO-attainment curve sweep.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(self, factor: f64) -> Self {
        ArrivalProcess::new(self.kind, self.rate_per_sec * factor)
    }

    /// Opens a deterministic gap stream for this process. `load_factor`
    /// scales the mean rate exactly like [`ArrivalProcess::scaled`] but
    /// without rebuilding the process.
    pub fn stream(self, seed: u64, load_factor: f64) -> ArrivalStream {
        let scaled = self.scaled(load_factor);
        ArrivalStream {
            kind: scaled.kind,
            rate: scaled.rate_per_sec,
            rng: Prng::seed_from_u64(seed),
            elapsed_secs: 0.0,
            burst_on: false,
            burst_until_secs: 0.0,
        }
    }
}

/// A lazily evaluated stream of inter-arrival gaps. O(1) state: the
/// process parameters, a PRNG, and the virtual clock — never a list.
#[derive(Debug, Clone)]
pub struct ArrivalStream {
    kind: ArrivalKind,
    rate: f64,
    rng: Prng,
    /// Virtual seconds since the stream opened (drives rate modulation).
    elapsed_secs: f64,
    burst_on: bool,
    burst_until_secs: f64,
}

impl ArrivalStream {
    /// Draws the next inter-arrival gap and advances the stream's virtual
    /// clock. Gaps are clamped to at least one microsecond so the clock
    /// always advances.
    pub fn next_gap(&mut self) -> SimDuration {
        let rate = self.instantaneous_rate();
        // Inverse-CDF exponential gap: -ln(U) / rate.
        let uniform: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let gap_secs = (-uniform.ln() / rate).max(1e-6);
        self.elapsed_secs += gap_secs;
        SimDuration::from_secs_f64(gap_secs).max(SimDuration::from_micros(1))
    }

    /// The instantaneous arrival rate at the stream's current virtual time.
    fn instantaneous_rate(&mut self) -> f64 {
        match self.kind {
            ArrivalKind::Steady => self.rate,
            ArrivalKind::Diurnal => {
                let phase =
                    2.0 * std::f64::consts::PI * self.elapsed_secs / DIURNAL_PERIOD_SECS;
                // Rate stays strictly positive because amplitude < 1.
                self.rate * (1.0 + DIURNAL_AMPLITUDE * phase.sin())
            }
            ArrivalKind::Bursty => {
                while self.elapsed_secs >= self.burst_until_secs {
                    self.burst_on = !self.burst_on;
                    let mean = if self.burst_on {
                        BURST_ON_MEAN_SECS
                    } else {
                        BURST_OFF_MEAN_SECS
                    };
                    let uniform: f64 = self.rng.gen_range(f64::EPSILON..1.0);
                    self.burst_until_secs += -uniform.ln() * mean;
                }
                let factor = if self.burst_on {
                    BURST_ON_FACTOR
                } else {
                    BURST_OFF_FACTOR
                };
                self.rate * factor
            }
        }
    }
}

/// A Zipf popularity sampler over `n` ranked items: item `r` (0-based) is
/// drawn with probability proportional to `1 / (r + 1)^exponent` — the
/// classic heavy-tailed FaaS function-popularity mix.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative (unnormalized) weights; the last entry is the total mass.
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` items with the given exponent (1.0 is the
    /// classic Zipf law; larger skews harder toward rank 0).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is not finite and non-negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf sampler needs at least one item");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "Zipf exponent must be non-negative, got {exponent}"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Draws one item index (0-based rank) from the popularity law.
    pub fn sample(&self, rng: &mut Prng) -> usize {
        let total = *self
            .cumulative
            .last()
            .expect("sampler always has at least one item");
        let point: f64 = rng.gen_range(0.0..total);
        // Linear scan: registries are small (six paper benchmarks); a
        // binary search would obscure more than it saves.
        self.cumulative
            .iter()
            .position(|&c| point < c)
            .unwrap_or(self.cumulative.len() - 1)
    }

    /// Number of items the sampler draws over.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the sampler has exactly one item (it can never be empty).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_parse() {
        for spec in ["steady:0.1", "diurnal:2000", "bursty:512.25", "steady:1000"] {
            let process = ArrivalProcess::parse(spec).unwrap();
            assert_eq!(ArrivalProcess::parse(&process.spec()).unwrap(), process, "{spec}");
        }
        assert_eq!(ArrivalProcess::parse("bursty:2000").unwrap().spec(), "bursty:2000");
    }

    fn mean_gap_secs(process: ArrivalProcess, seed: u64, draws: usize) -> f64 {
        let mut stream = process.stream(seed, 1.0);
        let mut total = SimDuration::ZERO;
        for _ in 0..draws {
            total += stream.next_gap();
        }
        total.as_secs_f64() / draws as f64
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for kind in ArrivalKind::ALL {
            let process = ArrivalProcess::new(kind, 500.0);
            let mut a = process.stream(7, 1.0);
            let mut b = process.stream(7, 1.0);
            for _ in 0..1_000 {
                assert_eq!(a.next_gap(), b.next_gap(), "{} diverged", kind.name());
            }
            let mut c = process.stream(8, 1.0);
            assert!(
                (0..1_000).any(|_| process.stream(7, 1.0).next_gap() != c.next_gap()),
                "different seeds should differ"
            );
        }
    }

    #[test]
    fn steady_mean_gap_matches_rate() {
        let mean = mean_gap_secs(ArrivalProcess::new(ArrivalKind::Steady, 200.0), 3, 20_000);
        assert!((mean - 1.0 / 200.0).abs() < 0.0005, "mean gap {mean}");
    }

    #[test]
    fn bursty_long_run_mean_stays_near_rate() {
        let mean = mean_gap_secs(ArrivalProcess::new(ArrivalKind::Bursty, 200.0), 5, 200_000);
        // Dwell factors are tuned for a long-run mean of 1.0×; allow slack
        // for finite-run burst phasing.
        assert!(
            (mean - 1.0 / 200.0).abs() < 0.002,
            "bursty mean gap {mean} vs expected {}",
            1.0 / 200.0
        );
    }

    #[test]
    fn diurnal_rate_actually_swings() {
        // Gap sizes early in the cycle (peak) should differ from the
        // trough; compare mean gaps over two quarter-cycles.
        let process = ArrivalProcess::new(ArrivalKind::Diurnal, 100.0);
        let mut stream = process.stream(11, 1.0);
        let quarter = DIURNAL_PERIOD_SECS / 4.0;
        let mut peak = Vec::new();
        let mut trough = Vec::new();
        loop {
            let gap = stream.next_gap();
            let t = stream.elapsed_secs;
            if t < quarter {
                // First quarter: sin rises 0 → 1, rate above the mean.
                peak.push(gap.as_secs_f64());
            } else if t >= 2.0 * quarter && t < 3.0 * quarter {
                // Third quarter: sin falls 0 → −1, rate below the mean.
                trough.push(gap.as_secs_f64());
            } else if t >= 3.0 * quarter {
                break;
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&trough) > mean(&peak) * 1.5,
            "trough gaps {} should dwarf peak gaps {}",
            mean(&trough),
            mean(&peak)
        );
    }

    #[test]
    fn load_factor_scales_the_rate() {
        let process = ArrivalProcess::new(ArrivalKind::Steady, 100.0);
        let base = mean_gap_secs(process, 9, 20_000);
        let mut doubled_stream = process.stream(9, 2.0);
        let mut total = SimDuration::ZERO;
        for _ in 0..20_000 {
            total += doubled_stream.next_gap();
        }
        let doubled = total.as_secs_f64() / 20_000.0;
        assert!(
            (base / doubled - 2.0).abs() < 0.1,
            "2× load should halve gaps: base {base}, doubled {doubled}"
        );
    }

    #[test]
    fn parse_accepts_kind_and_rate() {
        let p = ArrivalProcess::parse("diurnal:2500").unwrap();
        assert_eq!(p.kind(), ArrivalKind::Diurnal);
        assert!((p.rate_per_sec() - 2500.0).abs() < f64::EPSILON);
        let default = ArrivalProcess::parse("steady").unwrap();
        assert!((default.rate_per_sec() - 1000.0).abs() < f64::EPSILON);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(ArrivalProcess::parse("tidal").is_err());
        assert!(ArrivalProcess::parse("steady:x").is_err());
        assert!(ArrivalProcess::parse("steady:-5").is_err());
        assert!(ArrivalProcess::parse("steady:0").is_err());
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let sampler = ZipfSampler::new(6, 1.0);
        let mut rng = Prng::seed_from_u64(17);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1], "rank 0 should beat rank 1: {counts:?}");
        assert!(counts[1] > counts[5], "rank 1 should beat rank 5: {counts:?}");
        assert!(counts[5] > 0, "tail ranks must still appear: {counts:?}");
        // Rank 0 carries 1/H_6 ≈ 0.408 of the mass.
        let share = counts[0] as f64 / 60_000.0;
        assert!((share - 0.408).abs() < 0.02, "rank-0 share {share}");
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let sampler = ZipfSampler::new(4, 0.0);
        let mut rng = Prng::seed_from_u64(23);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 40_000.0;
            assert!((share - 0.25).abs() < 0.02, "uniform share {share}");
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(ArrivalKind::Steady.name(), "steady");
        assert_eq!(ArrivalKind::Diurnal.name(), "diurnal");
        assert_eq!(ArrivalKind::Bursty.name(), "bursty");
    }
}
