//! Deadline sweeps for the service-level analysis (paper §5.4).
//!
//! An application's deadline is `D_s` times its *single-slot latency* (its
//! latency on one slot with no contention). The paper sweeps `D_s` from 1
//! to 20 at 0.25 intervals and reports failure rates for high-priority
//! applications.

use nimblock_sim::SimDuration;

use crate::ArrivalEvent;

/// The lowest deadline scaling factor of the sweep (the tightest deadline).
pub const DS_MIN: f64 = 1.0;

/// The highest deadline scaling factor of the sweep.
pub const DS_MAX: f64 = 20.0;

/// The sweep step.
pub const DS_STEP: f64 = 0.25;

/// Returns the swept `D_s` values: 1.0, 1.25, … 20.0.
pub fn ds_values() -> Vec<f64> {
    let steps = ((DS_MAX - DS_MIN) / DS_STEP).round() as usize;
    (0..=steps).map(|i| DS_MIN + DS_STEP * i as f64).collect()
}

/// Returns the deadline of `event` at scaling factor `ds`, given the
/// system's reconfiguration latency: `ds × single_slot_latency`.
///
/// # Panics
///
/// Panics if `ds` is not finite and positive.
pub fn deadline_for(event: &ArrivalEvent, ds: f64, reconfig: SimDuration) -> SimDuration {
    assert!(ds.is_finite() && ds > 0.0, "D_s must be positive, got {ds}");
    let single_slot = event
        .app()
        .single_slot_latency(event.batch_size(), reconfig)
        .as_secs_f64();
    SimDuration::from_secs_f64(ds * single_slot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;

    const R: SimDuration = SimDuration::from_millis(80);

    #[test]
    fn sweep_has_77_points() {
        let values = ds_values();
        assert_eq!(values.len(), 77);
        assert_eq!(values[0], 1.0);
        assert_eq!(values[1], 1.25);
        assert_eq!(*values.last().unwrap(), 20.0);
    }

    #[test]
    fn deadline_scales_linearly_in_ds() {
        let event = ArrivalEvent::new(benchmarks::lenet(), 5, Priority::High, SimTime::ZERO);
        let d1 = deadline_for(&event, 1.0, R);
        let d2 = deadline_for(&event, 2.0, R);
        assert_eq!(d2.as_micros(), d1.as_micros() * 2);
    }

    #[test]
    fn tightest_deadline_equals_single_slot_latency() {
        let event = ArrivalEvent::new(benchmarks::rendering_3d(), 3, Priority::High, SimTime::ZERO);
        let deadline = deadline_for(&event, 1.0, R);
        assert_eq!(deadline, event.app().single_slot_latency(3, R));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn non_positive_ds_panics() {
        let event = ArrivalEvent::new(benchmarks::lenet(), 1, Priority::Low, SimTime::ZERO);
        deadline_for(&event, 0.0, R);
    }
}
