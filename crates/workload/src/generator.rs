//! Seeded random stimulus generation (paper §5.1).

use std::sync::Arc;

use nimblock_prng::Prng;
use nimblock_ser::impl_json_enum_units;

use nimblock_app::{benchmarks, AppSpec, Priority};
use nimblock_sim::{SimDuration, SimTime};

use crate::{ArrivalEvent, EventSequence};

/// The maximum batch size for a generated event (paper §5.1).
pub const MAX_BATCH_SIZE: u32 = 30;

/// The three congestion conditions of the evaluation (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Moderate delay between events: 1500–2000 ms. "Low-demand behavior
    /// where tasks have great opportunity to leverage additional resources."
    Standard,
    /// Rapid stream of events: 150–200 ms between arrivals.
    Stress,
    /// Streaming input: a consistent 50 ms between events.
    RealTime,
}

impl_json_enum_units!(Scenario { Standard, Stress, RealTime });

impl Scenario {
    /// All three scenarios in the order the paper presents them.
    pub const ALL: [Scenario; 3] = [Scenario::Standard, Scenario::Stress, Scenario::RealTime];

    /// Returns the scenario's display name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Standard => "standard",
            Scenario::Stress => "stress",
            Scenario::RealTime => "real-time",
        }
    }

    /// Draws one inter-arrival delay for this scenario.
    fn inter_arrival(self, rng: &mut Prng) -> SimDuration {
        let millis = match self {
            Scenario::Standard => rng.gen_range(1_500u64..=2_000),
            Scenario::Stress => rng.gen_range(150u64..=200),
            Scenario::RealTime => 50,
        };
        SimDuration::from_millis(millis)
    }
}

/// Generates one sequence of `n_events` random events under `scenario`.
///
/// Events pick uniformly from the six-benchmark pool, batch sizes from
/// `1..=MAX_BATCH_SIZE`, and priorities from the three levels; arrivals are
/// spaced by the scenario's inter-arrival distribution. The same seed
/// always produces the same sequence, so every scheduler can run identical
/// stimuli (paper: "all algorithms are evaluated on the same set of
/// stimuli").
///
/// # Example
///
/// ```
/// use nimblock_workload::{generate, Scenario};
///
/// let a = generate(7, 20, Scenario::Stress);
/// let b = generate(7, 20, Scenario::Stress);
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 20);
/// ```
pub fn generate(seed: u64, n_events: usize, scenario: Scenario) -> EventSequence {
    let pool: Vec<Arc<AppSpec>> = benchmarks::all().into_iter().map(Arc::new).collect();
    let mut rng = Prng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let app = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
        let batch = rng.gen_range(1..=MAX_BATCH_SIZE);
        let priority = Priority::ALL[rng.gen_range(0..Priority::ALL.len())];
        events.push(ArrivalEvent::new(app, batch, priority, now));
        now += scenario.inter_arrival(&mut rng);
    }
    EventSequence::new(events)
}

/// Generates the paper's full test for one scenario: `n_sequences` distinct
/// sequences of `n_events` events (10 × 20 in the evaluation). Sequence `i`
/// uses seed `base_seed + i`, so suites are reproducible and sequences
/// distinct.
pub fn generate_suite(
    base_seed: u64,
    n_sequences: usize,
    n_events: usize,
    scenario: Scenario,
) -> Vec<EventSequence> {
    (0..n_sequences)
        .map(|i| generate(base_seed + i as u64, n_events, scenario))
        .collect()
}

/// Generates a sequence with a *fixed* batch size and fixed inter-arrival
/// delay but random benchmarks and priorities — the stimulus of the
/// benchmark-characteristics study (Table 3: batch 5, 500 ms delay) and the
/// ablation study (Figure 9: stress delays, swept fixed batch sizes).
pub fn fixed_batch_sequence(
    seed: u64,
    n_events: usize,
    batch_size: u32,
    delay: SimDuration,
) -> EventSequence {
    let pool: Vec<Arc<AppSpec>> = benchmarks::all().into_iter().map(Arc::new).collect();
    let mut rng = Prng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let app = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
        let priority = Priority::ALL[rng.gen_range(0..Priority::ALL.len())];
        events.push(ArrivalEvent::new(app, batch_size, priority, now));
        now += delay;
    }
    EventSequence::new(events)
}

/// Generates a sequence with Poisson (exponentially distributed) arrivals
/// at `rate_per_sec`, random benchmarks, batch sizes, and priorities — an
/// open-loop cloud arrival model complementing the paper's fixed-delay
/// scenarios.
///
/// # Panics
///
/// Panics if `rate_per_sec` is not positive and finite.
pub fn poisson_sequence(seed: u64, n_events: usize, rate_per_sec: f64) -> EventSequence {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "arrival rate must be positive, got {rate_per_sec}"
    );
    let pool: Vec<Arc<AppSpec>> = benchmarks::all().into_iter().map(Arc::new).collect();
    let mut rng = Prng::seed_from_u64(seed);
    let mut now = SimTime::ZERO;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let app = Arc::clone(&pool[rng.gen_range(0..pool.len())]);
        let batch = rng.gen_range(1..=MAX_BATCH_SIZE);
        let priority = Priority::ALL[rng.gen_range(0..Priority::ALL.len())];
        events.push(ArrivalEvent::new(app, batch, priority, now));
        // Inverse-CDF exponential gap: -ln(U) / rate.
        let uniform: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap_secs = -uniform.ln() / rate_per_sec;
        now += SimDuration::from_secs_f64(gap_secs);
    }
    EventSequence::new(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(
            generate(42, 20, Scenario::Standard),
            generate(42, 20, Scenario::Standard)
        );
        assert_ne!(
            generate(42, 20, Scenario::Standard),
            generate(43, 20, Scenario::Standard)
        );
    }

    #[test]
    fn batch_sizes_and_priorities_within_bounds() {
        let seq = generate(1, 200, Scenario::Stress);
        for event in &seq {
            assert!((1..=MAX_BATCH_SIZE).contains(&event.batch_size()));
        }
        // With 200 draws all three priorities should appear.
        for p in Priority::ALL {
            assert!(seq.iter().any(|e| e.priority() == p), "missing {p}");
        }
    }

    #[test]
    fn inter_arrival_ranges_match_scenarios() {
        for (scenario, lo, hi) in [
            (Scenario::Standard, 1_500, 2_000),
            (Scenario::Stress, 150, 200),
            (Scenario::RealTime, 50, 50),
        ] {
            let seq = generate(5, 50, scenario);
            for pair in seq.events().windows(2) {
                let gap = (pair[1].arrival() - pair[0].arrival()).as_millis();
                assert!(
                    (lo..=hi).contains(&gap),
                    "{}: gap {gap} outside [{lo}, {hi}]",
                    scenario.name()
                );
            }
        }
    }

    #[test]
    fn suite_produces_distinct_sequences() {
        let suite = generate_suite(100, 10, 20, Scenario::Standard);
        assert_eq!(suite.len(), 10);
        for pair in suite.windows(2) {
            assert_ne!(pair[0], pair[1]);
        }
    }

    #[test]
    fn fixed_batch_sequence_fixes_batch_and_delay() {
        let seq = fixed_batch_sequence(9, 20, 5, SimDuration::from_millis(500));
        for event in &seq {
            assert_eq!(event.batch_size(), 5);
        }
        for pair in seq.events().windows(2) {
            assert_eq!((pair[1].arrival() - pair[0].arrival()).as_millis(), 500);
        }
    }

    #[test]
    fn zero_events_gives_an_empty_sequence() {
        assert!(generate(1, 0, Scenario::Standard).is_empty());
        assert!(fixed_batch_sequence(1, 0, 5, SimDuration::from_millis(1)).is_empty());
    }

    #[test]
    fn first_event_arrives_at_time_zero() {
        for scenario in Scenario::ALL {
            let seq = generate(9, 5, scenario);
            assert_eq!(seq.events()[0].arrival(), nimblock_sim::SimTime::ZERO);
        }
    }

    #[test]
    fn scenario_names_are_stable() {
        assert_eq!(Scenario::Standard.name(), "standard");
        assert_eq!(Scenario::Stress.name(), "stress");
        assert_eq!(Scenario::RealTime.name(), "real-time");
    }

    #[test]
    fn poisson_gaps_average_near_the_rate() {
        let rate = 4.0; // four arrivals per second
        let seq = poisson_sequence(13, 2_000, rate);
        let span = seq.events().last().unwrap().arrival().as_secs_f64();
        let mean_gap = span / (seq.len() - 1) as f64;
        assert!(
            (mean_gap - 1.0 / rate).abs() < 0.05,
            "mean gap {mean_gap} vs expected {}",
            1.0 / rate
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        assert_eq!(poisson_sequence(7, 30, 2.0), poisson_sequence(7, 30, 2.0));
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn poisson_rejects_zero_rate() {
        let _ = poisson_sequence(0, 1, 0.0);
    }

    #[test]
    fn all_benchmarks_eventually_appear() {
        let seq = generate(3, 300, Scenario::RealTime);
        for name in [
            "LeNet",
            "AlexNet",
            "ImageCompression",
            "OpticalFlow",
            "3DRendering",
            "DigitRecognition",
        ] {
            assert!(seq.iter().any(|e| e.app().name() == name), "missing {name}");
        }
    }
}
