//! Determinism guarantees for the workload generators: the same seed must
//! yield a **byte-identical** serialized sequence, on every platform and
//! across releases. Every figure in the evaluation depends on this ("all
//! algorithms are evaluated on the same set of stimuli").

use nimblock_check::{check, prop_assert, prop_assert_eq};
use nimblock_sim::SimDuration;
use nimblock_workload::{fixed_batch_sequence, generate, poisson_sequence, Scenario};

/// Same seed ⇒ byte-identical JSON, for every generator and scenario.
#[test]
fn same_seed_serializes_byte_identically() {
    for scenario in Scenario::ALL {
        for seed in [0u64, 1, 42, 2023] {
            let a = nimblock_ser::to_string(&generate(seed, 25, scenario));
            let b = nimblock_ser::to_string(&generate(seed, 25, scenario));
            assert_eq!(a, b, "generate({seed}, 25, {})", scenario.name());
        }
    }
    let a = nimblock_ser::to_string(&fixed_batch_sequence(9, 20, 5, SimDuration::from_millis(500)));
    let b = nimblock_ser::to_string(&fixed_batch_sequence(9, 20, 5, SimDuration::from_millis(500)));
    assert_eq!(a, b);
    let a = nimblock_ser::to_string(&poisson_sequence(7, 30, 2.0));
    let b = nimblock_ser::to_string(&poisson_sequence(7, 30, 2.0));
    assert_eq!(a, b);
}

/// Property form over the whole seed space: byte equality under the same
/// seed, divergence for adjacent seeds (adjacent seeds are exactly how the
/// suite generator derives distinct sequences).
#[test]
fn seed_determinism_property() {
    check("seed_determinism_property", |g| {
        let seed = g.u64(0..=u64::MAX);
        let scenario = *g.pick(&Scenario::ALL);
        let n = g.usize(1..=40);
        let a = nimblock_ser::to_string(&generate(seed, n, scenario));
        let b = nimblock_ser::to_string(&generate(seed, n, scenario));
        prop_assert_eq!(&a, &b);
        let other = nimblock_ser::to_string(&generate(seed.wrapping_add(1), n, scenario));
        prop_assert!(
            a != other || n == 0,
            "adjacent seeds {seed}/{} collided",
            seed.wrapping_add(1)
        );
        Ok(())
    });
}

/// The serialized form round-trips losslessly: decode(encode(x)) == x and
/// re-encoding is byte-stable.
#[test]
fn sequence_json_roundtrips() {
    let seq = generate(2023, 30, Scenario::Stress);
    let json = nimblock_ser::to_string(&seq);
    let decoded: nimblock_workload::EventSequence = nimblock_ser::from_str(&json).unwrap();
    assert_eq!(decoded, seq);
    assert_eq!(nimblock_ser::to_string(&decoded), json);
}

/// Pinned stream head for seed 0: changing the PRNG, the draw order inside
/// `generate`, or the benchmark pool order breaks this loudly.
#[test]
fn seed_zero_head_is_pinned() {
    let seq = generate(0, 3, Scenario::Standard);
    let head: Vec<(String, u32, String, u64)> = seq
        .iter()
        .map(|e| {
            (
                e.app().name().to_owned(),
                e.batch_size(),
                e.priority().to_string(),
                e.arrival().as_millis(),
            )
        })
        .collect();
    // If this assertion fails after an intentional generator change, every
    // golden trace in the repo must be regenerated in the same commit.
    let expected = vec![
        ("OpticalFlow".to_owned(), 23, "low".to_owned(), 0),
        ("3DRendering".to_owned(), 30, "medium".to_owned(), 1_708),
        ("DigitRecognition".to_owned(), 28, "low".to_owned(), 3_476),
    ];
    assert_eq!(head, expected);
}
