//! The `monitor` pass: render a continuous-monitoring document.
//!
//! This is the read-side of `nimblock-obs::timeseries`: given a
//! [`MonitorDoc`] (as written by `nimblock-cli run --timeseries-out` or
//! by a post-mortem dump), render the windowed series, the per-class
//! response/slowdown quantiles, the fired SLO alerts with per-rule burn
//! summaries, and the flight-recorder tail — as text tables, markdown,
//! or machine-readable JSON.
//!
//! # Example
//!
//! ```
//! use nimblock_analyze::{render_monitor, ExplainFormat};
//! use nimblock_core::{derive_monitor, NimblockScheduler, Testbed};
//! use nimblock_obs::MonitorConfig;
//! use nimblock_workload::{generate, Scenario};
//!
//! let events = generate(7, 4, Scenario::Standard);
//! let (_report, trace) = Testbed::new(NimblockScheduler::new()).run_traced(&events);
//! let doc = derive_monitor(&trace, MonitorConfig::with_window_micros(1_000_000)).to_doc();
//! let text = render_monitor(&doc, ExplainFormat::Text);
//! assert!(text.contains("continuous monitor"));
//! ```

use nimblock_metrics::TextTable;
use nimblock_obs::{format_micros, MonitorDoc, SparseSketch, Window};
use nimblock_ser::{Json, ToJson};

use crate::ExplainFormat;

/// How many trailing windows the text/markdown series tables show; older
/// windows are summarized by the header counts (JSON always carries all).
const SERIES_TAIL: usize = 64;

/// Renders `doc` in `format`.
pub fn render_monitor(doc: &MonitorDoc, format: ExplainFormat) -> String {
    match format {
        ExplainFormat::Text => render_text(doc),
        ExplainFormat::Markdown => render_md(doc),
        ExplainFormat::Json => render_json(doc),
    }
}

/// Merged per-class quantile sketches over the whole run: (label,
/// response, slowdown), one entry per priority class that saw retires.
fn class_sketches(doc: &MonitorDoc) -> Vec<(&'static str, SparseSketch, SparseSketch)> {
    let mut classes: Vec<(&'static str, SparseSketch, SparseSketch)> = vec![
        ("high", SparseSketch::default(), SparseSketch::default()),
        ("med", SparseSketch::default(), SparseSketch::default()),
        ("low", SparseSketch::default(), SparseSketch::default()),
    ];
    for window in &doc.windows {
        classes[0].1.merge_from(&window.resp_high);
        classes[0].2.merge_from(&window.slow_high);
        classes[1].1.merge_from(&window.resp_med);
        classes[1].2.merge_from(&window.slow_med);
        classes[2].1.merge_from(&window.resp_low);
        classes[2].2.merge_from(&window.slow_low);
    }
    classes.retain(|(_, resp, _)| !resp.is_empty());
    classes
}

/// Per-rule burn summary: how many of the evaluated windows fired.
fn burn_counts(doc: &MonitorDoc) -> Vec<(String, usize)> {
    doc.rules
        .iter()
        .map(|rule| {
            let fired = doc.alerts.iter().filter(|a| &a.rule == rule).count();
            (rule.clone(), fired)
        })
        .collect()
}

fn cache_rate(window: &Window) -> String {
    let total = window.cache_hits + window.cache_misses;
    if total == 0 {
        "-".to_owned()
    } else {
        format!("{}%", window.cache_hits * 100 / total)
    }
}

fn series_rows(doc: &MonitorDoc) -> Vec<Vec<String>> {
    let skip = doc.windows.len().saturating_sub(SERIES_TAIL);
    doc.windows
        .iter()
        .enumerate()
        .skip(skip)
        .map(|(index, w)| {
            vec![
                index.to_string(),
                format_micros(index as u64 * doc.window_micros),
                format!("{}%", w.utilization_permille(doc.slots, doc.window_micros) / 10),
                w.queue_depth_peak.to_string(),
                w.running_peak.to_string(),
                w.waiting_peak.to_string(),
                w.arrivals.to_string(),
                w.retires.to_string(),
                w.preemptions.to_string(),
                w.reconfigurations.to_string(),
                cache_rate(w),
            ]
        })
        .collect()
}

const SERIES_HEADER: [&str; 11] = [
    "#", "start", "util", "queue", "run", "wait", "arr", "ret", "preempt", "reconfig", "cache",
];

fn render_text(doc: &MonitorDoc) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "continuous monitor: {} window(s) x {}, {} slot(s)\n",
        doc.windows.len(),
        format_micros(doc.window_micros),
        doc.slots,
    ));
    out.push_str(&format!(
        "dropped: {} window observation(s), {} alert(s), {} recorder entr(ies), \
         {} span tree(s)\n",
        doc.dropped, doc.dropped_alerts, doc.recorder_dropped, doc.span_dropped,
    ));
    if let Some(trigger) = &doc.trigger {
        out.push_str(&format!("post-mortem trigger: {trigger}\n"));
    }
    let skip = doc.windows.len().saturating_sub(SERIES_TAIL);
    if skip > 0 {
        out.push_str(&format!("\nwindowed series (last {SERIES_TAIL} of {})\n", doc.windows.len()));
    } else {
        out.push_str("\nwindowed series\n");
    }
    let mut table = TextTable::new(SERIES_HEADER.iter().map(|s| (*s).to_owned()).collect());
    for row in series_rows(doc) {
        table.row(row);
    }
    out.push_str(&table.to_string());

    let classes = class_sketches(doc);
    if !classes.is_empty() {
        out.push_str("\nper-class quantiles (whole run)\n");
        let mut table = TextTable::new(vec![
            "class", "retires", "resp p50", "resp p95", "resp p99", "slowdown p50 (x)",
        ]);
        for (label, resp, slow) in &classes {
            table.row(vec![
                (*label).to_owned(),
                resp.count().to_string(),
                format_micros(resp.quantile_permille(500)),
                format_micros(resp.quantile_permille(950)),
                format_micros(resp.quantile_permille(990)),
                format!("{:.1}", slow.quantile_permille(500) as f64 / 1000.0),
            ]);
        }
        out.push_str(&table.to_string());
    }

    if !doc.rules.is_empty() {
        out.push_str(&format!("\nSLO rules: {} alert(s) fired\n", doc.alerts.len()));
        let mut table = TextTable::new(vec!["rule", "windows fired"]);
        for (rule, fired) in burn_counts(doc) {
            table.row(vec![rule, fired.to_string()]);
        }
        out.push_str(&table.to_string());
        if !doc.alerts.is_empty() {
            out.push_str("\nalerts\n");
            let mut table = TextTable::new(vec!["window", "at", "rule", "observed", "limit"]);
            for alert in &doc.alerts {
                table.row(vec![
                    alert.window.to_string(),
                    format_micros(alert.at_us),
                    alert.rule.clone(),
                    alert.value.to_string(),
                    alert.limit.to_string(),
                ]);
            }
            out.push_str(&table.to_string());
        }
    }

    if !doc.recorder.is_empty() {
        out.push_str(&format!("\nflight recorder ({} entr(ies))\n", doc.recorder.len()));
        let mut table = TextTable::new(vec!["at", "board", "kind", "detail"]);
        for entry in &doc.recorder {
            table.row(vec![
                format_micros(entry.at_us),
                entry.board.to_string(),
                entry.kind.clone(),
                entry.detail.clone(),
            ]);
        }
        out.push_str(&table.to_string());
    }

    if let Some(tree) = &doc.span_tree {
        out.push_str("\nimplicated span tree — `*` marks the critical path:\n");
        out.push_str(tree);
    }
    out
}

fn render_md(doc: &MonitorDoc) -> String {
    let mut out = String::new();
    out.push_str("# Continuous monitor\n\n");
    out.push_str(&format!(
        "{} window(s) × {}, {} slot(s); dropped: {} window observation(s), \
         {} alert(s), {} recorder entr(ies), {} span tree(s)\n\n",
        doc.windows.len(),
        format_micros(doc.window_micros),
        doc.slots,
        doc.dropped,
        doc.dropped_alerts,
        doc.recorder_dropped,
        doc.span_dropped,
    ));
    if let Some(trigger) = &doc.trigger {
        out.push_str(&format!("**Post-mortem trigger:** {trigger}\n\n"));
    }
    out.push_str("## Windowed series\n\n");
    let skip = doc.windows.len().saturating_sub(SERIES_TAIL);
    if skip > 0 {
        out.push_str(&format!("_Last {SERIES_TAIL} of {} windows._\n\n", doc.windows.len()));
    }
    out.push_str(&format!("| {} |\n", SERIES_HEADER.join(" | ")));
    out.push_str(&format!("|{}\n", "---:|".repeat(SERIES_HEADER.len())));
    for row in series_rows(doc) {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }

    let classes = class_sketches(doc);
    if !classes.is_empty() {
        out.push_str("\n## Per-class quantiles\n\n");
        out.push_str(
            "| class | retires | resp p50 | resp p95 | resp p99 | slowdown p50 |\n\
             |---|---:|---:|---:|---:|---:|\n",
        );
        for (label, resp, slow) in &classes {
            out.push_str(&format!(
                "| {label} | {} | {} | {} | {} | {:.1}× |\n",
                resp.count(),
                format_micros(resp.quantile_permille(500)),
                format_micros(resp.quantile_permille(950)),
                format_micros(resp.quantile_permille(990)),
                slow.quantile_permille(500) as f64 / 1000.0,
            ));
        }
    }

    if !doc.rules.is_empty() {
        out.push_str(&format!("\n## SLO alerts ({} fired)\n\n", doc.alerts.len()));
        out.push_str("| rule | windows fired |\n|---|---:|\n");
        for (rule, fired) in burn_counts(doc) {
            out.push_str(&format!("| `{rule}` | {fired} |\n"));
        }
        if !doc.alerts.is_empty() {
            out.push_str("\n| window | at | rule | observed | limit |\n|---:|---:|---|---:|---:|\n");
            for alert in &doc.alerts {
                out.push_str(&format!(
                    "| {} | {} | `{}` | {} | {} |\n",
                    alert.window,
                    format_micros(alert.at_us),
                    alert.rule,
                    alert.value,
                    alert.limit,
                ));
            }
        }
    }

    if !doc.recorder.is_empty() {
        out.push_str(&format!("\n## Flight recorder ({} entries)\n\n", doc.recorder.len()));
        out.push_str("| at | board | kind | detail |\n|---:|---:|---|---|\n");
        for entry in &doc.recorder {
            out.push_str(&format!(
                "| {} | {} | {} | {} |\n",
                format_micros(entry.at_us),
                entry.board,
                entry.kind,
                entry.detail,
            ));
        }
    }

    if let Some(tree) = &doc.span_tree {
        out.push_str(&format!("\n## Implicated span tree\n\n```text\n{tree}```\n"));
    }
    out
}

/// JSON report: the full [`MonitorDoc`] plus top-level `alerts_fired` and
/// `clean` fields CI can assert on.
fn render_json(doc: &MonitorDoc) -> String {
    let json = Json::Object(vec![
        ("clean".to_owned(), Json::Bool(doc.alerts.is_empty())),
        (
            "alerts_fired".to_owned(),
            Json::U64(doc.alerts.len() as u64),
        ),
        ("doc".to_owned(), doc.to_json()),
    ]);
    nimblock_ser::to_string_pretty(&json)
}

#[cfg(test)]
mod tests {
    use nimblock_core::{derive_monitor, post_mortem, NimblockScheduler, Testbed};
    use nimblock_obs::{parse_rules, MonitorConfig, MonitorDoc};
    use nimblock_workload::{generate, Scenario};

    use super::*;

    fn sample_doc() -> MonitorDoc {
        let events = generate(3, 5, Scenario::Stress);
        let (_report, trace) = Testbed::new(NimblockScheduler::new()).run_traced(&events);
        let config = MonitorConfig::with_window_micros(1_000_000)
            .rules(parse_rules(&["util>=100%".into()]).unwrap());
        derive_monitor(&trace, config).to_doc()
    }

    #[test]
    fn text_report_names_every_section() {
        let text = render_monitor(&sample_doc(), ExplainFormat::Text);
        assert!(text.contains("continuous monitor"), "{text}");
        assert!(text.contains("span tree(s)"), "saturation-loss line names span drops: {text}");
        assert!(text.contains("windowed series"), "{text}");
        assert!(text.contains("per-class quantiles"), "{text}");
        assert!(text.contains("alert(s) fired"), "{text}");
        assert!(text.contains("flight recorder"), "{text}");
    }

    #[test]
    fn markdown_report_has_tables() {
        let md = render_monitor(&sample_doc(), ExplainFormat::Markdown);
        assert!(md.starts_with("# Continuous monitor"), "{md}");
        assert!(md.contains("## Windowed series"), "{md}");
        assert!(md.contains("## SLO alerts"), "{md}");
        assert!(md.contains("`util>=100%`"), "{md}");
    }

    #[test]
    fn json_report_round_trips_the_doc() {
        let doc = sample_doc();
        let json = render_monitor(&doc, ExplainFormat::Json);
        let value = nimblock_ser::parse(&json).unwrap();
        assert_eq!(value.get("clean"), Some(&Json::Bool(doc.alerts.is_empty())));
        let parsed: MonitorDoc =
            nimblock_ser::FromJson::from_json(value.get("doc").unwrap()).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn post_mortem_renders_trigger_and_tree() {
        let events = generate(3, 5, Scenario::Stress);
        let (_report, trace) = Testbed::new(NimblockScheduler::new()).run_traced(&events);
        let doc = post_mortem(
            &trace,
            MonitorConfig::with_window_micros(1_000_000),
            "invariant: cap-serialization",
            Some(nimblock_core::AppId::new(0)),
        );
        let text = render_monitor(&doc, ExplainFormat::Text);
        assert!(text.contains("post-mortem trigger: invariant: cap-serialization"), "{text}");
        assert!(text.contains("implicated span tree"), "{text}");
        let md = render_monitor(&doc, ExplainFormat::Markdown);
        assert!(md.contains("**Post-mortem trigger:**"), "{md}");
    }

    #[test]
    fn reports_are_deterministic() {
        let a = render_monitor(&sample_doc(), ExplainFormat::Markdown);
        let b = render_monitor(&sample_doc(), ExplainFormat::Markdown);
        assert_eq!(a, b);
    }
}
