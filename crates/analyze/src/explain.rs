//! The `explain` pass: turn a recorded schedule trace into a
//! response-time attribution report.
//!
//! This is the read-side of `nimblock-core::attribution`: given any
//! serialized [`Trace`] (as written by `nimblock-cli run --trace-out`),
//! derive the six-component critical-path decomposition per
//! application, aggregate it per priority class, and render the result
//! as a text table, a markdown report, or machine-readable JSON. The
//! top-N slowest applications additionally get their full span trees
//! printed, critical-path spans starred.
//!
//! # Example
//!
//! ```
//! use nimblock_analyze::explain_trace;
//! use nimblock_core::{NimblockScheduler, Testbed};
//! use nimblock_workload::{generate, Scenario};
//!
//! let events = generate(7, 4, Scenario::Standard);
//! let (_report, trace) = Testbed::new(NimblockScheduler::new()).run_traced(&events);
//! let explain = explain_trace(&trace);
//! assert!(explain.is_exact());
//! assert_eq!(explain.summary.apps.len(), 4);
//! ```

use nimblock_core::Trace;
use nimblock_metrics::{
    component_shares, AppAttribution, AttributionSummary, TextTable,
};
use nimblock_obs::{format_micros, Span};
use nimblock_ser::{Json, ToJson};

/// Output format for an explain report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplainFormat {
    /// Fixed-width text tables plus span trees (default).
    #[default]
    Text,
    /// GitHub-flavoured markdown.
    Markdown,
    /// Machine-readable JSON (summary + span trees + exactness flag).
    Json,
}

impl ExplainFormat {
    /// Parses `text`/`md`/`markdown`/`json`.
    pub fn parse(s: &str) -> Option<ExplainFormat> {
        match s {
            "text" => Some(ExplainFormat::Text),
            "md" | "markdown" => Some(ExplainFormat::Markdown),
            "json" => Some(ExplainFormat::Json),
            _ => None,
        }
    }
}

/// A fully-derived explain report: attribution summary plus span trees,
/// ready to render in any [`ExplainFormat`].
#[derive(Debug, Clone)]
pub struct Explain {
    /// Per-app and aggregate six-component decomposition.
    pub summary: AttributionSummary,
    /// One span tree per retired application, arrival order.
    pub trees: Vec<Span>,
}

/// Derives the attribution summary and span trees from `trace`.
pub fn explain_trace(trace: &Trace) -> Explain {
    Explain {
        summary: nimblock_core::attribute_trace(trace),
        trees: nimblock_core::span_trees(trace),
    }
}

impl Explain {
    /// `true` iff every app's components sum exactly to its response
    /// time (the module's core invariant).
    pub fn is_exact(&self) -> bool {
        self.summary.is_exact()
    }

    /// Renders in `format`, showing the `top` slowest apps' span trees.
    pub fn render(&self, format: ExplainFormat, top: usize) -> String {
        match format {
            ExplainFormat::Text => self.render_text(top),
            ExplainFormat::Markdown => self.render_md(top),
            ExplainFormat::Json => self.render_json(),
        }
    }

    /// The span tree for `app` (matched by arrival/event index).
    fn tree_for(&self, app: &AppAttribution) -> Option<&Span> {
        // Trees are emitted in arrival order; summary apps are sorted
        // by event index over the same retired set, so position in the
        // summary *is* the position in the tree list.
        self.summary
            .apps
            .iter()
            .position(|a| a.event_index == app.event_index)
            .and_then(|i| self.trees.get(i))
    }

    fn totals_table(&self) -> TextTable {
        let mut table = TextTable::new(vec!["component", "total", "share"]);
        for (label, value, share) in
            component_shares(&self.summary.totals, self.summary.response_micros)
        {
            table.row(vec![
                label,
                signed_micros(value),
                format!("{:.1}%", share * 100.0),
            ]);
        }
        table
    }

    fn priority_table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "weight", "apps", "response", "queue", "cap", "reconfig", "compute",
            "preempt", "overlap",
        ]);
        for bucket in &self.summary.per_priority {
            let c = &bucket.components;
            table.row(vec![
                bucket.weight.to_string(),
                bucket.apps.to_string(),
                format_micros(bucket.response_micros),
                format_micros(c.queue_wait),
                format_micros(c.cap_serialization),
                format_micros(c.reconfig),
                format_micros(c.compute),
                format_micros(c.preemption_loss),
                signed_micros(c.pipeline_overlap_gain),
            ]);
        }
        table
    }

    fn slowest_table(&self, top: usize) -> TextTable {
        let mut table = TextTable::new(vec![
            "#", "app", "prio", "response", "queue", "cap", "reconfig",
            "compute", "preempt", "overlap",
        ]);
        for app in self.summary.slowest(top) {
            let c = &app.components;
            table.row(vec![
                app.event_index.to_string(),
                app.app_name.clone(),
                app.priority.weight().to_string(),
                format_micros(app.response_micros),
                format_micros(c.queue_wait),
                format_micros(c.cap_serialization),
                format_micros(c.reconfig),
                format_micros(c.compute),
                format_micros(c.preemption_loss),
                signed_micros(c.pipeline_overlap_gain),
            ]);
        }
        table
    }

    /// Fixed-width text report: component totals, per-priority
    /// aggregates, the `top` slowest apps, and their span trees.
    pub fn render_text(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "response-time attribution: {} application(s), total response {}\n",
            self.summary.apps.len(),
            format_micros(self.summary.response_micros),
        ));
        out.push_str(&format!(
            "exact decomposition: {}\n\n",
            if self.is_exact() { "yes" } else { "NO (bug)" }
        ));
        out.push_str("component totals\n");
        out.push_str(&self.totals_table().to_string());
        out.push_str("\nper priority class\n");
        out.push_str(&self.priority_table().to_string());
        out.push_str(&format!("\n{top} slowest application(s)\n"));
        out.push_str(&self.slowest_table(top).to_string());
        for app in self.summary.slowest(top) {
            if let Some(tree) = self.tree_for(app) {
                out.push_str(&format!(
                    "\ncritical path of {} (event #{}) — `*` marks the critical path:\n",
                    app.app_name, app.event_index
                ));
                out.push_str(&tree.render());
            }
        }
        out
    }

    /// Markdown report with the same sections as [`Explain::render_text`].
    pub fn render_md(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str("# Response-time attribution\n\n");
        out.push_str(&format!(
            "{} application(s), total response {}, exact decomposition: **{}**\n\n",
            self.summary.apps.len(),
            format_micros(self.summary.response_micros),
            if self.is_exact() { "yes" } else { "NO (bug)" }
        ));
        out.push_str("## Component totals\n\n");
        out.push_str("| component | total | share |\n|---|---:|---:|\n");
        for (label, value, share) in
            component_shares(&self.summary.totals, self.summary.response_micros)
        {
            out.push_str(&format!(
                "| {label} | {} | {:.1}% |\n",
                signed_micros(value),
                share * 100.0
            ));
        }
        out.push_str("\n## Per priority class\n\n");
        out.push_str(
            "| weight | apps | response | queue | cap | reconfig | compute | preempt | overlap |\n\
             |---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for bucket in &self.summary.per_priority {
            let c = &bucket.components;
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                bucket.weight,
                bucket.apps,
                format_micros(bucket.response_micros),
                format_micros(c.queue_wait),
                format_micros(c.cap_serialization),
                format_micros(c.reconfig),
                format_micros(c.compute),
                format_micros(c.preemption_loss),
                signed_micros(c.pipeline_overlap_gain),
            ));
        }
        out.push_str(&format!("\n## {top} slowest application(s)\n\n"));
        out.push_str(
            "| # | app | prio | response | queue | cap | reconfig | compute | preempt | overlap |\n\
             |---:|---|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for app in self.summary.slowest(top) {
            let c = &app.components;
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                app.event_index,
                app.app_name,
                app.priority.weight(),
                format_micros(app.response_micros),
                format_micros(c.queue_wait),
                format_micros(c.cap_serialization),
                format_micros(c.reconfig),
                format_micros(c.compute),
                format_micros(c.preemption_loss),
                signed_micros(c.pipeline_overlap_gain),
            ));
        }
        for app in self.summary.slowest(top) {
            if let Some(tree) = self.tree_for(app) {
                out.push_str(&format!(
                    "\n### Critical path: {} (event #{})\n\n```text\n{}```\n",
                    app.app_name, app.event_index,
                    tree.render()
                ));
            }
        }
        out
    }

    /// JSON report: the full [`AttributionSummary`], every span tree,
    /// and a top-level `exact` flag CI can assert on.
    pub fn render_json(&self) -> String {
        let json = Json::Object(vec![
            ("exact".to_owned(), Json::Bool(self.is_exact())),
            ("summary".to_owned(), self.summary.to_json()),
            (
                "spans".to_owned(),
                Json::Array(self.trees.iter().map(Span::to_json).collect()),
            ),
        ]);
        nimblock_ser::to_string_pretty(&json)
    }
}

/// `format_micros` with an explicit sign for the (negative) overlap
/// credit.
fn signed_micros(value: i64) -> String {
    if value < 0 {
        format!("-{}", format_micros(value.unsigned_abs()))
    } else {
        format_micros(value as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_core::{FcfsScheduler, NimblockScheduler, Testbed};
    use nimblock_workload::{generate, Scenario};

    fn sample() -> Explain {
        let events = generate(3, 5, Scenario::Stress);
        let (_report, trace) =
            Testbed::new(NimblockScheduler::new()).run_traced(&events);
        explain_trace(&trace)
    }

    #[test]
    fn explain_is_exact_on_a_real_run() {
        let explain = sample();
        assert!(explain.is_exact());
        assert_eq!(explain.summary.apps.len(), 5);
        assert_eq!(explain.trees.len(), 5);
    }

    #[test]
    fn text_report_names_every_component() {
        let text = sample().render(ExplainFormat::Text, 3);
        for label in [
            "queue_wait", "cap_serialization", "reconfig", "compute",
            "preemption_loss", "pipeline_overlap_gain",
        ] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
        assert!(text.contains("exact decomposition: yes"), "{text}");
        assert!(text.contains("critical path of"), "{text}");
    }

    #[test]
    fn markdown_report_has_tables_and_trees() {
        let md = sample().render(ExplainFormat::Markdown, 2);
        assert!(md.starts_with("# Response-time attribution"), "{md}");
        assert!(md.contains("| component | total | share |"), "{md}");
        assert!(md.contains("### Critical path:"), "{md}");
        assert!(md.contains("```text"), "{md}");
    }

    #[test]
    fn json_report_parses_and_asserts_exactness() {
        let json = sample().render(ExplainFormat::Json, 0);
        let value = nimblock_ser::parse(&json).unwrap();
        let Json::Object(fields) = &value else { panic!("not an object") };
        let exact = fields.iter().find(|(k, _)| k == "exact").unwrap();
        assert_eq!(exact.1, Json::Bool(true));
        let summary = fields.iter().find(|(k, _)| k == "summary").unwrap();
        let parsed: AttributionSummary =
            nimblock_ser::FromJson::from_json(&summary.1).unwrap();
        assert!(parsed.is_exact());
        assert!(fields.iter().any(|(k, _)| k == "spans"));
    }

    #[test]
    fn format_parsing_accepts_aliases() {
        assert_eq!(ExplainFormat::parse("text"), Some(ExplainFormat::Text));
        assert_eq!(ExplainFormat::parse("md"), Some(ExplainFormat::Markdown));
        assert_eq!(ExplainFormat::parse("markdown"), Some(ExplainFormat::Markdown));
        assert_eq!(ExplainFormat::parse("json"), Some(ExplainFormat::Json));
        assert_eq!(ExplainFormat::parse("yaml"), None);
    }

    #[test]
    fn reports_are_deterministic_across_runs() {
        let events = generate(6, 6, Scenario::Standard);
        let (_, t1) = Testbed::new(FcfsScheduler::new()).run_traced(&events);
        let (_, t2) = Testbed::new(FcfsScheduler::new()).run_traced(&events);
        let a = explain_trace(&t1).render(ExplainFormat::Markdown, 4);
        let b = explain_trace(&t2).render(ExplainFormat::Markdown, 4);
        assert_eq!(a, b);
    }
}
