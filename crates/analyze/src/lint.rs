//! The lint driver: walk a workspace tree, run every rule, apply inline
//! suppressions, and produce a [`LintReport`].

use crate::lex::{lex, Lexed};
use crate::rules::{all_rules, FileCtx, LintDiag, Rule};
use nimblock_ser::impl_json_struct;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived suppression, in (path, line) order.
    pub diags: Vec<LintDiag>,
    /// How many findings inline `// nimblock: allow(...)` comments silenced.
    pub suppressed: usize,
    /// How many files were scanned.
    pub files_scanned: usize,
}
impl_json_struct!(LintReport { diags, suppressed, files_scanned });

impl LintReport {
    /// True when no finding survived suppression.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }
}

impl std::fmt::Display for LintReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} finding(s), {} suppressed, {} file(s) scanned",
            self.diags.len(),
            self.suppressed,
            self.files_scanned
        )
    }
}

/// Lint every `.rs`, `Cargo.toml`, and `Cargo.lock` file under `root`.
///
/// Hidden directories and `target/` are skipped. This crate's own sources
/// are *not* exempt: the rule tests embed their violating fixtures in string
/// literals, which the tokenizer never looks inside.
pub fn lint_tree(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();
    let rules = all_rules();
    let mut report = LintReport::default();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        lint_one(&rel_str, &source, &rules, &mut report);
    }
    Ok(report)
}

/// Lint a single in-memory file against the full rule set.
pub fn lint_source(rel_path: &str, source: &str) -> LintReport {
    let mut report = LintReport::default();
    lint_one(rel_path, source, &all_rules(), &mut report);
    report
}

fn lint_one(rel_path: &str, source: &str, rules: &[Box<dyn Rule>], report: &mut LintReport) {
    let lexed: Option<Lexed> = rel_path.ends_with(".rs").then(|| lex(source));
    let ctx = FileCtx { rel_path, source, lexed: lexed.as_ref() };
    report.files_scanned += 1;
    for rule in rules {
        if !rule.applies_to(rel_path) {
            continue;
        }
        for finding in rule.check(&ctx) {
            let allowed = lexed
                .as_ref()
                .map(|l| l.allowed(finding.line, rule.id()))
                .unwrap_or(false);
            if allowed {
                report.suppressed += 1;
            } else {
                report.diags.push(finding);
            }
        }
    }
    report.diags.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
}

pub(crate) fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" {
                continue;
            }
            collect_files(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" || name == "Cargo.lock" {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppressed_findings_are_counted_not_reported() {
        let src = "fn f() {\n    // nimblock: allow(no-unwrap-hot-path)\n    x.unwrap();\n    y.unwrap();\n}\n";
        let report = lint_source("crates/sim/src/engine.rs", src);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.diags.len(), 1);
        assert_eq!(report.diags[0].line, 4);
    }

    #[test]
    fn clean_source_produces_a_clean_report() {
        let src = "fn f() -> Result<u32, String> { Ok(1) }\n";
        let report = lint_source("crates/core/src/scheduler/nimblock.rs", src);
        assert!(report.is_clean());
        assert_eq!(report.files_scanned, 1);
    }

    #[test]
    fn report_serializes_and_displays() {
        let report = lint_source("crates/sim/src/queue.rs", "fn f() { x.unwrap(); }");
        let json = nimblock_ser::to_string(&report);
        assert!(json.contains("\"files_scanned\":1"));
        let text = report.to_string();
        assert!(text.contains("crates/sim/src/queue.rs:1"));
        assert!(text.contains("1 finding(s)"));
    }

    #[test]
    fn lint_tree_walks_a_temp_workspace() {
        let dir = std::env::temp_dir().join(format!(
            "nimblock-analyze-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let src_dir = dir.join("crates/sim/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(dir.join("Cargo.toml"), "[dependencies]\nserde = \"1.0\"\n").unwrap();
        fs::write(src_dir.join("engine.rs"), "fn f() { x.unwrap(); }\n").unwrap();
        let report = lint_tree(&dir).unwrap();
        fs::remove_dir_all(&dir).ok();
        assert_eq!(report.files_scanned, 2);
        let rules: Vec<&str> = report.diags.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(rules, ["registry-deps", "no-unwrap-hot-path"]);
    }
}
