//! An item-level Rust parser on top of [`crate::lex`].
//!
//! This extracts just enough structure for whole-workspace analysis:
//! `use` aliases, `struct`/`enum` names (with field type heads), `trait`
//! names, and `fn` items with their owning `impl` type, implemented
//! trait, and body token range. It deliberately resolves **no types and
//! no generics** — the call graph built on top of it matches by name,
//! exactly like the token-stream lint rules, but program-wide. The
//! false-negative boundaries this creates are catalogued in
//! `DESIGN.md` §16.
//!
//! The parser is a single forward scan over the token stream with a
//! brace-depth counter and an `impl`/`trait` context stack; it never
//! backtracks and tolerates anything it does not understand (it skips
//! one token and keeps going), so a file that confuses it degrades to
//! fewer extracted items, never to a crash.

use std::collections::BTreeMap;

use crate::lex::{Lexed, Token};

/// One `struct` or `enum` item.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// Type name.
    pub name: String,
    /// Named fields as (field, type head), where the type head is the
    /// last path segment before any generic arguments — `HashMap` for
    /// `std::collections::HashMap<K, V>`. Empty for enums and tuple
    /// structs.
    pub fields: Vec<(String, String)>,
    /// 1-based line of the item keyword.
    pub line: u32,
}

/// One `fn` item (free function, inherent method, trait impl method, or
/// trait declaration).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// The `impl` (or `trait`) type this function belongs to, generics
    /// stripped: `Hypervisor` for `impl<S: Scheduler> … for Hypervisor<S>`.
    pub owner: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` blocks.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range `[start, end)` of the body (inside the braces).
    /// `start == end` for bodyless declarations.
    pub body: (usize, usize),
    /// True when the `fn` keyword sits inside a `#[cfg(test)] mod`.
    pub in_test: bool,
}

impl FnItem {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// `use` aliases: local name → original last path segment. Identity
    /// imports (`use a::B;`) are recorded too, so `B` resolves even when
    /// the local and original names coincide.
    pub uses: BTreeMap<String, String>,
    /// `struct` and `enum` items.
    pub structs: Vec<StructItem>,
    /// `trait` names declared in this file.
    pub traits: Vec<String>,
    /// `fn` items in source order.
    pub fns: Vec<FnItem>,
}

/// Keywords and literals that can precede `(` without being a call.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "fn", "let", "else", "move",
    "ref", "mut", "pub", "where", "impl", "dyn", "box", "true", "false",
];

/// Is this identifier a plausible call target (not a keyword)?
pub fn is_callable_ident(text: &str) -> bool {
    !NON_CALL_IDENTS.contains(&text)
        && text.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
}

struct Ctx {
    owner: String,
    trait_name: Option<String>,
    /// Brace depth *outside* the block: the context pops when depth
    /// returns to this value.
    depth: usize,
}

/// Parse one lexed file into items.
pub fn parse_file(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut out = ParsedFile::default();
    let mut stack: Vec<Ctx> = Vec::new();
    let mut depth: usize = 0;
    let mut i = 0;

    while i < toks.len() {
        let text = toks[i].text.as_str();
        match text {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                while stack.last().is_some_and(|c| c.depth >= depth) {
                    stack.pop();
                }
                i += 1;
            }
            "use" => i = parse_use(toks, i + 1, &mut out.uses),
            "impl" => {
                let (ctx, next) = parse_impl_header(toks, i + 1, depth);
                if let Some(ctx) = ctx {
                    stack.push(ctx);
                }
                i = next;
            }
            "trait" => {
                if let Some(name) = toks.get(i + 1).map(|t| t.text.clone()) {
                    if is_callable_ident(&name) {
                        out.traits.push(name.clone());
                        stack.push(Ctx { owner: name, trait_name: None, depth });
                    }
                }
                i += 1;
            }
            "struct" | "enum" => {
                i = parse_struct(toks, i, text == "struct", &mut out.structs);
            }
            "fn" => {
                i = parse_fn(lexed, i, stack.last(), &mut out.fns);
            }
            _ => i += 1,
        }
    }
    out
}

/// Parse a `use …;` statement starting after the keyword, recording
/// every imported name (aliased or not) into `uses`.
fn parse_use(toks: &[Token], mut i: usize, uses: &mut BTreeMap<String, String>) -> usize {
    let mut last_ident: Option<String> = None;
    while i < toks.len() {
        match toks[i].text.as_str() {
            ";" => {
                record_use(uses, last_ident.take(), None);
                return i + 1;
            }
            "as" => {
                let alias = toks.get(i + 1).map(|t| t.text.clone());
                record_use(uses, last_ident.take(), alias);
                i += 2;
            }
            "," | "}" => {
                record_use(uses, last_ident.take(), None);
                i += 1;
            }
            t if is_callable_ident(t) => {
                last_ident = Some(t.to_owned());
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn record_use(uses: &mut BTreeMap<String, String>, target: Option<String>, alias: Option<String>) {
    if let Some(target) = target {
        // `self` closes `use a::b::{self, C}`; `*` globs are skipped.
        if target == "self" || target == "crate" || target == "super" {
            return;
        }
        let local = alias.unwrap_or_else(|| target.clone());
        uses.insert(local, target);
    }
}

/// Parse the header of an `impl` block: generics, the first type path,
/// an optional `for` and second path, up to (but not past) the opening
/// brace. Returns the context to push and the resume index.
fn parse_impl_header(toks: &[Token], mut i: usize, depth: usize) -> (Option<Ctx>, usize) {
    i = skip_angle_group(toks, i);
    let (first, next) = read_type_path(toks, i);
    i = next;
    let mut owner = first;
    let mut trait_name = None;
    if toks.get(i).is_some_and(|t| t.text == "for") {
        let (second, next) = read_type_path(toks, skip_ref_prefix(toks, i + 1));
        trait_name = owner.take();
        owner = second;
        i = next;
    }
    match owner {
        Some(owner) => (Some(Ctx { owner, trait_name, depth }), i),
        None => (None, i),
    }
}

/// Skip `&`, `&mut`, `dyn` prefixes before a type path.
fn skip_ref_prefix(toks: &[Token], mut i: usize) -> usize {
    while toks.get(i).is_some_and(|t| matches!(t.text.as_str(), "&" | "mut" | "dyn" | "'")) {
        i += 1;
    }
    i
}

/// Read a type path (`a::b::Type<G>`), returning its last segment with
/// generics stripped, plus the resume index.
fn read_type_path(toks: &[Token], mut i: usize) -> (Option<String>, usize) {
    let mut last: Option<String> = None;
    let mut at = skip_ref_prefix(toks, i);
    while at < toks.len() {
        let t = toks[at].text.as_str();
        if is_callable_ident(t) {
            last = Some(t.to_owned());
            at += 1;
            at = skip_angle_group(toks, at);
            if toks.get(at).is_some_and(|t| t.text == ":")
                && toks.get(at + 1).is_some_and(|t| t.text == ":")
            {
                at += 2;
                continue;
            }
        }
        break;
    }
    i = at.max(i);
    (last, i)
}

/// If `toks[i]` opens a `<…>` group, skip past its balanced close.
fn skip_angle_group(toks: &[Token], i: usize) -> usize {
    if !toks.get(i).is_some_and(|t| t.text == "<") {
        return i;
    }
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            // A `{` or `;` means this `<` was a comparison, not generics.
            "{" | ";" => return i,
            _ => {}
        }
        j += 1;
    }
    i
}

/// Parse a `struct`/`enum` item starting at the keyword.
fn parse_struct(toks: &[Token], kw: usize, is_struct: bool, out: &mut Vec<StructItem>) -> usize {
    let Some(name_tok) = toks.get(kw + 1) else { return kw + 1 };
    if !is_callable_ident(&name_tok.text) {
        return kw + 1;
    }
    let mut item =
        StructItem { name: name_tok.text.clone(), fields: Vec::new(), line: toks[kw].line };
    let mut i = skip_angle_group(toks, kw + 2);
    // Tuple struct or unit struct: no named fields to record.
    if !toks.get(i).is_some_and(|t| t.text == "{") {
        out.push(item);
        return kw + 1;
    }
    if is_struct {
        i += 1; // inside the braces
        let mut brace = 1usize;
        while i < toks.len() && brace > 0 {
            match toks[i].text.as_str() {
                "{" => brace += 1,
                "}" => brace -= 1,
                ":" if brace == 1 => {
                    // `field : Type` — field is the previous ident, the
                    // type head is the last segment of the path after.
                    let field = toks.get(i.wrapping_sub(1)).map(|t| t.text.clone());
                    let is_path_sep = toks.get(i + 1).is_some_and(|t| t.text == ":");
                    if let (Some(field), false) = (field, is_path_sep) {
                        if is_callable_ident(&field) {
                            let (head, _) = read_type_path(toks, i + 1);
                            if let Some(head) = head {
                                item.fields.push((field, head));
                            }
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    out.push(item);
    // Resume at the keyword + 1: the main loop's depth tracking must see
    // the braces we looked ahead into.
    kw + 1
}

/// Parse a `fn` item starting at the keyword: name, then scan to the
/// body `{` (or a `;` for bodyless declarations) and record the body
/// token range. Returns the index to resume the main scan at (just past
/// the name, so brace tracking stays with the main loop).
fn parse_fn(lexed: &Lexed, kw: usize, ctx: Option<&Ctx>, out: &mut Vec<FnItem>) -> usize {
    let toks = &lexed.tokens;
    let Some(name_tok) = toks.get(kw + 1) else { return kw + 1 };
    if !is_callable_ident(&name_tok.text) {
        return kw + 1;
    }
    // Find the body: first `{` before any `;`. Parens and angle groups
    // in between (args, return type, where clause) contain neither.
    let mut j = kw + 2;
    let mut body = (0usize, 0usize);
    while j < toks.len() {
        match toks[j].text.as_str() {
            ";" => break,
            "{" => {
                let mut depth = 1usize;
                let start = j + 1;
                let mut k = start;
                while k < toks.len() && depth > 0 {
                    match toks[k].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                body = (start, k.saturating_sub(1));
                break;
            }
            _ => j += 1,
        }
    }
    out.push(FnItem {
        name: name_tok.text.clone(),
        owner: ctx.map(|c| c.owner.clone()),
        trait_name: ctx.and_then(|c| c.trait_name.clone()),
        line: toks[kw].line,
        body,
        in_test: lexed.in_test.get(kw).copied().unwrap_or(false),
    });
    kw + 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file(&lex(src))
    }

    #[test]
    fn extracts_impl_methods_with_generics_stripped() {
        let src = "impl<S: Scheduler> Handler<HvEvent> for Hypervisor<S> {\n  fn handle(&mut self) { self.drive(); }\n}\nimpl Hypervisor<S> { fn drive(&mut self) {} }\nfn free() {}\n";
        let parsed = parse(src);
        let quals: Vec<String> = parsed.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(quals, ["Hypervisor::handle", "Hypervisor::drive", "free"]);
        assert_eq!(parsed.fns[0].trait_name.as_deref(), Some("Handler"));
        assert_eq!(parsed.fns[1].trait_name, None);
    }

    #[test]
    fn trait_decls_and_default_methods_get_the_trait_as_owner() {
        let src = "pub trait Scheduler {\n  fn next_reconfig(&mut self) -> u32;\n  fn pipelining(&self) -> bool { false }\n}\n";
        let parsed = parse(src);
        assert_eq!(parsed.traits, ["Scheduler"]);
        let quals: Vec<String> = parsed.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(quals, ["Scheduler::next_reconfig", "Scheduler::pipelining"]);
        assert_eq!(parsed.fns[0].body.0, parsed.fns[0].body.1, "decl has no body");
        assert!(parsed.fns[1].body.1 > parsed.fns[1].body.0, "default method has one");
    }

    #[test]
    fn impl_context_pops_at_the_closing_brace() {
        let src = "impl A { fn x(&self) {} }\nfn y() {}\nimpl B { fn z(&self) {} }\n";
        let parsed = parse(src);
        let quals: Vec<String> = parsed.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(quals, ["A::x", "y", "B::z"]);
    }

    #[test]
    fn struct_fields_record_type_heads() {
        let src = "pub struct Report {\n  pub counts: std::collections::HashMap<String, u64>,\n  pub name: String,\n  items: Vec<Slot<E>>,\n}\nenum Kind { A, B }\n";
        let parsed = parse(src);
        assert_eq!(parsed.structs.len(), 2);
        assert_eq!(
            parsed.structs[0].fields,
            [
                ("counts".to_owned(), "HashMap".to_owned()),
                ("name".to_owned(), "String".to_owned()),
                ("items".to_owned(), "Vec".to_owned()),
            ]
        );
        assert_eq!(parsed.structs[1].name, "Kind");
        assert!(parsed.structs[1].fields.is_empty());
    }

    #[test]
    fn use_aliases_resolve_renames() {
        let src = "use std::collections::{BTreeMap, HashMap as Map};\nuse crate::queue::EventQueue;\n";
        let parsed = parse(src);
        assert_eq!(parsed.uses.get("Map").map(String::as_str), Some("HashMap"));
        assert_eq!(parsed.uses.get("BTreeMap").map(String::as_str), Some("BTreeMap"));
        assert_eq!(parsed.uses.get("EventQueue").map(String::as_str), Some("EventQueue"));
    }

    #[test]
    fn test_module_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}\n";
        let parsed = parse(src);
        assert_eq!(parsed.fns.len(), 2);
        assert!(!parsed.fns[0].in_test);
        assert!(parsed.fns[1].in_test);
    }

    #[test]
    fn nested_fns_are_recorded_without_breaking_the_outer_item() {
        let src = "impl A {\n  fn outer(&self) { fn inner() {} inner(); }\n  fn after(&self) {}\n}\n";
        let parsed = parse(src);
        let quals: Vec<String> = parsed.fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(quals, ["A::outer", "A::inner", "A::after"]);
    }
}
