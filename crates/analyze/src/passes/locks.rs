//! **lock-discipline**: the cluster worker pool must never nest `Mutex`
//! acquisitions or call back into workspace code while holding a guard.
//!
//! Scope: functions in `crates/cluster/` (the only crate that takes
//! locks on the simulation side; the observability registries have their
//! own internal discipline and deliberately stay out of scope here —
//! DESIGN.md §16).
//!
//! The pass distinguishes *statement-temporary* locks
//! (`queue.lock().expect("…").pop_front()` — the guard dies at the end
//! of the statement) from *bound guards*
//! (`let guard = queue.lock().expect("…");`). While a bound guard is
//! live (until its block closes or an explicit `drop(guard)`), the pass
//! flags:
//!
//! * any further `.lock(` acquisition (nested locking — deadlock-prone
//!   with more than one lock order), including a second `.lock(` in a
//!   single statement, and
//! * any call that resolves to a workspace function (lock-across-call —
//!   the callee may block, allocate, or itself lock).

use std::collections::BTreeSet;

use crate::callgraph::Model;
use crate::passes::{skip_group, Finding, Pass, PassOutcome};

/// See module docs.
pub struct LockDiscipline;

/// Path prefix this pass applies to.
const SCOPE: &str = "crates/cluster/";

impl Pass for LockDiscipline {
    fn id(&self) -> &'static str {
        "lock-discipline"
    }
    fn description(&self) -> &'static str {
        "no nested Mutex acquisition or workspace call while holding a guard in cluster code"
    }
    fn run(&self, model: &Model, prune: &BTreeSet<usize>) -> PassOutcome {
        let mut findings = Vec::new();
        for (id, node) in model.fns.iter().enumerate() {
            if !model.path_of(id).starts_with(SCOPE) || prune.contains(&id) {
                continue;
            }
            scan_fn(model, id, &node.qual_name(), &mut findings);
        }
        PassOutcome { findings, walk: Default::default() }
    }
}

/// A live `let`-bound guard.
struct Guard {
    name: String,
    /// Brace depth (relative to the body start) of the binding; the
    /// guard dies when depth drops below this.
    depth: usize,
}

fn scan_fn(model: &Model, id: usize, qual: &str, findings: &mut Vec<Finding>) {
    let node = &model.fns[id];
    let toks = &model.files[node.file].lexed.tokens;
    let (start, end) = node.item.body;
    let end = end.min(toks.len());

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // The pending `let` binding of the current statement, if any.
    let mut stmt_let: Option<String> = None;
    // Token index of a `.lock(` seen in the current statement.
    let mut stmt_lock: Option<usize> = None;

    let mut push = |line: u32, message: String| {
        findings.push(Finding {
            pass: "lock-discipline".to_owned(),
            path: model.path_of(id).to_owned(),
            line,
            function: qual.to_owned(),
            message,
        });
    };

    let mut k = start;
    while k < end {
        let text = toks[k].text.as_str();
        match text {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            ";" => {
                // Statement end: a pending `let x = ….lock()…;` whose
                // chain we validated commits a guard.
                if let (Some(name), Some(lock_at)) = (stmt_let.take(), stmt_lock.take()) {
                    if binds_guard(toks, lock_at, k) {
                        guards.push(Guard { name, depth });
                    }
                }
                stmt_let = None;
                stmt_lock = None;
            }
            "let" => {
                let mut n = k + 1;
                if toks.get(n).is_some_and(|t| t.text == "mut") {
                    n += 1;
                }
                stmt_let = toks.get(n).map(|t| t.text.clone());
            }
            "lock"
                if k > start
                    && toks[k - 1].text == "."
                    && toks.get(k + 1).is_some_and(|t| t.text == "(") =>
            {
                if !guards.is_empty() {
                    push(
                        toks[k].line,
                        format!(
                            "`.lock()` while already holding `{}` — nested Mutex acquisition",
                            guards.last().map(|g| g.name.as_str()).unwrap_or("?")
                        ),
                    );
                } else if stmt_lock.is_some() {
                    push(
                        toks[k].line,
                        "second `.lock()` in one statement — nested Mutex acquisition".to_owned(),
                    );
                }
                stmt_lock.get_or_insert(k);
            }
            "drop"
                if toks.get(k + 1).is_some_and(|t| t.text == "(")
                    && toks.get(k + 2).is_some() =>
            {
                let dropped = toks[k + 2].text.clone();
                guards.retain(|g| g.name != dropped);
            }
            _ => {
                // A workspace call while a guard is live.
                if !guards.is_empty()
                    && text != "lock"
                    && text != "drop"
                    && model.is_call_site(id, k)
                    && !model.resolve_call(id, k).is_empty()
                {
                    push(
                        toks[k].line,
                        format!(
                            "call to `{text}` while holding `{}` — lock held across a call",
                            guards.last().map(|g| g.name.as_str()).unwrap_or("?")
                        ),
                    );
                }
            }
        }
        k += 1;
    }
}

/// Does the `.lock(` at `lock_at` bind a guard that outlives its
/// statement? True when the chain after the lock call consists only of
/// `.expect(…)`/`.unwrap()` adapters up to the statement end `stmt_end`
/// — anything else (`.pop_front()`, indexing, a field) consumes the
/// guard as a temporary.
fn binds_guard(toks: &[crate::lex::Token], lock_at: usize, stmt_end: usize) -> bool {
    // Past the `lock ( … )` group.
    let mut k = skip_group(toks, lock_at + 1);
    loop {
        if k >= stmt_end {
            return true;
        }
        match toks[k].text.as_str() {
            ";" => return true,
            "." => {
                let name = toks.get(k + 1).map(|t| t.text.as_str());
                if matches!(name, Some("expect") | Some("unwrap")) {
                    k = skip_group(toks, k + 2);
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Model, ModelFile};
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn model(src: &str) -> Model {
        let lexed = lex(src);
        let parsed = parse_file(&lexed);
        Model::build(vec![ModelFile {
            path: "crates/cluster/src/pool.rs".into(),
            lexed: lex(src),
            parsed,
        }])
    }

    fn run(src: &str) -> Vec<Finding> {
        LockDiscipline.run(&model(src), &BTreeSet::new()).findings
    }

    #[test]
    fn statement_temporary_locks_are_clean() {
        let findings = run(
            "fn worker(queue: &Q, results: &R) {\n  let next = queue.lock().expect(\"queue\").pop_front();\n  let value = compute();\n  results.lock().expect(\"results\")[0] = value;\n}\nfn compute() -> u32 { 1 }\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn nested_acquisition_under_a_bound_guard_is_flagged() {
        let findings = run(
            "fn drain(a: &Q, b: &Q) {\n  let first = a.lock().expect(\"a\");\n  let second = b.lock().expect(\"b\");\n}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("nested Mutex acquisition"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn workspace_call_under_a_guard_is_flagged_but_drop_releases() {
        let findings = run(
            "fn hold(a: &Q) {\n  let guard = a.lock().unwrap();\n  helper();\n  drop(guard);\n  helper();\n}\nfn helper() {}\n",
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("lock held across a call"));
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn guard_dies_with_its_block() {
        let findings = run(
            "fn scoped(a: &Q) {\n  {\n    let guard = a.lock().unwrap();\n    let n = guard.len();\n    let _ = n;\n  }\n  helper();\n}\nfn helper() {}\n",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn two_locks_in_one_statement_are_flagged() {
        let findings =
            run("fn both(a: &Q, b: &Q) {\n  compare(a.lock().unwrap(), b.lock().unwrap());\n}\nfn compare(x: G, y: G) {}\n");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("second `.lock()`"));
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let lexed = lex("fn hold(a: &Q) { let g = a.lock().unwrap(); helper(); }\nfn helper() {}\n");
        let parsed = parse_file(&lexed);
        let m = Model::build(vec![ModelFile {
            path: "crates/obs/src/registry.rs".into(),
            lexed,
            parsed,
        }]);
        assert!(LockDiscipline.run(&m, &BTreeSet::new()).findings.is_empty());
    }
}
