//! **determinism-taint**: no nondeterminism source may reach the merge
//! and render paths that must be byte-identical across runs and thread
//! counts (PR 4/7's cluster-merge contract).
//!
//! Roots: every method of `Report`, `ClusterReport`, and `MonitorDoc`
//! impls, plus the workspace's merge/render family by name
//! (`merge_from`, `merge_max`, `merged`, `render_prometheus`,
//! `render_monitor`).
//!
//! Flagged sources in reached functions:
//!
//! * iteration over a `HashMap`/`HashSet`-typed field of the impl's own
//!   struct (`self.field.iter()` and friends — field types come from the
//!   parsed struct items),
//! * local `HashMap`/`HashSet` construction combined with iteration in
//!   the same function,
//! * wall-clock reads (`Instant`, `SystemTime`, `std::time`),
//! * thread identity (`ThreadId`, `thread::current`,
//!   `available_parallelism`).

use std::collections::BTreeSet;

use crate::callgraph::Model;
use crate::lex::{Token, TokenKind};
use crate::passes::{Finding, Pass, PassOutcome};

/// Types whose impl methods are merge/render roots.
const ROOT_TYPES: &[&str] = &["Report", "ClusterReport", "MonitorDoc"];

/// Merge/render functions rooted by bare name, wherever they live.
const ROOT_NAMES: &[&str] =
    &["merge_from", "merge_max", "merged", "render_prometheus", "render_monitor"];

/// Unordered containers whose iteration order is nondeterministic.
const UNORDERED: &[&str] = &["HashMap", "HashSet"];

/// Iteration methods that expose container order.
const ITERATION: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain"];

/// See module docs.
pub struct DeterminismTaint;

impl Pass for DeterminismTaint {
    fn id(&self) -> &'static str {
        "determinism-taint"
    }
    fn description(&self) -> &'static str {
        "no unordered iteration, wall-clock, or thread-identity source reaches merge/render code"
    }
    fn run(&self, model: &Model, prune: &BTreeSet<usize>) -> PassOutcome {
        let mut roots: Vec<usize> = Vec::new();
        for (id, node) in model.fns.iter().enumerate() {
            let owner_rooted =
                node.item.owner.as_deref().is_some_and(|o| ROOT_TYPES.contains(&o));
            if owner_rooted || ROOT_NAMES.contains(&node.item.name.as_str()) {
                roots.push(id);
            }
        }

        let walk = model.reach(&roots, prune);
        let mut findings = Vec::new();
        for &id in walk.keys() {
            if prune.contains(&id) {
                continue;
            }
            let chain = model.chain(&walk, id);
            let body = model.body_tokens(id);
            let owner = model.fns[id].item.owner.as_deref();
            for (line, what) in taint_sites(model, owner, body) {
                findings.push(Finding {
                    pass: self.id().to_owned(),
                    path: model.path_of(id).to_owned(),
                    line,
                    function: model.fns[id].qual_name(),
                    message: format!("{what} (reached via {chain})"),
                });
            }
        }
        PassOutcome { findings, walk }
    }
}

/// Scan one body for nondeterminism sources: (line, description).
fn taint_sites(model: &Model, owner: Option<&str>, toks: &[Token]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let mut local_unordered: Option<(u32, &str)> = None;
    let mut iterates = false;

    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        let at = |off: usize| toks.get(k + off).map(|t| t.text.as_str());
        let prev = |off: usize| k.checked_sub(off).map(|p| toks[p].text.as_str());

        if UNORDERED.contains(&text) {
            local_unordered.get_or_insert((t.line, if text == "HashMap" { "HashMap" } else { "HashSet" }));
        }
        if ITERATION.contains(&text) && prev(1) == Some(".") && at(1) == Some("(") {
            iterates = true;
            // `self.field.iter()` where the field's declared type head is
            // an unordered container.
            if prev(3) == Some(".") && prev(4) == Some("self") {
                if let (Some(owner), Some(field)) = (owner, prev(2)) {
                    let head = model
                        .struct_fields
                        .get(owner)
                        .and_then(|fields| fields.get(field))
                        .map(String::as_str);
                    if head.is_some_and(|h| UNORDERED.contains(&h)) {
                        out.push((
                            t.line,
                            format!(
                                "`self.{field}.{text}()` iterates a {} field in unspecified order",
                                head.unwrap_or("?")
                            ),
                        ));
                    }
                }
            }
        }
        match text {
            "Instant" | "SystemTime" => {
                out.push((t.line, format!("wall-clock `{text}` read")));
            }
            "time" if prev(2) == Some("std") && prev(1) == Some(":") => {
                out.push((t.line, "wall-clock `std::time` use".to_owned()));
            }
            "ThreadId" | "available_parallelism" => {
                out.push((t.line, format!("thread-identity `{text}` source")));
            }
            "current" if prev(3) == Some("thread") => {
                out.push((t.line, "thread-identity `thread::current()` source".to_owned()));
            }
            _ => {}
        }
    }

    if let (Some((line, which)), true) = (local_unordered, iterates) {
        out.push((
            line,
            format!("local `{which}` constructed and iterated in unspecified order"),
        ));
    }
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{Model, ModelFile};
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn model(src: &str) -> Model {
        let lexed = lex(src);
        let parsed = parse_file(&lexed);
        Model::build(vec![ModelFile { path: "crates/x/src/lib.rs".into(), lexed: lex(src), parsed }])
    }

    #[test]
    fn field_iteration_and_clock_sources_are_flagged() {
        let m = model(
            "use std::collections::HashMap;\npub struct Report { counts: HashMap<String, u64>, names: Vec<String> }\nimpl Report {\n  fn merged(&self) -> u64 {\n    let mut total = 0;\n    for (_, v) in self.counts.iter() { total += v; }\n    for n in self.names.iter() { let _ = n; }\n    total\n  }\n  fn stamp(&self) { let t = Instant::now(); let _ = t; }\n}\n",
        );
        let pass = DeterminismTaint;
        let outcome = pass.run(&m, &BTreeSet::new());
        let msgs: Vec<&str> = outcome.findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("self.counts.iter()")), "{msgs:?}");
        assert!(
            !msgs.iter().any(|m| m.contains("self.names")),
            "Vec fields iterate deterministically: {msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("Instant")), "{msgs:?}");
    }

    #[test]
    fn sources_outside_the_merge_reach_are_ignored() {
        let m = model(
            "impl Other { fn helper(&self) { let t = Instant::now(); let _ = t; } }\nimpl Report { fn merged(&self) -> u64 { 0 } }\n",
        );
        let outcome = DeterminismTaint.run(&m, &BTreeSet::new());
        assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
    }

    #[test]
    fn thread_identity_in_reached_helpers_is_flagged_with_a_chain() {
        let m = model(
            "impl ClusterReport { fn merged(&self) { tag(); } }\nfn tag() { let id = std::thread::current(); let _ = id; }\n",
        );
        let outcome = DeterminismTaint.run(&m, &BTreeSet::new());
        assert_eq!(outcome.findings.len(), 1, "{:?}", outcome.findings);
        let chained = outcome
            .findings
            .iter()
            .find(|f| f.function == "tag")
            .expect("helper finding");
        assert!(chained.message.contains("ClusterReport::merged -> tag"), "{}", chained.message);
    }
}
