//! **hot-path-no-alloc**: nothing reachable from the per-event hot path
//! may allocate.
//!
//! Roots (PR 6's alloc-free contract): the hypervisor's per-event entry
//! point (`Hypervisor::handle` — the issue's `Hypervisor::tick` is also
//! accepted should one appear), the per-decision `Scheduler` trait hooks
//! (`next_reconfig`, `on_arrival`, `on_retire`, `pipelining`), and the
//! event-queue operations (`EventQueue::{push, pop, pop_at_or_before}`).
//!
//! Flagged allocation sites in reached functions: `Box::new`/`Rc::new`/
//! `Arc::new`, `format!`, `vec!`, `String::from`, `.to_string()`,
//! `.to_owned()`, `.collect()`, and single-argument `.push(…)`/
//! `.push_back(…)` with no capacity discipline in the preceding window.
//! Two-plus-argument `push` calls are the event queue's `push(at, ev)`
//! signature, not `Vec::push`, and are exempt. `.extend(…)` onto cleared
//! reusable buffers is a documented false negative (DESIGN.md §16).

use std::collections::BTreeSet;

use crate::callgraph::Model;
use crate::lex::{Token, TokenKind};
use crate::passes::{top_level_commas, Finding, Pass, PassOutcome};

/// Hot-path roots by exact qualified name.
const ROOT_QUALS: &[&str] = &[
    "Hypervisor::tick",
    "Hypervisor::handle",
    "EventQueue::push",
    "EventQueue::pop",
    "EventQueue::pop_at_or_before",
];

/// The per-decision `Scheduler` trait hooks (the remaining trait methods
/// — `name`, `attach_metrics` — run at setup or report time).
const SCHEDULER_HOT_METHODS: &[&str] = &["next_reconfig", "on_arrival", "on_retire", "pipelining"];

/// Tokens whose presence in the lookback window blesses a `push` as
/// capacity-disciplined (mirrors the lint rule's buffer heuristic).
const CAPACITY_MARKERS: &[&str] = &["capacity", "reserve"];
const PUSH_LOOKBACK: usize = 25;

/// See module docs.
pub struct HotPathNoAlloc;

impl Pass for HotPathNoAlloc {
    fn id(&self) -> &'static str {
        "hot-path-no-alloc"
    }
    fn description(&self) -> &'static str {
        "no allocation site is reachable from the hypervisor/scheduler/event-queue hot path"
    }
    fn run(&self, model: &Model, prune: &BTreeSet<usize>) -> PassOutcome {
        let mut roots: Vec<usize> = Vec::new();
        for qual in ROOT_QUALS {
            roots.extend(model.by_qual_name(qual));
        }
        for id in model.trait_impl_methods("Scheduler") {
            if SCHEDULER_HOT_METHODS.contains(&model.fns[id].item.name.as_str()) {
                roots.push(id);
            }
        }
        roots.sort_unstable();
        roots.dedup();

        let walk = model.reach(&roots, prune);
        let mut findings = Vec::new();
        for &id in walk.keys() {
            if prune.contains(&id) {
                continue;
            }
            let chain = model.chain(&walk, id);
            let body = model.body_tokens(id);
            for (line, what) in alloc_sites(body) {
                findings.push(Finding {
                    pass: self.id().to_owned(),
                    path: model.path_of(id).to_owned(),
                    line,
                    function: model.fns[id].qual_name(),
                    message: format!("{what} on the hot path (reached via {chain})"),
                });
            }
        }
        PassOutcome { findings, walk }
    }
}

/// Scan a body token slice for allocation sites: (line, description).
fn alloc_sites(toks: &[Token]) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for k in 0..toks.len() {
        let t = &toks[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text.as_str();
        let at = |off: usize| toks.get(k + off).map(|t| t.text.as_str());
        let prev = k.checked_sub(1).map(|p| toks[p].text.as_str());
        match text {
            "Box" | "Rc" | "Arc" if at(1) == Some(":") && at(2) == Some(":") && at(3) == Some("new") => {
                out.push((t.line, format!("`{text}::new` heap allocation")));
            }
            "String" if at(1) == Some(":") && at(2) == Some(":") && at(3) == Some("from") => {
                out.push((t.line, "`String::from` allocation".to_owned()));
            }
            "format" | "vec" if at(1) == Some("!") => {
                out.push((t.line, format!("`{text}!` allocation")));
            }
            "to_string" | "to_owned" if prev == Some(".") && at(1) == Some("(") => {
                out.push((t.line, format!("`.{text}()` allocation")));
            }
            "collect" if prev == Some(".") && at(1) == Some("(") => {
                out.push((t.line, "`.collect()` allocation".to_owned()));
            }
            "push" | "push_back" if prev == Some(".") && at(1) == Some("(") => {
                // `push(at, event)` and friends are the event-queue
                // signature, not `Vec::push`.
                if top_level_commas(toks, k + 1) > 0 {
                    continue;
                }
                let window_start = k.saturating_sub(PUSH_LOOKBACK);
                let guarded = toks[window_start..k].iter().any(|w| {
                    CAPACITY_MARKERS.iter().any(|m| w.text.contains(m))
                });
                if !guarded {
                    out.push((
                        t.line,
                        format!("un-capacity-guarded `.{text}(…)` (may grow the buffer)"),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    #[test]
    fn alloc_sites_catch_the_catalog_and_respect_the_exemptions() {
        let lexed = lex(
            "let a = Box::new(1);\nlet s = format!(\"x\");\nlet t = v.to_string();\nlet c: Vec<u32> = it.collect();\nqueue.push(at, event);\nself.buf.push(x);\nlet mut w = Vec::with_capacity(n); w.push(y);\nlet s = String::from(\"x\");\n",
        );
        let sites = alloc_sites(&lexed.tokens);
        let lines: Vec<u32> = sites.iter().map(|(l, _)| *l).collect();
        // line 5 (two-arg push) and line 7 (capacity-guarded push) exempt.
        assert_eq!(lines, [1, 2, 3, 4, 6, 8]);
        assert!(sites[4].1.contains("un-capacity-guarded"));
    }
}
