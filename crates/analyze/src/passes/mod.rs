//! The deep-analysis pass framework: reachability-based dataflow checks
//! over the whole-workspace call graph, a two-level suppression scheme,
//! and the driver behind `nimblock-analyze deep`.
//!
//! Three passes ship today (see `DESIGN.md` §16 for semantics and known
//! boundaries):
//!
//! * [`hot_path::HotPathNoAlloc`] — no allocation reachable from the
//!   hypervisor/scheduler/event-queue hot path,
//! * [`determinism::DeterminismTaint`] — no unordered-container
//!   iteration, wall-clock, or thread-identity source reachable from
//!   report/monitor merge and render code,
//! * [`locks::LockDiscipline`] — no nested `Mutex` acquisition or
//!   lock-held calls in the cluster worker pool.
//!
//! Findings are suppressed either inline (`// nimblock: allow(<pass>)`,
//! same mechanism as the lint rules) or through the committed
//! `analyze-suppressions.txt` at the workspace root, whose entries name
//! a function and carry a mandatory justification; `subtree` entries
//! additionally stop the reachability walk at that function — the
//! "blessed setup path" device for per-application admission work that
//! is allowed to allocate. Every suppression is audited: one that no
//! longer suppresses anything is itself reported as a finding.

pub mod determinism;
pub mod hot_path;
pub mod locks;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::callgraph::{Model, ModelFile, Walk};
use crate::explain::ExplainFormat;
use crate::lex::{lex, Lexed, Token};
use crate::lint::collect_files;
use crate::parse::parse_file;
use crate::rules::{all_rules, FileCtx, LintDiag};
use nimblock_ser::impl_json_struct;

/// One deep-analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass id (kebab-case, e.g. `hot-path-no-alloc`).
    pub pass: String,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Qualified name of the containing function.
    pub function: String,
    /// What was found, with the call chain that reaches it.
    pub message: String,
}
impl_json_struct!(Finding { pass, path, line, function, message });

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {} — {}", self.path, self.line, self.pass, self.function, self.message)
    }
}

/// A suppression that no longer suppresses any finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedSuppression {
    /// File holding the suppression (a source file for inline allows,
    /// `analyze-suppressions.txt` for file entries).
    pub path: String,
    /// 1-based line of the suppression.
    pub line: u32,
    /// The rule or pass the suppression names.
    pub rule: String,
}
impl_json_struct!(UnusedSuppression { path, line, rule });

/// What one pass produced: findings (pre-suppression) and the
/// reachability walk it performed (empty for local passes).
#[derive(Debug, Default)]
pub struct PassOutcome {
    /// Raw findings; the driver applies suppressions.
    pub findings: Vec<Finding>,
    /// The functions reached, for suppression accounting and `--graph-out`.
    pub walk: Walk,
}

/// A deep-analysis pass over the program model.
pub trait Pass {
    /// Stable kebab-case id, used in findings and suppressions.
    fn id(&self) -> &'static str;
    /// One-line description for the catalog.
    fn description(&self) -> &'static str;
    /// Run over the model; `prune` holds function ids whose subtrees are
    /// blessed (reached but neither scanned nor expanded).
    fn run(&self, model: &Model, prune: &BTreeSet<usize>) -> PassOutcome;
}

/// The full pass set, in catalog order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(hot_path::HotPathNoAlloc),
        Box::new(determinism::DeterminismTaint),
        Box::new(locks::LockDiscipline),
    ]
}

/// Name of the committed suppression file at the workspace root.
pub const SUPPRESSION_FILE: &str = "analyze-suppressions.txt";

/// One entry of the committed suppression file.
#[derive(Debug, Clone)]
pub struct SuppressionEntry {
    /// Pass id the entry applies to.
    pub pass: String,
    /// Workspace-relative path of the function's file.
    pub path: String,
    /// Qualified function name (`Type::fn` or `fn`).
    pub function: String,
    /// True when the entry also stops the reachability walk here.
    pub subtree: bool,
    /// The mandatory one-line justification.
    pub justification: String,
    /// 1-based line in the suppression file.
    pub line: u32,
}

/// The parsed suppression file.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// Entries in file order.
    pub entries: Vec<SuppressionEntry>,
}

impl Suppressions {
    /// Parse the suppression file. A missing file is an empty set; a
    /// malformed line (or a missing justification) is an error — the
    /// justification is the point of the file.
    pub fn load(path: &Path) -> io::Result<Suppressions> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Suppressions::default()),
            Err(e) => return Err(e),
        };
        Self::parse(&text).map_err(|msg| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {msg}", path.display()))
        })
    }

    /// Parse suppression-file text: one entry per line,
    /// `<pass> <path> <function> [subtree] -- <justification>`.
    pub fn parse(text: &str) -> Result<Suppressions, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx as u32 + 1;
            let (head, justification) = line
                .split_once(" -- ")
                .ok_or_else(|| format!("line {lineno}: missing ` -- <justification>`"))?;
            let justification = justification.trim();
            if justification.is_empty() {
                return Err(format!("line {lineno}: empty justification"));
            }
            let fields: Vec<&str> = head.split_whitespace().collect();
            let (pass, path, function, subtree) = match fields.as_slice() {
                [pass, path, function] => (pass, path, function, false),
                [pass, path, function, "subtree"] => (pass, path, function, true),
                _ => {
                    return Err(format!(
                        "line {lineno}: expected `<pass> <path> <function> [subtree] -- <why>`"
                    ))
                }
            };
            entries.push(SuppressionEntry {
                pass: (*pass).to_owned(),
                path: (*path).to_owned(),
                function: (*function).to_owned(),
                subtree,
                justification: justification.to_owned(),
                line: lineno,
            });
        }
        Ok(Suppressions { entries })
    }

    /// Function ids whose subtrees are blessed for the given pass.
    pub fn prune_ids(&self, model: &Model, pass: &str) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for entry in self.entries.iter().filter(|e| e.subtree && e.pass == pass) {
            for (id, node) in model.fns.iter().enumerate() {
                if node.qual_name() == entry.function && model.path_of(id) == entry.path {
                    out.insert(id);
                }
            }
        }
        out
    }

    /// Index of the first entry suppressing this finding, if any.
    fn matching(&self, finding: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.pass == finding.pass && e.path == finding.path && e.function == finding.function
        })
    }
}

/// The outcome of a deep analysis run.
#[derive(Debug, Default)]
pub struct DeepReport {
    /// Pass findings that survived suppression, in (path, line) order.
    pub findings: Vec<Finding>,
    /// Lint findings (the `deep` command subsumes `lint`).
    pub lint: Vec<LintDiag>,
    /// Suppressions that no longer suppress anything.
    pub unused_suppressions: Vec<UnusedSuppression>,
    /// Findings silenced by inline allows or suppression-file entries.
    pub suppressed: usize,
    /// Files scanned (lint scope: sources, manifests, lockfile).
    pub files_scanned: usize,
    /// Functions in the program model (deep scope: non-test sources).
    pub functions: usize,
    /// Call edges in the program model.
    pub edges: usize,
}
impl_json_struct!(DeepReport {
    findings,
    lint,
    unused_suppressions,
    suppressed,
    files_scanned,
    functions,
    edges
});

impl DeepReport {
    /// True when nothing survived suppression and no suppression is stale.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.lint.is_empty() && self.unused_suppressions.is_empty()
    }

    /// Render in the requested format.
    pub fn render(&self, format: ExplainFormat) -> String {
        match format {
            ExplainFormat::Json => {
                let mut out = nimblock_ser::to_string_pretty(self);
                out.push('\n');
                out
            }
            ExplainFormat::Text => self.render_text(),
            ExplainFormat::Markdown => self.render_markdown(),
        }
    }

    fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{f}\n"));
        }
        for d in &self.lint {
            out.push_str(&format!("{d}\n"));
        }
        for u in &self.unused_suppressions {
            out.push_str(&format!(
                "{}:{}: unused suppression for `{}` — it no longer silences any finding\n",
                u.path, u.line, u.rule
            ));
        }
        out.push_str(&format!(
            "deep analysis: {} finding(s), {} lint finding(s), {} unused suppression(s), \
             {} suppressed — {} file(s), {} function(s), {} call edge(s)\n",
            self.findings.len(),
            self.lint.len(),
            self.unused_suppressions.len(),
            self.suppressed,
            self.files_scanned,
            self.functions,
            self.edges,
        ));
        out
    }

    fn render_markdown(&self) -> String {
        let mut out = String::from("# Deep analysis\n\n");
        out.push_str(&format!(
            "- **{}** pass finding(s), **{}** lint finding(s), **{}** unused suppression(s)\n",
            self.findings.len(),
            self.lint.len(),
            self.unused_suppressions.len()
        ));
        out.push_str(&format!(
            "- {} suppressed · {} files · {} functions · {} call edges\n",
            self.suppressed, self.files_scanned, self.functions, self.edges
        ));
        if !self.findings.is_empty() {
            out.push_str("\n## Pass findings\n\n| location | pass | function | finding |\n|---|---|---|---|\n");
            for f in &self.findings {
                out.push_str(&format!(
                    "| {}:{} | {} | {} | {} |\n",
                    f.path, f.line, f.pass, f.function, f.message
                ));
            }
        }
        if !self.lint.is_empty() {
            out.push_str("\n## Lint findings\n\n| location | rule | finding |\n|---|---|---|\n");
            for d in &self.lint {
                out.push_str(&format!("| {}:{} | {} | {} |\n", d.path, d.line, d.rule, d.message));
            }
        }
        if !self.unused_suppressions.is_empty() {
            out.push_str("\n## Unused suppressions\n\n| location | names |\n|---|---|\n");
            for u in &self.unused_suppressions {
                out.push_str(&format!("| {}:{} | {} |\n", u.path, u.line, u.rule));
            }
        }
        out
    }
}

/// A deep run: the report plus the DOT export of the analyzed subgraph.
#[derive(Debug)]
pub struct DeepAnalysis {
    /// The findings report.
    pub report: DeepReport,
    /// Graphviz DOT of every function reached by any reachability pass.
    pub dot: String,
}

/// Path components excluded from the program model (the lint rules still
/// scan them): test code is not on any hot path by construction, and the
/// adversarial fixtures under `tests/fixtures/analyze/` define decoy
/// hot-path symbols on purpose.
const MODEL_EXCLUDED_COMPONENTS: &[&str] = &["tests", "benches", "examples", "fixtures"];

fn in_model_scope(rel: &str) -> bool {
    !rel.split('/').any(|part| MODEL_EXCLUDED_COMPONENTS.contains(&part))
}

/// Run the deep analysis over a workspace tree: build the program model,
/// run every pass and every lint rule, apply and audit suppressions.
pub fn deep_tree(root: &Path) -> io::Result<DeepAnalysis> {
    let mut rel_paths = Vec::new();
    collect_files(root, root, &mut rel_paths)?;
    rel_paths.sort();

    let mut scanned: Vec<(String, String, Option<Lexed>)> = Vec::new();
    let mut model_files: Vec<ModelFile> = Vec::new();
    for rel in &rel_paths {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let lexed = rel_str.ends_with(".rs").then(|| lex(&source));
        if let Some(lexed) = &lexed {
            if in_model_scope(&rel_str) {
                let parsed = parse_file(lexed);
                model_files.push(ModelFile { path: rel_str.clone(), lexed: lex(&source), parsed });
            }
        }
        scanned.push((rel_str, source, lexed));
    }
    let model = Model::build(model_files);
    let suppressions = Suppressions::load(&root.join(SUPPRESSION_FILE))?;
    let mut entry_used = vec![false; suppressions.entries.len()];

    let mut report = DeepReport {
        files_scanned: scanned.len(),
        functions: model.fns.len(),
        edges: model.edge_count(),
        ..DeepReport::default()
    };

    // Raw findings per path, as (rule-or-pass id, line): the audit needs
    // pre-suppression knowledge of what fired where.
    let mut raw: BTreeMap<String, Vec<(String, u32)>> = BTreeMap::new();
    let lexed_by_path: BTreeMap<&str, &Lexed> =
        model.files.iter().map(|f| (f.path.as_str(), &f.lexed)).collect();

    let mut merged_walk: Walk = BTreeMap::new();
    for pass in all_passes() {
        let prune = suppressions.prune_ids(&model, pass.id());
        let outcome = pass.run(&model, &prune);
        for (&id, &parent) in &outcome.walk {
            merged_walk.entry(id).or_insert(parent);
        }
        // A subtree entry earns its keep by being reached at all.
        for (ei, entry) in suppressions.entries.iter().enumerate() {
            if entry.subtree
                && entry.pass == pass.id()
                && outcome.walk.keys().any(|&id| {
                    model.fns[id].qual_name() == entry.function
                        && model.path_of(id) == entry.path
                })
            {
                entry_used[ei] = true;
            }
        }
        for finding in outcome.findings {
            raw.entry(finding.path.clone())
                .or_default()
                .push((finding.pass.clone(), finding.line));
            let inline = lexed_by_path
                .get(finding.path.as_str())
                .map(|l| l.allowed(finding.line, &finding.pass))
                .unwrap_or(false);
            if inline {
                report.suppressed += 1;
            } else if let Some(ei) = suppressions.matching(&finding) {
                entry_used[ei] = true;
                report.suppressed += 1;
            } else {
                report.findings.push(finding);
            }
        }
    }

    // The lint rules, over the full tree (deep subsumes lint).
    let rules = all_rules();
    for (rel, source, lexed) in &scanned {
        let ctx = FileCtx { rel_path: rel, source, lexed: lexed.as_ref() };
        for rule in &rules {
            if !rule.applies_to(rel) {
                continue;
            }
            for finding in rule.check(&ctx) {
                raw.entry(rel.clone()).or_default().push((rule.id().to_owned(), finding.line));
                let allowed = lexed
                    .as_ref()
                    .map(|l| l.allowed(finding.line, rule.id()))
                    .unwrap_or(false);
                if allowed {
                    report.suppressed += 1;
                } else {
                    report.lint.push(finding);
                }
            }
        }
    }

    // Unused-suppression audit: inline allow sites…
    for (rel, _, lexed) in &scanned {
        let Some(lexed) = lexed else { continue };
        let fired = raw.get(rel).cloned().unwrap_or_default();
        for (site_line, names) in &lexed.allow_sites {
            for name in names {
                let used = fired.iter().any(|(id, line)| {
                    (name == "all" || id == name)
                        && (*line == *site_line || *line == *site_line + 1)
                });
                if !used {
                    report.unused_suppressions.push(UnusedSuppression {
                        path: rel.clone(),
                        line: *site_line,
                        rule: name.clone(),
                    });
                }
            }
        }
    }
    // …and suppression-file entries.
    for (ei, entry) in suppressions.entries.iter().enumerate() {
        if !entry_used[ei] {
            report.unused_suppressions.push(UnusedSuppression {
                path: SUPPRESSION_FILE.to_owned(),
                line: entry.line,
                rule: format!("{} {}", entry.pass, entry.function),
            });
        }
    }

    report.findings.sort_by(|a, b| {
        (&a.path, a.line, &a.pass, &a.message).cmp(&(&b.path, b.line, &b.pass, &b.message))
    });
    report.lint.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    report.unused_suppressions.sort_by(|a, b| {
        (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule))
    });

    let dot = model.to_dot(&merged_walk);
    Ok(DeepAnalysis { report, dot })
}

// ---------------------------------------------------------------------------
// Shared token-scanning helpers for the passes.
// ---------------------------------------------------------------------------

/// Index of the token after the group opened at `open` (which must hold
/// `(`, `[`, or `{`), or `toks.len()` when unbalanced.
pub(crate) fn skip_group(toks: &[Token], open: usize) -> usize {
    let (open_text, close_text) = match toks.get(open).map(|t| t.text.as_str()) {
        Some("(") => ("(", ")"),
        Some("[") => ("[", "]"),
        Some("{") => ("{", "}"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        let t = toks[k].text.as_str();
        if t == open_text {
            depth += 1;
        } else if t == close_text {
            depth -= 1;
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

/// Number of top-level commas inside the group opened at `open`.
pub(crate) fn top_level_commas(toks: &[Token], open: usize) -> usize {
    let end = skip_group(toks, open);
    let mut depth = 0usize;
    let mut commas = 0;
    for tok in &toks[open..end.min(toks.len())] {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth = depth.saturating_sub(1),
            "," if depth == 1 => commas += 1,
            _ => {}
        }
    }
    commas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_file_parses_and_rejects_missing_justification() {
        let text = "# comment\n\nhot-path-no-alloc crates/core/src/hypervisor.rs Hypervisor::admit subtree -- per-app admission\nlock-discipline crates/cluster/src/pool.rs run_indexed -- bootstrap only\n";
        let sup = Suppressions::parse(text).unwrap();
        assert_eq!(sup.entries.len(), 2);
        assert!(sup.entries[0].subtree);
        assert!(!sup.entries[1].subtree);
        assert_eq!(sup.entries[0].line, 3);
        assert_eq!(sup.entries[1].function, "run_indexed");

        assert!(Suppressions::parse("hot-path-no-alloc a.rs f\n").is_err());
        assert!(Suppressions::parse("hot-path-no-alloc a.rs f -- \n").is_err());
        assert!(Suppressions::parse("too few -- why\n").is_err());
    }

    #[test]
    fn comma_counting_sees_only_the_top_level() {
        let lexed = crate::lex::lex("q.push(done_at, HvEvent::ItemDone(app, item));");
        let open = lexed.tokens.iter().position(|t| t.text == "(").unwrap();
        assert_eq!(top_level_commas(&lexed.tokens, open), 1);
        let lexed = crate::lex::lex("buf.push((micros, seq, event));");
        let open = lexed.tokens.iter().position(|t| t.text == "(").unwrap();
        assert_eq!(top_level_commas(&lexed.tokens, open), 0);
    }
}
