//! The `nimblock-analyze` binary: static lint + schedule-trace verification.
//!
//! ```text
//! nimblock-analyze lint  [--root <dir>] [--format text|md|json] [--json]
//! nimblock-analyze deep  [--root <dir>] [--format text|md|json]
//!                        [--graph-out <file>]
//! nimblock-analyze trace <file> [--json] [--mechanism-only]
//!                        [--reconfig-latency-ms <ms>]
//! nimblock-analyze monitor <file> [--format text|md|json]
//! nimblock-analyze plan <trace> [--sweep name=spec]... [--slo <f>]
//!                        [--replays <n>] [--format text|md|json]
//!                        [--out <file>]
//! nimblock-analyze rules
//! ```
//!
//! Exit status: 0 when clean, 1 when findings/violations were reported,
//! 2 on usage or I/O errors.

use nimblock_analyze::invariants::InvariantConfig;
use nimblock_analyze::{
    all_passes, all_rules, deep_tree, explain_trace, lint_tree, verify_trace, ExplainFormat,
};
use nimblock_core::Trace;
use nimblock_sim::SimDuration;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
nimblock-analyze: static lint + schedule-trace invariant verification

USAGE:
    nimblock-analyze lint  [--root <dir>] [--format text|md|json] [--json]
    nimblock-analyze deep  [--root <dir>] [--format text|md|json]
                           [--graph-out <file>]
    nimblock-analyze trace <file> [--json] [--mechanism-only]
                           [--reconfig-latency-ms <ms>]
    nimblock-analyze explain <file> [--format text|md|json] [--top <n>]
    nimblock-analyze monitor <file> [--format text|md|json]
    nimblock-analyze plan <trace> [--sweep name=spec]... [--slo <f>]
                           [--replays <n>] [--format text|md|json]
                           [--out <file>]
    nimblock-analyze rules

COMMANDS:
    lint     Run every lint rule over a workspace tree (default: cwd).
    deep     Whole-workspace semantic analysis: builds a cross-crate
             symbol table and call graph, then runs the reachability
             passes (hot-path-no-alloc, determinism-taint,
             lock-discipline) on top of the full lint, and audits every
             `// nimblock: allow(...)` marker and suppression-file entry
             for staleness.
    trace    Verify a serialized schedule trace (JSON, as written by
             `nimblock-cli run --trace-out`) against the paper's
             hardware and policy invariants.
    explain  Decompose every application's response time in a trace
             into six exactly-summing attribution components, with
             critical-path span trees for the slowest applications.
    monitor  Render a continuous-monitoring document (JSON, as written
             by `nimblock-cli run --timeseries-out` or a post-mortem
             dump): windowed series, SLO alerts, flight recorder.
    plan     Capacity planning from a recorded serving trace (binary, as
             written by `nimblock-cli faas --arrivals ... --record-out`):
             sweep counterfactual fleet shapes through the calibrated
             estimator and validate sampled scenarios by exact replay.
    rules    Print the lint-rule catalog.

OPTIONS:
    --root <dir>               Workspace root to analyze (default: .).
    --json                     Emit a machine-readable JSON report
                               (alias for --format json).
    --graph-out <file>         Deep: also write the call graph with the
                               union pass walk as Graphviz DOT.
    --mechanism-only           Skip Nimblock-policy invariants (goal-number
                               ceilings, preemption priority) for traces
                               recorded under non-Nimblock schedulers that
                               preempt.
    --reconfig-latency-ms <ms> Expected reconfiguration latency; enables the
                               exact cap-latency check (80 ms on the ZCU106
                               device model).
    --format <fmt>             Explain report format: text | md | json
                               (default text).
    --top <n>                  Explain: how many of the slowest applications
                               get their span trees printed (default 5).
    --sweep <name=spec>        Plan: a sweep axis (repeatable): boards=1..32,
                               slots=2,3, reconfig-ms=40,80, policy=rr
                               (default: the planner's boards sweep).
    --slo <f>                  Plan: offered-attainment target the
                               recommendation must meet (default 0.95).
    --replays <n>              Plan: scenarios to validate by exact replay
                               (default 5).
    --out <file>               Plan: where the report goes (default stdout).

Findings can be suppressed per line with `// nimblock: allow(<rule>)`;
deep-pass findings can also be suppressed per function via the committed
`analyze-suppressions.txt` (every entry needs a justification, and
`deep` reports any suppression that no longer fires as stale).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Dispatch; `Ok(true)` means a clean run.
fn run(args: &[String]) -> Result<bool, String> {
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("deep") => cmd_deep(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("rules") => {
            cmd_rules();
            Ok(true)
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(true)
        }
        Some(other) => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = ExplainFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                );
            }
            "--json" => format = ExplainFormat::Json,
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                format = ExplainFormat::parse(value)
                    .ok_or_else(|| format!("unknown lint format `{value}`"))?;
            }
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    let report = lint_tree(&root)
        .map_err(|e| format!("cannot lint {}: {e}", root.display()))?;
    match format {
        ExplainFormat::Json => println!("{}", nimblock_ser::to_string_pretty(&report)),
        _ => println!("{report}"),
    }
    Ok(report.is_clean())
}

fn cmd_deep(args: &[String]) -> Result<bool, String> {
    let mut root = PathBuf::from(".");
    let mut format = ExplainFormat::Text;
    let mut graph_out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(
                    it.next().ok_or("--root needs a directory argument")?,
                );
            }
            "--json" => format = ExplainFormat::Json,
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                format = ExplainFormat::parse(value)
                    .ok_or_else(|| format!("unknown deep format `{value}`"))?;
            }
            "--graph-out" => {
                graph_out = Some(PathBuf::from(
                    it.next().ok_or("--graph-out needs a file argument")?,
                ));
            }
            other => return Err(format!("unknown deep option `{other}`")),
        }
    }
    let analysis = deep_tree(&root)
        .map_err(|e| format!("cannot analyze {}: {e}", root.display()))?;
    if let Some(path) = graph_out {
        std::fs::write(&path, &analysis.dot)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    print!("{}", analysis.report.render(format));
    Ok(analysis.report.is_clean())
}

fn cmd_trace(args: &[String]) -> Result<bool, String> {
    let mut path: Option<PathBuf> = None;
    let mut json = false;
    let mut config = InvariantConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--mechanism-only" => config.nimblock_policy = false,
            "--reconfig-latency-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--reconfig-latency-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --reconfig-latency-ms: {e}"))?;
                config.reconfig_latency = Some(SimDuration::from_millis(ms));
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown trace option `{other}`")),
        }
    }
    let path = path.ok_or("trace needs a <file> argument")?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let trace: Trace = nimblock_ser::from_str(&text)
        .map_err(|e| format!("{} is not a serialized trace: {e}", path.display()))?;
    let report = verify_trace(&trace, &config);
    if json {
        println!("{}", nimblock_ser::to_string_pretty(&report));
    } else if report.is_clean() {
        println!(
            "ok: {} event(s), {} application(s), all invariants hold",
            report.events_checked, report.apps_seen
        );
    } else {
        println!("{report}");
    }
    Ok(report.is_clean())
}

fn cmd_explain(args: &[String]) -> Result<bool, String> {
    let mut path: Option<PathBuf> = None;
    let mut format = ExplainFormat::Text;
    let mut top = 5usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                format = ExplainFormat::parse(value)
                    .ok_or_else(|| format!("unknown explain format `{value}`"))?;
            }
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --top: {e}"))?;
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown explain option `{other}`")),
        }
    }
    let path = path.ok_or("explain needs a <file> argument")?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let trace: Trace = nimblock_ser::from_str(&text)
        .map_err(|e| format!("{} is not a serialized trace: {e}", path.display()))?;
    let explain = explain_trace(&trace);
    print!("{}", explain.render(format, top));
    Ok(explain.is_exact())
}

fn cmd_monitor(args: &[String]) -> Result<bool, String> {
    let mut path: Option<PathBuf> = None;
    let mut format = ExplainFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                format = ExplainFormat::parse(value)
                    .ok_or_else(|| format!("unknown monitor format `{value}`"))?;
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown monitor option `{other}`")),
        }
    }
    let path = path.ok_or("monitor needs a <file> argument")?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc: nimblock_obs::MonitorDoc = nimblock_ser::from_str(&text)
        .map_err(|e| format!("{} is not a monitoring document: {e}", path.display()))?;
    print!("{}", nimblock_analyze::render_monitor(&doc, format));
    // Fired alerts are a property of the run, not a failure of this
    // command: rendering an alert-bearing document is still a clean exit.
    Ok(true)
}

fn cmd_plan(args: &[String]) -> Result<bool, String> {
    let mut path: Option<PathBuf> = None;
    let mut sweeps: Vec<String> = Vec::new();
    let mut slo = 0.95f64;
    let mut replays = 5usize;
    let mut format = ExplainFormat::Text;
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sweep" => sweeps.push(it.next().ok_or("--sweep needs a value")?.clone()),
            "--slo" => {
                slo = it
                    .next()
                    .ok_or("--slo needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --slo: {e}"))?;
            }
            "--replays" => {
                replays = it
                    .next()
                    .ok_or("--replays needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --replays: {e}"))?;
            }
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                format = ExplainFormat::parse(value)
                    .ok_or_else(|| format!("unknown plan format `{value}`"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(
                    it.next().ok_or("--out needs a file argument")?,
                ));
            }
            other if !other.starts_with('-') && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => return Err(format!("unknown plan option `{other}`")),
        }
    }
    let path = path.ok_or("plan needs a <trace> argument")?;
    let trace = std::fs::read(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let options = nimblock_plan::PlanOptions { sweeps, slo_target: slo, replays };
    let report = nimblock_plan::plan(&trace, &options)?;
    let plan_format = match format {
        ExplainFormat::Text => nimblock_plan::PlanFormat::Text,
        ExplainFormat::Markdown => nimblock_plan::PlanFormat::Markdown,
        ExplainFormat::Json => nimblock_plan::PlanFormat::Json,
    };
    let rendered = nimblock_plan::render_plan(&report, plan_format);
    match out {
        Some(path) => std::fs::write(&path, rendered)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{rendered}"),
    }
    // A failed byte-identity check poisons every prediction in the
    // report: the replay engine demonstrably diverged from the recorder.
    Ok(report.replay_check != "MISMATCH")
}

fn cmd_rules() {
    println!("lint rules (suppress with `// nimblock: allow(<rule>)`):\n");
    for rule in all_rules() {
        println!("  {:<22} {}", rule.id(), rule.description());
    }
    println!("\ndeep passes (suppress per line or via analyze-suppressions.txt):\n");
    for pass in all_passes() {
        println!("  {:<22} {}", pass.id(), pass.description());
    }
    println!("\ntrace invariants (paper section in parentheses):\n");
    for rule in nimblock_analyze::InvariantRule::ALL {
        println!("  {:<22} ({})", rule.id(), rule.paper_section());
    }
}
