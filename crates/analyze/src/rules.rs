//! The lint rule catalog.
//!
//! Each rule guards one invariant of the workspace that the compiler cannot
//! express (see `DESIGN.md` §11 for the full catalog and rationale):
//!
//! | id | guards |
//! |----|--------|
//! | `registry-deps` | offline build: every dependency is a workspace path dep |
//! | `no-unwrap-hot-path` | hypervisor/scheduler/sim/cli code returns errors instead of panicking |
//! | `no-wallclock-sim` | simulation determinism: no `std::time` inside `sim`/`core` |
//! | `no-lossy-cast` | no precision-losing `as` casts on `SimTime`/token arithmetic |
//! | `no-println` | library crates never write to stdout/stderr directly |
//! | `no-unbounded-span-buffer` | per-event recording buffers are capacity-bounded |
//!
//! A finding may be suppressed with an inline `// nimblock: allow(<rule>)`
//! comment on the same line or on the line above (see [`crate::lex::Lexed`]).
//! Suppression is deliberately line-scoped: there is no file- or crate-level
//! escape hatch, so every exception is visible at the offending line.

use crate::lex::{Lexed, TokenKind};
use nimblock_ser::impl_json_struct;

/// One lint finding: rule, location, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiag {
    /// The rule id (kebab-case, e.g. `no-unwrap-hot-path`).
    pub rule: String,
    /// Path of the offending file, relative to the workspace root.
    pub path: String,
    /// 1-based line number of the finding.
    pub line: u32,
    /// What was found and why it matters.
    pub message: String,
}
impl_json_struct!(LintDiag { rule, path, line, message });

impl std::fmt::Display for LintDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// What a rule gets to look at: one file, pre-lexed when it is Rust source.
pub struct FileCtx<'a> {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: &'a str,
    /// Raw file contents.
    pub source: &'a str,
    /// Token stream — `Some` for `.rs` files, `None` for manifests.
    pub lexed: Option<&'a Lexed>,
}

/// A lint rule: a scoping predicate plus a checker.
pub trait Rule {
    /// Stable kebab-case id, used in diagnostics and `allow(...)` comments.
    fn id(&self) -> &'static str;
    /// One-line description for the rule catalog.
    fn description(&self) -> &'static str;
    /// Whether this rule runs on the given workspace-relative path.
    fn applies_to(&self, rel_path: &str) -> bool;
    /// Produce findings for one file. Suppressions are applied by the caller.
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<LintDiag>;
}

/// The full rule set, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(RegistryDeps),
        Box::new(NoUnwrapHotPath),
        Box::new(NoWallclockSim),
        Box::new(NoLossyCast),
        Box::new(NoPrintln),
        Box::new(NoUnboundedSpanBuffer),
    ]
}

fn diag(rule: &dyn Rule, ctx: &FileCtx<'_>, line: u32, message: String) -> LintDiag {
    LintDiag { rule: rule.id().to_owned(), path: ctx.rel_path.to_owned(), line, message }
}

/// Walk the unmasked (non-test) tokens of a Rust file.
fn live_tokens(lexed: &Lexed) -> impl Iterator<Item = (usize, &crate::lex::Token)> {
    lexed
        .tokens
        .iter()
        .enumerate()
        .filter(|&(i, _)| !lexed.in_test.get(i).copied().unwrap_or(false))
}

// ---------------------------------------------------------------------------
// registry-deps
// ---------------------------------------------------------------------------

/// Every `Cargo.toml` dependency must stay inside the workspace.
///
/// The build container has no registry access; a reintroduced external
/// dependency would fail much later and far less legibly. This rule ports the
/// shell/awk guard that `scripts/verify.sh` used to carry: in any
/// `[*dependencies]` section, an entry must either use `path = …` or inherit
/// with `workspace = true`. `Cargo.lock`, when present, must not record any
/// `source = …` (registry or git) package.
pub struct RegistryDeps;

impl Rule for RegistryDeps {
    fn id(&self) -> &'static str {
        "registry-deps"
    }
    fn description(&self) -> &'static str {
        "all Cargo.toml dependencies are workspace path deps; Cargo.lock has no registry sources"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path.ends_with("Cargo.toml") || rel_path.ends_with("Cargo.lock")
    }
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<LintDiag> {
        let mut out = Vec::new();
        if ctx.rel_path.ends_with("Cargo.lock") {
            for (idx, line) in ctx.source.lines().enumerate() {
                if line.starts_with("source = ") {
                    out.push(diag(
                        self,
                        ctx,
                        idx as u32 + 1,
                        format!("lockfile records a non-workspace package source: `{line}`"),
                    ));
                }
            }
            return out;
        }
        let mut in_deps = false;
        for (idx, raw) in ctx.source.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_deps = line.ends_with("dependencies]");
                continue;
            }
            if !in_deps || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let ok = line.contains("path") && line.contains('=') && line.contains("path =")
                || line.contains("workspace = true");
            if !ok {
                out.push(diag(
                    self,
                    ctx,
                    idx as u32 + 1,
                    format!(
                        "non-path dependency `{line}` — the workspace builds offline, \
                         use a path dep or `workspace = true`"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// no-unwrap-hot-path
// ---------------------------------------------------------------------------

/// No bare `unwrap()`/`panic!`/`todo!`/`unimplemented!` in hot paths.
///
/// Scope: the hypervisor event loop, every scheduling policy, the simulation
/// engine, and the CLI front-end. A panic in any of these aborts a whole
/// experiment run. `.expect("…")` with a message stays legal — the workspace
/// uses it for documented contract checks (each carries a `# Panics` doc
/// section) — as do `assert!`/`unreachable!`.
pub struct NoUnwrapHotPath;

impl Rule for NoUnwrapHotPath {
    fn id(&self) -> &'static str {
        "no-unwrap-hot-path"
    }
    fn description(&self) -> &'static str {
        "no bare unwrap()/panic!/todo!/unimplemented! in hypervisor, scheduler, sim, or cli code"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path == "crates/core/src/hypervisor.rs"
            || rel_path.starts_with("crates/core/src/scheduler")
            || rel_path.starts_with("crates/sim/src/")
            || rel_path.starts_with("crates/cli/src/")
    }
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<LintDiag> {
        let Some(lexed) = ctx.lexed else { return Vec::new() };
        let toks = &lexed.tokens;
        let mut out = Vec::new();
        for (i, tok) in live_tokens(lexed) {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            match tok.text.as_str() {
                "unwrap" => {
                    let dotted = i > 0 && toks[i - 1].text == ".";
                    let called = toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");
                    if dotted && called {
                        out.push(diag(
                            self,
                            ctx,
                            tok.line,
                            "bare `.unwrap()` in a hot path — return an error or use \
                             `.expect(\"why this cannot fail\")`"
                                .into(),
                        ));
                    }
                }
                "panic" | "todo" | "unimplemented" => {
                    let is_macro = toks.get(i + 1).map(|t| t.text.as_str()) == Some("!");
                    // `core::panic::Location`-style paths are not macro calls.
                    let pathy = i > 0 && toks[i - 1].text == ":";
                    if is_macro && !pathy {
                        out.push(diag(
                            self,
                            ctx,
                            tok.line,
                            format!(
                                "`{}!` in a hot path — propagate an error instead of aborting \
                                 the run",
                                tok.text
                            ),
                        ));
                    }
                }
                _ => {}
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// no-wallclock-sim
// ---------------------------------------------------------------------------

/// No wall-clock time sources inside the simulation or hypervisor crates.
///
/// The whole point of `nimblock-sim` is determinism: a given stimulus and
/// seed must reproduce the paper's schedules bit-for-bit. `std::time::Instant`
/// or `SystemTime` anywhere in `crates/sim` or `crates/core` would leak host
/// timing into simulated behaviour. The single sanctioned exception (the
/// optional decision-latency instrument in the hypervisor, active only when a
/// metrics registry is attached) carries an inline allow.
pub struct NoWallclockSim;

impl Rule for NoWallclockSim {
    fn id(&self) -> &'static str {
        "no-wallclock-sim"
    }
    fn description(&self) -> &'static str {
        "no std::time / Instant / SystemTime inside crates/sim or crates/core (sim determinism)"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/sim/src/") || rel_path.starts_with("crates/core/src/")
    }
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<LintDiag> {
        let Some(lexed) = ctx.lexed else { return Vec::new() };
        let toks = &lexed.tokens;
        let mut out: Vec<LintDiag> = Vec::new();
        let mut flagged_lines = std::collections::BTreeSet::new();
        for (i, tok) in live_tokens(lexed) {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let hit = match tok.text.as_str() {
                "Instant" | "SystemTime" => true,
                "time" => {
                    // the path `std :: time`
                    i >= 3
                        && toks[i - 1].text == ":"
                        && toks[i - 2].text == ":"
                        && toks[i - 3].text == "std"
                }
                _ => false,
            };
            if hit && flagged_lines.insert(tok.line) {
                out.push(diag(
                    self,
                    ctx,
                    tok.line,
                    format!(
                        "wall-clock time source `{}` inside a deterministic-simulation crate",
                        tok.text
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// no-lossy-cast
// ---------------------------------------------------------------------------

/// No precision-losing `as` casts on time or token arithmetic.
///
/// `SimTime`/`SimDuration` are microsecond `u64` counters and PREMA tokens
/// are `f64`; an `as u32`-style narrowing silently truncates after ~71
/// minutes of simulated time. The rule fires when an `as <narrow type>`
/// appears near time/token vocabulary (`SimTime`, `as_micros`, `tokens`, …)
/// so unrelated index casts (`i as u32` on a slot index) stay legal.
pub struct NoLossyCast;

const NARROW: [&str; 7] = ["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
/// Narrow only relative to the `u128` returned by `Duration::as_nanos`/`as_micros`.
const NARROW_FOR_U128: [&str; 2] = ["u64", "i64"];
const TRIGGERS: [&str; 7] =
    ["SimTime", "SimDuration", "as_micros", "as_millis", "as_nanos", "as_secs", "tokens"];
const U128_TRIGGERS: [&str; 2] = ["as_nanos", "as_micros"];
const LOOKBACK: usize = 12;

impl Rule for NoLossyCast {
    fn id(&self) -> &'static str {
        "no-lossy-cast"
    }
    fn description(&self) -> &'static str {
        "no narrowing `as` casts on SimTime/SimDuration/token arithmetic"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/sim/src/") || rel_path.starts_with("crates/core/src/")
    }
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<LintDiag> {
        let Some(lexed) = ctx.lexed else { return Vec::new() };
        let toks = &lexed.tokens;
        let mut out = Vec::new();
        for (i, tok) in live_tokens(lexed) {
            if tok.text != "as" || tok.kind != TokenKind::Ident {
                continue;
            }
            let Some(target) = toks.get(i + 1) else { continue };
            let narrow = NARROW.contains(&target.text.as_str());
            let narrow_u128 = NARROW_FOR_U128.contains(&target.text.as_str());
            if !narrow && !narrow_u128 {
                continue;
            }
            let window = &toks[i.saturating_sub(LOOKBACK)..i];
            let relevant = window.iter().any(|t| {
                if narrow_u128 {
                    U128_TRIGGERS.contains(&t.text.as_str())
                } else {
                    TRIGGERS.contains(&t.text.as_str())
                }
            });
            if relevant {
                out.push(diag(
                    self,
                    ctx,
                    tok.line,
                    format!(
                        "lossy `as {}` on time/token arithmetic — use a checked or \
                         documented conversion",
                        target.text
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// no-println
// ---------------------------------------------------------------------------

/// Library crates never print directly.
///
/// Only the CLI and the bench harness own stdout/stderr; everything else
/// reports through return values, `nimblock-obs` logging, or metrics. A
/// stray `println!` in a library corrupts machine-readable CLI output
/// (JSON reports are parsed by `verify.sh`). The `obs` logging sink itself
/// is the one sanctioned writer and carries an inline allow.
pub struct NoPrintln;

impl Rule for NoPrintln {
    fn id(&self) -> &'static str {
        "no-println"
    }
    fn description(&self) -> &'static str {
        "no println!/eprintln!/print!/eprint!/dbg! outside crates/cli and crates/bench"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/")
            && rel_path.contains("/src/")
            && !rel_path.starts_with("crates/cli/")
            && !rel_path.starts_with("crates/bench/")
            && rel_path != "crates/analyze/src/main.rs"
    }
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<LintDiag> {
        let Some(lexed) = ctx.lexed else { return Vec::new() };
        let toks = &lexed.tokens;
        let mut out = Vec::new();
        for (i, tok) in live_tokens(lexed) {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let name = tok.text.as_str();
            if !matches!(name, "println" | "eprintln" | "print" | "eprint" | "dbg") {
                continue;
            }
            let is_macro = toks.get(i + 1).map(|t| t.text.as_str()) == Some("!");
            if is_macro {
                out.push(diag(
                    self,
                    ctx,
                    tok.line,
                    format!(
                        "`{name}!` in a library crate — route output through the caller, \
                         `nimblock-obs` logging, or a returned value"
                    ),
                ));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// no-unbounded-span-buffer
// ---------------------------------------------------------------------------

/// Per-event recording buffers must be capacity-bounded.
///
/// Span and trace recording runs inside the hypervisor's event loop; a
/// buffer that grows one entry per simulated event with no ceiling trades
/// scheduler latency (and memory) for observability — the wrong direction.
/// The sanctioned pattern is `nimblock_obs::SpanBuffer`: a hard capacity
/// fixed at construction, overflow counted in `dropped()` instead of
/// stored. The continuous monitor follows the same discipline: its
/// tumbling-window series (`windows`), flight-recorder ring (`entries`),
/// and alert sink (`alerts`) all bound growth by a `*_capacity` field.
/// The rule fires on `self.<spans|events|entries|windows|alerts>.push(…)`
/// (or `push_back`) in recording code unless a capacity check guards the
/// push nearby (`capacity` within the lookback window, as in
/// `SpanBuffer::push`).
///
/// Post-run exporters (`chrome.rs`, `gantt.rs`) are out of scope: they
/// transform a trace that already retired, so their output is O(input)
/// by construction. `Trace::record` itself carries the one inline allow —
/// the trace is the primary artifact, recorded only when a run opts in
/// via `run_traced`/`--trace-out`, and everything downstream (attribution,
/// invariants, exports) needs it complete, not sampled.
pub struct NoUnboundedSpanBuffer;

/// How many tokens before the `push` a bound check may sit (the
/// `self.spans.len() < self.capacity` guard in `SpanBuffer::push` is
/// well inside this window).
const BUFFER_LOOKBACK: usize = 25;

impl Rule for NoUnboundedSpanBuffer {
    fn id(&self) -> &'static str {
        "no-unbounded-span-buffer"
    }
    fn description(&self) -> &'static str {
        "per-event span/trace/monitor buffers are capacity-bounded or carry an explicit allow"
    }
    fn applies_to(&self, rel_path: &str) -> bool {
        (rel_path.starts_with("crates/obs/src/") || rel_path.starts_with("crates/core/src/"))
            && rel_path != "crates/obs/src/chrome.rs"
            && rel_path != "crates/obs/src/gantt.rs"
    }
    fn check(&self, ctx: &FileCtx<'_>) -> Vec<LintDiag> {
        let Some(lexed) = ctx.lexed else { return Vec::new() };
        let toks = &lexed.tokens;
        let mut out = Vec::new();
        for (i, tok) in live_tokens(lexed) {
            // Match `self . <buffer-field> . <push|push_back> (`.
            if tok.kind != TokenKind::Ident
                || !matches!(tok.text.as_str(), "push" | "push_back")
            {
                continue;
            }
            let called = toks.get(i + 1).map(|t| t.text.as_str()) == Some("(");
            let chain = i >= 4
                && toks[i - 1].text == "."
                && matches!(
                    toks[i - 2].text.as_str(),
                    "spans" | "events" | "entries" | "windows" | "alerts"
                )
                && toks[i - 3].text == "."
                && toks[i - 4].text == "self";
            if !called || !chain {
                continue;
            }
            // Substring match so `self.capacity`, `window_capacity`, and
            // `ring_capacity` guards all count as bounds.
            let window = &toks[i.saturating_sub(BUFFER_LOOKBACK)..i];
            let bounded = window.iter().any(|t| t.text.contains("capacity"));
            if !bounded {
                out.push(diag(
                    self,
                    ctx,
                    tok.line,
                    format!(
                        "unbounded `self.{}.{}(…)` in recording code — use \
                         `nimblock_obs::SpanBuffer` (hard capacity, counted drops) or \
                         justify with an inline allow",
                        toks[i - 2].text, tok.text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn run_rust(rule: &dyn Rule, rel_path: &str, source: &str) -> Vec<LintDiag> {
        assert!(rule.applies_to(rel_path), "{rel_path} should be in scope");
        let lexed = lex(source);
        rule.check(&FileCtx { rel_path, source, lexed: Some(&lexed) })
    }

    #[test]
    fn registry_deps_flags_version_and_git_deps() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\nserde = \"1.0\"\nfoo = { git = \"https://example.com\" }\nok = { path = \"../ok\" }\nalso-ok.workspace = true\n";
        let rule = RegistryDeps;
        let diags = rule.check(&FileCtx { rel_path: "crates/x/Cargo.toml", source: toml, lexed: None });
        assert_eq!(diags.len(), 2);
        assert!(diags[0].message.contains("serde"));
        assert_eq!(diags[0].line, 5);
        assert!(diags[1].message.contains("git"));
    }

    #[test]
    fn registry_deps_flags_lockfile_sources() {
        let lock = "[[package]]\nname = \"rand\"\nversion = \"0.8.5\"\nsource = \"registry+https://github.com/rust-lang/crates.io-index\"\n";
        let rule = RegistryDeps;
        let diags =
            rule.check(&FileCtx { rel_path: "Cargo.lock", source: lock, lexed: None });
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn registry_deps_accepts_this_workspace_style() {
        let toml = "[workspace.dependencies]\nnimblock-sim = { path = \"crates/sim\", version = \"0.1.0\" }\n\n[dependencies]\nnimblock-sim.workspace = true\n";
        let rule = RegistryDeps;
        let diags =
            rule.check(&FileCtx { rel_path: "Cargo.toml", source: toml, lexed: None });
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn unwrap_rule_flags_bare_unwrap_but_not_expect() {
        let src = "fn f() { x.unwrap(); y.expect(\"bound app is live\"); }";
        let diags = run_rust(&NoUnwrapHotPath, "crates/core/src/hypervisor.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains(".unwrap()"));
    }

    #[test]
    fn unwrap_rule_flags_panic_macros_only() {
        let src = "fn f() { panic!(\"boom\"); todo!(); core::panic::Location::caller(); }";
        let diags = run_rust(&NoUnwrapHotPath, "crates/sim/src/engine.rs", src);
        let rules: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(diags.len(), 2, "{rules:?}");
    }

    #[test]
    fn unwrap_rule_skips_test_modules_and_out_of_scope_files() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }";
        let diags = run_rust(&NoUnwrapHotPath, "crates/core/src/scheduler/tokens.rs", src);
        assert!(diags.is_empty());
        assert!(!NoUnwrapHotPath.applies_to("crates/obs/src/log.rs"));
        assert!(!NoUnwrapHotPath.applies_to("crates/core/src/invariants.rs"));
    }

    #[test]
    fn wallclock_rule_flags_instant_once_per_line() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let diags = run_rust(&NoWallclockSim, "crates/core/src/hypervisor.rs", src);
        assert_eq!(diags.len(), 1, "std::time and Instant on one line dedupe");
    }

    #[test]
    fn wallclock_rule_respects_inline_allow() {
        let src =
            "// nimblock: allow(no-wallclock-sim)\nlet t = std::time::Instant::now();";
        let lexed = lex(src);
        let diags = NoWallclockSim.check(&FileCtx {
            rel_path: "crates/sim/src/engine.rs",
            source: src,
            lexed: Some(&lexed),
        });
        // The rule itself still reports; suppression is the driver's job.
        assert_eq!(diags.len(), 1);
        assert!(lexed.allowed(diags[0].line, "no-wallclock-sim"));
    }

    #[test]
    fn lossy_cast_rule_needs_a_trigger_nearby() {
        let flagged = "let us = duration.as_micros() as u32;";
        let diags = run_rust(&NoLossyCast, "crates/sim/src/time.rs", flagged);
        assert_eq!(diags.len(), 1);

        let index_cast = "let slot = SlotId::new(i as u32);";
        let diags = run_rust(&NoLossyCast, "crates/core/src/trace.rs", index_cast);
        assert!(diags.is_empty(), "index casts without time context are fine");
    }

    #[test]
    fn lossy_cast_rule_flags_u64_only_for_u128_sources() {
        let nanos = "m.observe(started.elapsed().as_nanos() as u64);";
        let diags = run_rust(&NoLossyCast, "crates/core/src/hypervisor.rs", nanos);
        assert_eq!(diags.len(), 1, "u128 -> u64 is narrowing");

        let micros_u64 = "let t = SimTime::from_micros(raw as u64);";
        let diags = run_rust(&NoLossyCast, "crates/sim/src/time.rs", micros_u64);
        assert!(diags.is_empty(), "widening to u64 from SimTime context is fine");
    }

    #[test]
    fn println_rule_scopes_to_library_crates() {
        let src = "fn f() { println!(\"hi\"); eprintln!(\"err\"); write!(w, \"ok\").ok(); }";
        let diags = run_rust(&NoPrintln, "crates/obs/src/log.rs", src);
        assert_eq!(diags.len(), 2, "write! is fine, print macros are not");
        assert!(!NoPrintln.applies_to("crates/cli/src/commands.rs"));
        assert!(!NoPrintln.applies_to("crates/bench/src/main.rs"));
        assert!(!NoPrintln.applies_to("tests/trace_validation.rs"));
    }

    #[test]
    fn span_buffer_rule_flags_unguarded_recording_pushes() {
        let src = "impl Trace { fn record(&mut self, e: Event) { self.events.push(e); } }";
        let diags = run_rust(&NoUnboundedSpanBuffer, "crates/core/src/trace.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("self.events.push"));
    }

    #[test]
    fn span_buffer_rule_blesses_capacity_guarded_pushes() {
        let src = "impl SpanBuffer { fn push(&mut self, s: Span) -> bool {\n\
                   if self.spans.len() < self.capacity { self.spans.push(s); true }\n\
                   else { self.dropped += 1; false } } }";
        let diags = run_rust(&NoUnboundedSpanBuffer, "crates/obs/src/spans.rs", src);
        assert!(diags.is_empty(), "capacity-guarded push is the blessed pattern: {diags:?}");
    }

    #[test]
    fn span_buffer_rule_skips_locals_and_exporters() {
        // Pushes onto locals (JSON assembly, scratch vectors) are not
        // recording buffers.
        let src = "fn f() { let mut pairs = Vec::new(); pairs.push(1); }";
        let diags = run_rust(&NoUnboundedSpanBuffer, "crates/obs/src/registry.rs", src);
        assert!(diags.is_empty());
        // Post-run exporters transform an already-bounded trace.
        assert!(!NoUnboundedSpanBuffer.applies_to("crates/obs/src/chrome.rs"));
        assert!(!NoUnboundedSpanBuffer.applies_to("crates/obs/src/gantt.rs"));
        assert!(!NoUnboundedSpanBuffer.applies_to("crates/cli/src/commands.rs"));
    }

    #[test]
    fn span_buffer_rule_covers_monitor_rings_and_windows() {
        // The monitor's window series, flight-recorder ring, and alert
        // sink are recording buffers too.
        for field in ["entries", "windows", "alerts"] {
            let src = format!(
                "impl MonitorState {{ fn record(&mut self, w: W) {{ self.{field}.push(w); }} }}"
            );
            let diags =
                run_rust(&NoUnboundedSpanBuffer, "crates/obs/src/timeseries.rs", &src);
            assert_eq!(diags.len(), 1, "self.{field}.push must be flagged");
            assert!(diags[0].message.contains(&format!("self.{field}.push")));
        }
        // push_back (VecDeque rings) is the same hazard...
        let src = "fn record(&mut self, e: E) { self.entries.push_back(e); }";
        let diags = run_rust(&NoUnboundedSpanBuffer, "crates/obs/src/timeseries.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("self.entries.push_back"));
        // ...and a ring_capacity eviction guard blesses it.
        let src = "fn record(&mut self, e: E) {\n\
                   if self.entries.len() == self.ring_capacity { self.entries.pop_front(); }\n\
                   self.entries.push_back(e); }";
        let diags = run_rust(&NoUnboundedSpanBuffer, "crates/obs/src/timeseries.rs", src);
        assert!(diags.is_empty(), "capacity-evicting ring is the blessed pattern: {diags:?}");
    }

    #[test]
    fn span_buffer_rule_respects_inline_allow() {
        let src = "// nimblock: allow(no-unbounded-span-buffer)\nself.events.push(event);";
        let lexed = lex(src);
        let diags = NoUnboundedSpanBuffer.check(&FileCtx {
            rel_path: "crates/core/src/trace.rs",
            source: src,
            lexed: Some(&lexed),
        });
        // The rule itself still reports; suppression is the driver's job.
        assert_eq!(diags.len(), 1);
        assert!(lexed.allowed(diags[0].line, "no-unbounded-span-buffer"));
    }

    #[test]
    fn diag_serializes_to_json() {
        let d = LintDiag {
            rule: "no-println".into(),
            path: "crates/obs/src/log.rs".into(),
            line: 221,
            message: "x".into(),
        };
        let text = nimblock_ser::to_string(&d);
        assert!(text.contains("\"rule\":\"no-println\""));
        let back: LintDiag = nimblock_ser::from_str(&text).unwrap();
        assert_eq!(back, d);
    }
}
