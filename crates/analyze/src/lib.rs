//! Static and dynamic analysis for the Nimblock workspace.
//!
//! Three layers, one crate (see `DESIGN.md` §11 and §16):
//!
//! * **Static lint** ([`lint`], [`rules`], [`lex`]) — a small in-repo Rust
//!   tokenizer and rule framework enforcing workspace policies the compiler
//!   cannot express: the offline dependency policy (`registry-deps`), no
//!   panics in hot paths (`no-unwrap-hot-path`), simulation determinism
//!   (`no-wallclock-sim`), no narrowing time/token casts (`no-lossy-cast`),
//!   and library output hygiene (`no-println`). Findings may be silenced
//!   line-by-line with `// nimblock: allow(<rule>)`.
//! * **Deep static analysis** ([`parse`], [`callgraph`], [`passes`]) — an
//!   item-level parser, a cross-crate symbol table and call graph, and
//!   reachability passes proving the engine hot path alloc-free
//!   (`hot-path-no-alloc`), the report/monitor merge and render paths
//!   deterministic (`determinism-taint`), and the cluster worker pool
//!   lock-clean (`lock-discipline`). `nimblock-analyze deep` runs them on
//!   top of the lint and audits every suppression for staleness.
//! * **Dynamic schedule-invariant verification** ([`invariants`], re-exported
//!   from `nimblock-core`) — replays any recorded [`Trace`] against the
//!   paper's hardware and policy invariants: configuration-port exclusivity
//!   and serialization latency (§2.1), slot exclusivity (§2.2), task-graph
//!   order under cross-batch pipelining (§3.1), batch-boundary preemption
//!   legality (§3.2, Algorithm 2), per-application work conservation, and
//!   goal-number ceilings (§4.2).
//!
//! The `nimblock-analyze` binary exposes both: `nimblock-analyze lint` audits
//! a source tree, `nimblock-analyze trace <file>` audits a serialized
//! schedule trace. `nimblock-cli run --check-invariants` runs the dynamic
//! pass inline after every simulation.
//!
//! # Example
//!
//! ```
//! use nimblock_analyze::lint_source;
//!
//! let report = lint_source("crates/sim/src/engine.rs", "fn f() { x.unwrap(); }");
//! assert_eq!(report.diags.len(), 1);
//! assert_eq!(report.diags[0].rule, "no-unwrap-hot-path");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod explain;
pub mod lex;
pub mod lint;
pub mod monitor;
pub mod parse;
pub mod passes;
pub mod rules;

/// The dynamic pass: schedule-trace invariant verification.
///
/// Re-exported from `nimblock-core` so trace producers and trace auditors
/// share one implementation (the hypervisor's own `Trace::verify` calls the
/// same engine this crate's CLI does).
pub use nimblock_core::invariants;

pub use callgraph::Model;
pub use explain::{explain_trace, Explain, ExplainFormat};
pub use lint::{lint_source, lint_tree, LintReport};
pub use monitor::render_monitor;
pub use passes::{
    all_passes, deep_tree, DeepAnalysis, DeepReport, Finding, Pass, Suppressions,
    UnusedSuppression, SUPPRESSION_FILE,
};
pub use nimblock_core::invariants::{
    verify_trace, InvariantConfig, InvariantReport, InvariantRule, Violation,
};
pub use rules::{all_rules, LintDiag, Rule};
