//! Cross-crate symbol table and call graph over [`crate::parse`] items.
//!
//! Resolution is by name, not by type (see `DESIGN.md` §16): a call site
//! resolves to
//!
//! * the enclosing impl's own method for plain `self.m(…)`,
//! * the exact `(Type, m)` symbol for `Type::m(…)` path calls (through
//!   `use … as` aliases; `Self::m(…)` uses the enclosing impl type),
//! * **every** workspace method named `m` for `expr.m(…)` with an
//!   unknown receiver — a deliberate over-approximation, tempered by an
//!   ambient-method skip list so `clone`/`fmt`/iterator adaptors do not
//!   connect the whole graph,
//! * every workspace free function named `m` for bare `m(…)` calls.
//!
//! Calls the table cannot resolve (std methods, closure parameters,
//! macro bodies) produce no edge: the graph under-approximates there and
//! over-approximates on shared method names, which is the right bias for
//! reachability-based checks — reachability passes report too much
//! rather than silently too little, and every report carries its call
//! chain so a false edge is visible in the finding itself.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::{Lexed, Token, TokenKind};
use crate::parse::{is_callable_ident, FnItem, ParsedFile};

/// Methods so ubiquitous that name-matching them would connect the call
/// graph through std trait impls: resolution skips these for
/// unknown-receiver calls. Workspace-meaningful names (`push`, `pop`,
/// `insert`, `record`, `merge_from`, …) are deliberately *not* listed.
const AMBIENT_METHODS: &[&str] = &[
    "all", "and_then", "any", "as_deref", "as_mut", "as_ref", "as_str", "chain", "chars",
    "checked_add", "checked_mul", "checked_sub", "clone", "cloned", "cmp", "collect", "contains",
    "copied", "count", "dedup", "default", "drop", "ends_with", "entry", "enumerate", "eq",
    "expect", "fetch_add", "fetch_sub", "filter", "filter_map", "find", "find_map", "first",
    "flat_map", "flatten", "fmt",
    "fold", "from", "hash", "into", "into_iter", "is_none", "is_none_or", "is_some",
    // `name` is a near-universal accessor (specs, rules, schedulers,
    // functions); resolving `.name()` by name would wire every call
    // site to all nine `Scheduler::name` impls.
    "is_some_and", "iter", "iter_mut", "join", "last", "load", "map", "map_err", "max", "max_by",
    "name",
    "max_by_key", "min", "min_by", "min_by_key", "ne", "next", "ok", "ok_or", "ok_or_else",
    "or_default", "or_else", "or_insert", "or_insert_with", "partial_cmp", "partition_point",
    "position", "powi", "product", "push_str", "rev", "round", "saturating_add", "saturating_mul",
    "saturating_sub", "skip", "sort", "sort_by", "sort_by_key", "sort_unstable", "split", "sqrt",
    "starts_with", "store", "sum", "take", "then", "then_some", "to_owned", "to_string", "trim",
    "unwrap", "unwrap_or", "unwrap_or_default", "unwrap_or_else", "unzip", "windows", "wrapping_add",
    "write", "write_str", "writeln", "zip",
];

/// One analyzed source file: path, token stream, and extracted items.
#[derive(Debug)]
pub struct ModelFile {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// The token stream (shared with the lint rules).
    pub lexed: Lexed,
    /// Items extracted by [`crate::parse::parse_file`].
    pub parsed: ParsedFile,
}

/// One function in the program model.
#[derive(Debug)]
pub struct FnNode {
    /// Index into [`Model::files`].
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
}

impl FnNode {
    /// `Type::name` or bare `name`.
    pub fn qual_name(&self) -> String {
        self.item.qual_name()
    }
}

/// The whole-workspace program model: symbol table plus call graph.
#[derive(Debug, Default)]
pub struct Model {
    /// Analyzed files, in sorted path order.
    pub files: Vec<ModelFile>,
    /// Every non-test function, in (file, source) order.
    pub fns: Vec<FnNode>,
    /// `calls[f]` — ids of functions `f` calls, deduped and sorted.
    pub calls: Vec<Vec<usize>>,
    /// Struct field type heads: type name → field name → type head.
    pub struct_fields: BTreeMap<String, BTreeMap<String, String>>,
    by_qual: BTreeMap<(String, String), Vec<usize>>,
    methods: BTreeMap<String, Vec<usize>>,
    free_fns: BTreeMap<String, Vec<usize>>,
}

/// A reachability walk: every reached function mapped to the function it
/// was first reached from (`None` for roots).
pub type Walk = BTreeMap<usize, Option<usize>>;

impl Model {
    /// Build the model (symbol table, then edges) from analyzed files.
    /// Functions inside `#[cfg(test)]` modules are excluded entirely.
    pub fn build(files: Vec<ModelFile>) -> Model {
        let mut model = Model { files, ..Model::default() };
        for fi in 0..model.files.len() {
            let structs = model.files[fi].parsed.structs.clone();
            for strukt in structs {
                let slot = model.struct_fields.entry(strukt.name).or_default();
                for (field, head) in strukt.fields {
                    slot.insert(field, head);
                }
            }
            let items = model.files[fi].parsed.fns.clone();
            for item in items {
                if item.in_test {
                    continue;
                }
                let id = model.fns.len();
                let name = item.name.clone();
                match &item.owner {
                    Some(owner) => {
                        model.by_qual.entry((owner.clone(), name.clone())).or_default().push(id);
                        model.methods.entry(name).or_default().push(id);
                    }
                    None => {
                        model.free_fns.entry(name).or_default().push(id);
                    }
                }
                model.fns.push(FnNode { file: fi, item });
            }
        }
        model.calls = (0..model.fns.len()).map(|id| model.extract_calls(id)).collect();
        model
    }

    /// Total number of call edges.
    pub fn edge_count(&self) -> usize {
        self.calls.iter().map(Vec::len).sum()
    }

    /// Ids of functions matching `Type::name` (or a bare free-fn name).
    pub fn by_qual_name(&self, qual: &str) -> Vec<usize> {
        match qual.split_once("::") {
            Some((owner, name)) => self
                .by_qual
                .get(&(owner.to_owned(), name.to_owned()))
                .cloned()
                .unwrap_or_default(),
            None => self.free_fns.get(qual).cloned().unwrap_or_default(),
        }
    }

    /// Ids of every function named `name` (any owner, and free).
    pub fn named(&self, name: &str) -> Vec<usize> {
        let mut out = self.methods.get(name).cloned().unwrap_or_default();
        out.extend(self.free_fns.get(name).cloned().unwrap_or_default());
        out.sort_unstable();
        out
    }

    /// Ids of impl methods whose block implements the named trait.
    pub fn trait_impl_methods(&self, trait_name: &str) -> Vec<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, n)| n.item.trait_name.as_deref() == Some(trait_name))
            .map(|(id, _)| id)
            .collect()
    }

    /// The body token slice of a function.
    pub fn body_tokens(&self, id: usize) -> &[Token] {
        let node = &self.fns[id];
        let (start, end) = node.item.body;
        let toks = &self.files[node.file].lexed.tokens;
        &toks[start.min(toks.len())..end.min(toks.len())]
    }

    /// Workspace-relative path of the file defining function `id`.
    pub fn path_of(&self, id: usize) -> &str {
        &self.files[self.fns[id].file].path
    }

    /// BFS from `roots`; functions in `pruned` are recorded when reached
    /// but not expanded (their callees stay unreached through them).
    pub fn reach(&self, roots: &[usize], pruned: &BTreeSet<usize>) -> Walk {
        let mut walk: Walk = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &root in roots {
            if walk.insert(root, None).is_none() {
                queue.push(root);
            }
        }
        let mut at = 0;
        while at < queue.len() {
            let id = queue[at];
            at += 1;
            if pruned.contains(&id) {
                continue;
            }
            for &callee in &self.calls[id] {
                if let std::collections::btree_map::Entry::Vacant(slot) = walk.entry(callee) {
                    slot.insert(Some(id));
                    queue.push(callee);
                }
            }
        }
        walk
    }

    /// Render the root → … → `id` call chain of a walk, `->`-joined.
    pub fn chain(&self, walk: &Walk, id: usize) -> String {
        let mut names = vec![self.fns[id].qual_name()];
        let mut cursor = id;
        while let Some(Some(parent)) = walk.get(&cursor) {
            names.push(self.fns[*parent].qual_name());
            cursor = *parent;
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Graphviz DOT for the subgraph reached by `walk`, with root nodes
    /// double-circled and each node labeled by qualified name.
    pub fn to_dot(&self, walk: &Walk) -> String {
        let mut out = String::from("digraph nimblock_calls {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (&id, parent) in walk {
            let shape = if parent.is_none() { ", peripheries=2" } else { "" };
            out.push_str(&format!(
                "  f{id} [label=\"{}\\n{}\"{shape}];\n",
                self.fns[id].qual_name(),
                self.path_of(id),
            ));
        }
        for (&id, _) in walk {
            for &callee in &self.calls[id] {
                if walk.contains_key(&callee) {
                    out.push_str(&format!("  f{id} -> f{callee};\n"));
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// True when the token at absolute index `k` in `fn_id`'s file is a
    /// call site (identifier followed by `(`, not a declaration).
    pub fn is_call_site(&self, fn_id: usize, k: usize) -> bool {
        let toks = &self.files[self.fns[fn_id].file].lexed.tokens;
        let Some(tok) = toks.get(k) else { return false };
        tok.kind == TokenKind::Ident
            && is_callable_ident(&tok.text)
            && toks.get(k + 1).is_some_and(|t| t.text == "(")
            && (k == 0 || toks[k - 1].text != "fn")
    }

    /// Resolve the call site at absolute token index `k` in `fn_id`'s
    /// file to workspace function ids (empty when unresolvable — std
    /// calls, closure parameters, ambient method names).
    pub fn resolve_call(&self, fn_id: usize, k: usize) -> Vec<usize> {
        if !self.is_call_site(fn_id, k) {
            return Vec::new();
        }
        let node = &self.fns[fn_id];
        let file = &self.files[node.file];
        let toks = &file.lexed.tokens;
        let name = toks[k].text.as_str();
        let prev = k.checked_sub(1).map(|p| toks[p].text.as_str());
        let prev2 = k.checked_sub(2).map(|p| toks[p].text.as_str());
        let prev3 = k.checked_sub(3).map(|p| toks[p].text.as_str());
        let mut out: Vec<usize> = Vec::new();
        if prev == Some(".") {
            if prev2 == Some("self") && prev3 != Some(".") {
                // Plain `self.m(…)`: the enclosing type's own method.
                if let Some(owner) = &node.item.owner {
                    out.extend(self.resolve_path(file, owner, name));
                }
            } else if !AMBIENT_METHODS.contains(&name) {
                // Unknown receiver: every workspace method named `m`.
                out.extend(self.methods.get(name).into_iter().flatten().copied());
            }
        } else if prev == Some(":") && prev2 == Some(":") {
            if let Some(qualifier) = prev3.filter(|q| is_callable_ident(q)) {
                let owner = if qualifier == "Self" {
                    node.item.owner.clone()
                } else {
                    Some(qualifier.to_owned())
                };
                if let Some(owner) = owner {
                    out.extend(self.resolve_path(file, &owner, name));
                }
            }
        } else {
            out.extend(self.free_fns.get(name).into_iter().flatten().copied());
        }
        out
    }

    /// Extract the callee ids of one function body.
    fn extract_calls(&self, id: usize) -> Vec<usize> {
        let (start, end) = self.fns[id].item.body;
        let len = self.files[self.fns[id].file].lexed.tokens.len();
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for k in start..end.min(len) {
            out.extend(self.resolve_call(id, k));
        }
        out.remove(&id);
        out.into_iter().collect()
    }

    /// Exact `(Type, method)` lookup through the file's use-aliases.
    fn resolve_path(&self, file: &ModelFile, owner: &str, name: &str) -> Vec<usize> {
        let owner = file.parsed.uses.get(owner).map(String::as_str).unwrap_or(owner);
        self.by_qual.get(&(owner.to_owned(), name.to_owned())).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn model(sources: &[(&str, &str)]) -> Model {
        let files = sources
            .iter()
            .map(|(path, src)| {
                let lexed = lex(src);
                let parsed = parse_file(&lexed);
                ModelFile { path: (*path).to_owned(), lexed, parsed }
            })
            .collect();
        Model::build(files)
    }

    fn qual(model: &Model, id: usize) -> String {
        model.fns[id].qual_name()
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let m = model(&[(
            "a.rs",
            "impl Hv { fn handle(&mut self) { self.drive(); } fn drive(&mut self) {} }\nimpl Other { fn drive(&self) {} }",
        )]);
        let handle = m.by_qual_name("Hv::handle")[0];
        let callees: Vec<String> = m.calls[handle].iter().map(|&c| qual(&m, c)).collect();
        assert_eq!(callees, ["Hv::drive"], "not Other::drive");
    }

    #[test]
    fn unknown_receivers_fan_out_except_ambient_methods() {
        let m = model(&[(
            "a.rs",
            "impl A { fn go(&self, q: Q) { q.record(1); q.clone(); } }\nimpl B { fn record(&self, x: u32) {} }\nimpl C { fn record(&self, x: u32) {} fn clone(&self) {} }",
        )]);
        let go = m.by_qual_name("A::go")[0];
        let mut callees: Vec<String> = m.calls[go].iter().map(|&c| qual(&m, c)).collect();
        callees.sort();
        assert_eq!(callees, ["B::record", "C::record"], "clone is ambient-skipped");
    }

    #[test]
    fn path_calls_resolve_through_use_aliases_and_self() {
        let m = model(&[
            (
                "a.rs",
                "use crate::q::Queue as Q;\nimpl A { fn go(&self) { Q::push_now(1); Self::local(); } fn local() {} }",
            ),
            ("q.rs", "impl Queue { fn push_now(x: u32) {} }"),
        ]);
        let go = m.by_qual_name("A::go")[0];
        let mut callees: Vec<String> = m.calls[go].iter().map(|&c| qual(&m, c)).collect();
        callees.sort();
        assert_eq!(callees, ["A::local", "Queue::push_now"]);
    }

    #[test]
    fn reach_honors_pruning_and_reports_chains() {
        let m = model(&[(
            "a.rs",
            "fn root() { mid(); } fn mid() { leaf(); } fn leaf() { deep(); } fn deep() {}",
        )]);
        let root = m.by_qual_name("root")[0];
        let mid = m.by_qual_name("mid")[0];
        let leaf = m.by_qual_name("leaf")[0];
        let walk = m.reach(&[root], &BTreeSet::new());
        assert_eq!(walk.len(), 4);
        assert_eq!(m.chain(&walk, leaf), "root -> mid -> leaf");
        let pruned: BTreeSet<usize> = [mid].into_iter().collect();
        let walk = m.reach(&[root], &pruned);
        assert!(walk.contains_key(&mid), "pruned node is still recorded");
        assert!(!walk.contains_key(&leaf), "but not expanded");
    }

    #[test]
    fn test_functions_stay_out_of_the_model() {
        let m = model(&[(
            "a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { live(); } }",
        )]);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(qual(&m, 0), "live");
    }

    #[test]
    fn dot_export_covers_the_walk() {
        let m = model(&[("a.rs", "fn root() { leaf(); } fn leaf() {}")]);
        let walk = m.reach(&m.by_qual_name("root"), &BTreeSet::new());
        let dot = m.to_dot(&walk);
        assert!(dot.contains("digraph nimblock_calls"));
        assert!(dot.contains("peripheries=2"), "root is marked");
        assert!(dot.contains("->"), "edge present");
    }
}
