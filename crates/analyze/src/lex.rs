//! A minimal Rust tokenizer for the lint pass.
//!
//! This is deliberately *not* a full Rust lexer: the lint rules only need to
//! recognise identifier/punctuation sequences (`.unwrap()`, `panic!`,
//! `std::time`, `as u32`, …) while never being fooled by the same characters
//! inside comments, string literals, or `#[cfg(test)]` modules. The scanner
//! therefore handles exactly the constructs that would cause false positives:
//!
//! * line comments (and the `// nimblock: allow(<rule>)` suppression syntax),
//! * nested block comments,
//! * string, raw-string, byte-string, and char literals,
//! * the char-literal vs. lifetime ambiguity (`'a'` vs. `'a`),
//! * `#[cfg(test)] mod … { … }` regions, which are masked out so that test
//!   code may use `unwrap()` freely.

use std::collections::BTreeMap;

/// Coarse token classification — the rules only dispatch on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier, keyword, or number (`unwrap`, `as`, `u32`, `1e6`).
    Ident,
    /// A single punctuation character (`.`, `!`, `(`, `{`, …).
    Punct,
    /// A string, raw-string, byte, or char literal (content dropped).
    Literal,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text. For [`TokenKind::Literal`] this is a placeholder —
    /// rules never match on literal contents.
    pub text: String,
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based line number where the token starts.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// `// nimblock: allow(rule-a, rule-b)` suppressions. A comment on line
    /// `L` suppresses the named rules on line `L` *and* `L + 1`, so both the
    /// trailing-comment and preceding-line placements work:
    ///
    /// ```text
    /// foo.unwrap() // nimblock: allow(no-unwrap-hot-path)
    /// // nimblock: allow(no-wallclock-sim)
    /// let t = std::time::Instant::now();
    /// ```
    pub allows: BTreeMap<u32, Vec<String>>,
    /// Every `// nimblock: allow(…)` comment site: (comment line, rules
    /// named). Unlike [`Lexed::allows`] this is not expanded to the
    /// following line, so the unused-suppression audit can point at the
    /// comment itself.
    pub allow_sites: Vec<(u32, Vec<String>)>,
    /// `in_test[i]` is true when `tokens[i]` sits inside a
    /// `#[cfg(test)] mod … { … }` region.
    pub in_test: Vec<bool>,
}

impl Lexed {
    /// True when the given rule is suppressed on `line` by an inline allow.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allows
            .get(&line)
            .map(|rules| rules.iter().any(|r| r == rule || r == "all"))
            .unwrap_or(false)
    }
}

/// Tokenize `source`, returning tokens, suppression map, and test mask.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut allows: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut allow_sites: Vec<(u32, Vec<String>)> = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                // Doc comments (`///`, `//!`) describe the suppression
                // syntax; only plain `//` comments enact it.
                let doc = comment.starts_with("///") || comment.starts_with("//!");
                if let Some(rules) = (!doc).then(|| parse_allow(&comment)).flatten() {
                    for l in [line, line + 1] {
                        allows.entry(l).or_default().extend(rules.iter().cloned());
                    }
                    allow_sites.push((line, rules));
                }
            }
            '/' if next == Some('*') => {
                // Nested block comments, as Rust allows.
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    match (chars[i], chars.get(i + 1).copied()) {
                        ('/', Some('*')) => {
                            depth += 1;
                            i += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            i += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            '"' => {
                let start_line = line;
                let consumed = skip_string(&chars[i..], &mut line);
                tokens.push(Token {
                    text: "\"…\"".into(),
                    kind: TokenKind::Literal,
                    line: start_line,
                });
                i += consumed;
            }
            'r' | 'b' if is_raw_or_byte_string(&chars[i..]) => {
                let start_line = line;
                let consumed = skip_raw_or_byte(&chars[i..], &mut line);
                tokens.push(Token {
                    text: "\"…\"".into(),
                    kind: TokenKind::Literal,
                    line: start_line,
                });
                i += consumed;
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs. char literal (`'a'`, `'\n'`).
                let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                    && chars.get(i + 2).copied() != Some('\'');
                if is_lifetime {
                    i += 1; // the quote
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    tokens.push(Token { text: "'…'".into(), kind: TokenKind::Literal, line });
                    i += 1; // opening quote
                    while i < chars.len() {
                        match chars[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                // Unterminated char literal; bail at the line end.
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Keep float literals like `1.5e3` or `1e-6` in one token so a
                // trailing `.` never pairs with a following identifier.
                if c.is_ascii_digit() {
                    while i < chars.len()
                        && (chars[i].is_ascii_alphanumeric()
                            || chars[i] == '_'
                            || (chars[i] == '.'
                                && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())))
                    {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                tokens.push(Token { text, kind: TokenKind::Ident, line });
            }
            other => {
                tokens.push(Token { text: other.to_string(), kind: TokenKind::Punct, line });
                i += 1;
            }
        }
    }

    let in_test = mark_test_regions(&tokens);
    Lexed { tokens, allows, allow_sites, in_test }
}

/// Parse `nimblock: allow(rule-a, rule-b)` out of a comment, if present.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let after = comment.split("nimblock:").nth(1)?;
    let args = after.trim().strip_prefix("allow(")?;
    let inner = args.split(')').next()?;
    let rules: Vec<String> = inner
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Number of chars consumed by a `"…"` string starting at `chars[0]`.
fn skip_string(chars: &[char], line: &mut u32) -> usize {
    let mut i = 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                // A `\` line continuation still advances the source line.
                if chars.get(i + 1).copied() == Some('\n') {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Does the slice start a raw string (`r"`, `r#"`), byte string (`b"`),
/// raw byte string (`br#"`), or byte char (`b'`)?
fn is_raw_or_byte_string(chars: &[char]) -> bool {
    let mut i = 0;
    if chars[0] == 'b' {
        i = 1;
    }
    if chars.get(i).copied() == Some('r') {
        i += 1;
        while chars.get(i).copied() == Some('#') {
            i += 1;
        }
        return chars.get(i).copied() == Some('"');
    }
    chars[0] == 'b' && matches!(chars.get(1).copied(), Some('"') | Some('\''))
}

/// Consume a raw/byte string (or byte char) and return the char count.
fn skip_raw_or_byte(chars: &[char], line: &mut u32) -> usize {
    let mut i = 0;
    if chars[0] == 'b' {
        i = 1;
    }
    if chars.get(i).copied() == Some('r') {
        i += 1;
        let mut hashes = 0;
        while chars.get(i).copied() == Some('#') {
            hashes += 1;
            i += 1;
        }
        i += 1; // opening quote
        loop {
            match chars.get(i).copied() {
                None => return i,
                Some('\n') => {
                    *line += 1;
                    i += 1;
                }
                Some('"') => {
                    let close = (1..=hashes).all(|k| chars.get(i + k).copied() == Some('#'));
                    i += 1;
                    if close {
                        return i + hashes;
                    }
                }
                Some(_) => i += 1,
            }
        }
    }
    // b"…" or b'…'
    let quote = chars[1];
    i = 2;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                if chars.get(i + 1).copied() == Some('\n') {
                    *line += 1;
                }
                i += 2;
            }
            c if c == quote => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Mask every token inside a `#[cfg(test)] mod … { … }` region.
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    const ATTR: [&str; 7] = ["#", "[", "cfg", "(", "test", ")", "]"];
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let matches_attr = tokens.len() - i >= ATTR.len()
            && ATTR.iter().enumerate().all(|(k, want)| tokens[i + k].text == *want);
        if matches_attr {
            // Accept `#[cfg(test)]` followed (possibly after more attributes
            // or visibility) by `mod name {`.
            let mut j = i + ATTR.len();
            while j < tokens.len() && tokens[j].text != "mod" && tokens[j].text != "fn" {
                // Skip further attributes / `pub` before the item keyword,
                // but give up quickly on anything else.
                if j - (i + ATTR.len()) > 12 {
                    break;
                }
                j += 1;
            }
            if tokens.get(j).map(|t| t.text.as_str()) == Some("mod") {
                while j < tokens.len() && tokens[j].text != "{" {
                    j += 1;
                }
                let mut depth = 0usize;
                let end = loop {
                    if j >= tokens.len() {
                        break tokens.len();
                    }
                    match tokens[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break j + 1;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                };
                for slot in mask.iter_mut().take(end).skip(i) {
                    *slot = true;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // this .unwrap() is a comment
            /* and /* this nested one */ too .unwrap() */
            let s = ".unwrap()";
            let r = r#".unwrap()"#;
            let c = '"';
            real.unwrap();
        "##;
        let lexed = lex(src);
        let unwraps: Vec<&Token> =
            lexed.tokens.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 1, "only the real call should tokenize");
        assert_eq!(unwraps[0].line, 7);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x';";
        let lexed = lex(src);
        let literals =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(literals, 1, "only 'x' is a char literal");
        assert!(lexed.tokens.iter().any(|t| t.text == "str"));
    }

    #[test]
    fn allow_comment_covers_its_line_and_the_next() {
        let src = "\n// nimblock: allow(no-println)\nprintln!(\"x\");\n";
        let lexed = lex(src);
        assert!(lexed.allowed(2, "no-println"));
        assert!(lexed.allowed(3, "no-println"));
        assert!(!lexed.allowed(4, "no-println"));
        assert!(!lexed.allowed(3, "no-unwrap-hot-path"));
    }

    #[test]
    fn trailing_allow_comment_covers_its_own_line() {
        let src = "foo.unwrap(); // nimblock: allow(no-unwrap-hot-path, no-println)\n";
        let lexed = lex(src);
        assert!(lexed.allowed(1, "no-unwrap-hot-path"));
        assert!(lexed.allowed(1, "no-println"));
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { b.unwrap(); }\n}\nfn tail() { c.unwrap(); }\n";
        let lexed = lex(src);
        let unmasked: Vec<&str> = lexed
            .tokens
            .iter()
            .zip(&lexed.in_test)
            .filter(|&(t, &m)| !m && t.text == "unwrap")
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert_eq!(unmasked.len(), 2, "live() and tail() unwraps stay visible");
        let masked = lexed
            .tokens
            .iter()
            .zip(&lexed.in_test)
            .filter(|&(t, &m)| m && t.text == "unwrap")
            .count();
        assert_eq!(masked, 1, "the test-module unwrap is masked");
    }

    #[test]
    fn float_literals_do_not_split() {
        let lexed = lex("let x = 1.5e3 + self.0 as f64;");
        assert!(lexed.tokens.iter().any(|t| t.text == "1.5e3"));
        assert!(lexed.tokens.iter().any(|t| t.text == "f64"));
    }

    #[test]
    fn nested_block_comments_close_at_the_right_depth() {
        // Two levels of nesting, a close-looking `*/` inside a deeper
        // level, and code resuming immediately after the true close.
        let src = "/* a /* b /* c */ b */ a */ live.unwrap();\n/*/ odd open */ tail.unwrap();";
        let lexed = lex(src);
        let unwraps: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| t.text == "unwrap")
            .map(|t| t.line)
            .collect();
        assert_eq!(unwraps, [1, 2], "exactly the two real unwraps survive");
        assert!(
            !lexed.tokens.iter().any(|t| ["a", "b", "c", "odd"].contains(&t.text.as_str())),
            "no comment body leaks into the token stream"
        );
    }

    #[test]
    fn multiline_block_comments_keep_line_numbers_straight() {
        let src = "/* line1\nline2 /* nested\nstill nested */\n*/\nafter.unwrap();";
        let lexed = lex(src);
        let unwrap = lexed.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!(unwrap.line, 5);
    }

    #[test]
    fn raw_strings_with_hashes_end_at_the_matching_guard() {
        // `"#` inside an `r##"…"##` string must not terminate it; the
        // tokens after the true close must survive.
        let src = r####"let a = r##"contains "# and .unwrap() and // comment"##; real.unwrap();"####;
        let lexed = lex(src);
        let unwraps: Vec<&Token> =
            lexed.tokens.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 1, "only the call outside the raw string tokenizes");
        assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count(), 1);
    }

    #[test]
    fn raw_string_edge_shapes_lex_cleanly() {
        // Empty, quote-bearing, byte-raw, and block-comment-bearing raw
        // strings, each followed by a live token that must tokenize.
        for (src, expect) in [
            (r###"let e = r#""#; x.unwrap();"###, 1),
            (r###"let q = r#"""#; x.unwrap();"###, 1),
            (r####"let b = br##"bytes "# here"##; x.unwrap();"####, 1),
            (r###"let c = r#"/* not a comment */"#; x.unwrap();"###, 1),
        ] {
            let lexed = lex(src);
            let n = lexed.tokens.iter().filter(|t| t.text == "unwrap").count();
            assert_eq!(n, expect, "in {src:?}");
        }
    }

    #[test]
    fn multiline_strings_are_attributed_to_their_opening_line() {
        // Plain strings spanning lines (including a `\` continuation)
        // must stamp the literal with the line it opened on and keep
        // counting lines for what follows.
        let src = "let s = \"one\ntwo\nthree\";\nlet t = \"a\\\nb\";\nafter.unwrap();";
        let lexed = lex(src);
        let literals: Vec<u32> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .map(|t| t.line)
            .collect();
        assert_eq!(literals, [1, 4], "literals carry their opening line");
        let unwrap = lexed.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert_eq!(unwrap.line, 6);
    }

    #[test]
    fn allow_sites_record_the_comment_line_only() {
        let src = "// nimblock: allow(no-println)\nprintln!(\"x\");\nfoo.unwrap(); // nimblock: allow(no-unwrap-hot-path) — justification here\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.allow_sites,
            vec![
                (1, vec!["no-println".to_owned()]),
                (3, vec!["no-unwrap-hot-path".to_owned()]),
            ]
        );
    }

    #[test]
    fn doc_comments_describe_suppressions_without_enacting_them() {
        let src = "/// Suppress with `// nimblock: allow(no-println)`.\n//! And `// nimblock: allow(no-unwrap-hot-path)` likewise.\nfn f() {}\n";
        let lexed = lex(src);
        assert!(lexed.allows.is_empty(), "{:?}", lexed.allows);
        assert!(lexed.allow_sites.is_empty(), "{:?}", lexed.allow_sites);
    }
}
