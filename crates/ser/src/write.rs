//! Compact and pretty JSON writers.

use std::fmt::Write as _;

use crate::Json;

impl Json {
    /// Renders the value as compact JSON (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Renders the value as pretty JSON (two-space indent, one pair or
    /// element per line), matching the layout `serde_json::to_string_pretty`
    /// produced for the same documents.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }
}

fn write_value(out: &mut String, value: &Json, indent: Option<usize>, depth: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Json::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Json::F64(f) => write_f64(out, *f),
        Json::Str(s) => write_string(out, s),
        Json::Array(items) => write_seq(out, indent, depth, '[', ']', items.iter(), |out, item, depth| {
            write_value(out, item, indent, depth);
        }),
        Json::Object(pairs) => {
            write_seq(out, indent, depth, '{', '}', pairs.iter(), |out, (key, item), depth| {
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth);
            });
        }
    }
}

fn write_seq<I, T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: I,
    mut write_item: impl FnMut(&mut String, T, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

/// Writes a finite float so that re-parsing yields the same bits; whole
/// floats keep a trailing `.0` so they stay floats across a round-trip.
/// Non-finite values have no JSON representation and are written as `null`.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f.fract() == 0.0 && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        // Rust's shortest round-trip formatting.
        let _ = write!(out, "{f}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        Json::Object(vec![
            ("name".into(), Json::Str("a\"b".into())),
            ("n".into(), Json::U64(3)),
            ("xs".into(), Json::Array(vec![Json::U64(1), Json::Null])),
            ("empty".into(), Json::Array(vec![])),
        ])
    }

    #[test]
    fn compact_has_no_whitespace() {
        assert_eq!(
            sample().to_compact(),
            r#"{"name":"a\"b","n":3,"xs":[1,null],"empty":[]}"#
        );
    }

    #[test]
    fn pretty_indents_two_spaces() {
        let text = sample().to_pretty();
        assert!(text.starts_with("{\n  \"name\": \"a\\\"b\",\n  \"n\": 3,"), "{text}");
        assert!(text.contains("\"xs\": [\n    1,\n    null\n  ]"), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(Json::F64(2.0).to_compact(), "2.0");
        assert_eq!(Json::F64(-0.5).to_compact(), "-0.5");
        assert_eq!(Json::F64(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::Str("\u{1}".into()).to_compact(), "\"\\u0001\"");
        assert_eq!(Json::Str("a\nb\tc".into()).to_compact(), "\"a\\nb\\tc\"");
    }
}
