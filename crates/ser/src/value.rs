//! The JSON document tree and error type.

use std::fmt;

/// An owned JSON value.
///
/// Numbers keep their lexical class: unsigned and signed integers stay
/// integers (full 64-bit fidelity — `SimTime::MAX` is `u64::MAX` and must
/// survive a round-trip), floats stay floats. Objects are an ordered list
/// of pairs so that re-encoding preserves field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Returns a one-word description of the value's type, for errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::U64(_) | Json::I64(_) | Json::F64(_) => "number",
            Json::Str(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    /// Returns the value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            Json::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Returns the value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(n) => Some(n),
            Json::U64(n) => i64::try_from(n).ok(),
            Json::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Returns the value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(f) => Some(f),
            _ => None,
        }
    }

    /// Returns the value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value's elements if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the value's pairs if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up `key` in an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A JSON parse or decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError(message.into())
    }

    /// Creates an "expected X, found Y" shape-mismatch error.
    pub fn expected(what: &str, found: &Json) -> Self {
        JsonError(format!("expected {what}, found {}", found.type_name()))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Json::U64(5).as_u64(), Some(5));
        assert_eq!(Json::I64(-5).as_u64(), None);
        assert_eq!(Json::I64(-5).as_i64(), Some(-5));
        assert_eq!(Json::F64(2.0).as_u64(), Some(2));
        assert_eq!(Json::F64(2.5).as_u64(), None);
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Json::Null.as_f64(), None);
    }

    #[test]
    fn get_finds_object_keys() {
        let obj = Json::Object(vec![("a".into(), Json::U64(1))]);
        assert_eq!(obj.get("a"), Some(&Json::U64(1)));
        assert_eq!(obj.get("b"), None);
        assert_eq!(Json::Null.get("a"), None);
    }

    #[test]
    fn error_messages_name_types() {
        let err = JsonError::expected("array", &Json::Bool(true));
        assert_eq!(err.to_string(), "expected array, found bool");
    }
}
