//! Minimal, dependency-free JSON layer for the Nimblock workspace.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace cannot depend on `serde`/`serde_json`. This crate provides the
//! small slice of their functionality the repo actually uses:
//!
//! * [`Json`] — an owned JSON document tree. Objects preserve insertion
//!   order so encode→decode→encode round-trips are byte-identical (the
//!   golden-file tests in `tests/goldens/` rely on this).
//! * [`ToJson`] / [`FromJson`] — the encode/decode traits, implemented for
//!   the usual primitives, `String`, `Vec<T>`, `Option<T>`, `Arc<T>`,
//!   2/3-tuples, and `BTreeMap<String, T>`.
//! * [`to_string`] / [`to_string_pretty`] / [`from_str`] — the
//!   `serde_json`-shaped entry points.
//! * [`impl_json_struct!`], [`impl_json_newtype!`],
//!   [`impl_json_enum_units!`], [`impl_json_enum_structs!`] — declarative
//!   macros replacing `#[derive(Serialize, Deserialize)]` for the type
//!   shapes that appear in this workspace.
//!
//! The wire format matches what `serde_json` produced for the same types
//! (externally-tagged enums, structs as objects, newtypes transparent), so
//! stimulus files written by earlier builds still parse.
//!
//! # Example
//!
//! ```
//! use nimblock_ser::{impl_json_struct, from_str, to_string, FromJson, ToJson};
//!
//! #[derive(Debug, PartialEq)]
//! struct Point { x: u32, y: u32 }
//! impl_json_struct!(Point { x, y });
//!
//! let p = Point { x: 3, y: 4 };
//! let text = to_string(&p);
//! assert_eq!(text, r#"{"x":3,"y":4}"#);
//! assert_eq!(from_str::<Point>(&text).unwrap(), p);
//! ```

mod macros;
mod parse;
mod value;
mod write;

pub use parse::parse;
pub use value::{Json, JsonError};

use std::collections::BTreeMap;
use std::sync::Arc;

/// Encodes a value as a [`Json`] tree.
pub trait ToJson {
    /// Returns the JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Decodes a value from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Reconstructs a value from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first shape mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Encodes `value` as compact JSON text.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_compact()
}

/// Encodes `value` as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_pretty()
}

/// Parses JSON text and decodes a `T` from it.
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed JSON or a shape mismatch.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

// ---------------------------------------------------------------------------
// Trait impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json { Json::U64(u64::from(*self)) }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v.as_u64().ok_or_else(|| JsonError::expected(stringify!($ty), v))?;
                <$ty>::try_from(raw).map_err(|_| JsonError::new(format!(
                    "number {raw} out of range for {}", stringify!($ty))))
            }
        }
    )+};
}
impl_unsigned!(u8, u16, u32, u64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}
impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let raw = v.as_u64().ok_or_else(|| JsonError::expected("usize", v))?;
        usize::try_from(raw).map_err(|_| JsonError::new(format!("number {raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($ty:ty),+) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json { Json::I64(i64::from(*self)) }
        }
        impl FromJson for $ty {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let raw = v.as_i64().ok_or_else(|| JsonError::expected(stringify!($ty), v))?;
                <$ty>::try_from(raw).map_err(|_| JsonError::new(format!(
                    "number {raw} out of range for {}", stringify!($ty))))
            }
        }
    )+};
}
impl_signed!(i8, i16, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}
impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("f64", v))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}
impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.as_f64().ok_or_else(|| JsonError::expected("f32", v))? as f32)
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(JsonError::expected("bool", other)),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(JsonError::expected("string", other)),
        }
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}
impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) => items.iter().map(T::from_json).collect(),
            other => Err(JsonError::expected("array", other)),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(value) => value.to_json(),
        }
    }
}
impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}
impl<T: FromJson> FromJson for Arc<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Arc::new(T::from_json(v)?))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            other => Err(JsonError::expected("2-element array", other)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}
impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Array(items) if items.len() == 3 => Ok((
                A::from_json(&items[0])?,
                B::from_json(&items[1])?,
                C::from_json(&items[2])?,
            )),
            other => Err(JsonError::expected("3-element array", other)),
        }
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}
impl<T: FromJson> FromJson for BTreeMap<String, T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), T::from_json(v)?)))
                .collect(),
            other => Err(JsonError::expected("object", other)),
        }
    }
}

/// Looks up `key` in an object's pair list and decodes it (used by
/// [`impl_json_struct!`]; not intended for direct use).
///
/// # Errors
///
/// Returns a [`JsonError`] if the key is missing or its value is malformed.
#[doc(hidden)]
pub fn field_from_json<T: FromJson>(pairs: &[(String, Json)], key: &str) -> Result<T, JsonError> {
    match pairs.iter().find(|(k, _)| k == key) {
        Some((_, value)) => {
            T::from_json(value).map_err(|e| JsonError::new(format!("field `{key}`: {e}")))
        }
        None => Err(JsonError::new(format!("missing field `{key}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(from_str::<u32>("7").unwrap(), 7);
        assert_eq!(from_str::<i64>("-9").unwrap(), -9);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn u64_max_keeps_integer_fidelity() {
        // f64 cannot represent u64::MAX exactly; the U64 variant must.
        let text = to_string(&u64::MAX);
        assert_eq!(text, "18446744073709551615");
        assert_eq!(from_str::<u64>(&text).unwrap(), u64::MAX);
    }

    #[test]
    fn out_of_range_numbers_error() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v)).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("4").unwrap(), Some(4));
        let pair = (1u32, "x".to_owned());
        assert_eq!(from_str::<(u32, String)>(&to_string(&pair)).unwrap(), pair);
        let arc = Arc::new(5u64);
        assert_eq!(from_str::<Arc<u64>>(&to_string(&arc)).unwrap(), arc);
    }

    #[test]
    fn map_roundtrips_sorted() {
        let mut map = BTreeMap::new();
        map.insert("b".to_owned(), 2u32);
        map.insert("a".to_owned(), 1u32);
        let text = to_string(&map);
        assert_eq!(text, r#"{"a":1,"b":2}"#);
        assert_eq!(from_str::<BTreeMap<String, u32>>(&text).unwrap(), map);
    }

    #[test]
    fn missing_field_is_reported_by_name() {
        let err = field_from_json::<u32>(&[("x".to_owned(), Json::U64(1))], "y").unwrap_err();
        assert!(err.to_string().contains("missing field `y`"));
    }
}
