//! A recursive-descent JSON parser.

use crate::{Json, JsonError};

/// Parses JSON text into a [`Json`] tree.
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting deeper than this is rejected to keep recursion bounded.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.eat(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one whole UTF-8 character.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    /// Parses the four hex digits after `\u` (and a following surrogate
    /// pair when needed), returning the decoded character. `self.pos` is at
    /// the first hex digit on entry and past the last on exit.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate; require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"));
                }
            }
            return Err(self.error("unpaired surrogate in \\u escape"));
        }
        char::from_u32(high).ok_or_else(|| self.error("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.error("expected four hex digits after \\u")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if !is_float {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Json::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse("2.5e2").unwrap(), Json::F64(250.0));
        assert_eq!(parse("\"a b\"").unwrap(), Json::Str("a b".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"xs": [1, {"y": null}], "z": "s"}"#).unwrap();
        assert_eq!(doc.get("z").unwrap().as_str(), Some("s"));
        let xs = doc.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[0], Json::U64(1));
        assert_eq!(xs[1].get("y"), Some(&Json::Null));
    }

    #[test]
    fn u64_max_parses_exactly() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            parse(r#""a\n\t\"\\Aé""#).unwrap(),
            Json::Str("a\n\t\"\\Aé".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1 2", "\"\\q\"", "\"\u{1}\"", "\"open"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_unpaired_surrogates() {
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn writer_output_reparses_identically() {
        let doc = parse(r#"{"a":[1,-2,2.5,"s\n",true,null],"b":{"c":18446744073709551615}}"#)
            .unwrap();
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
        assert_eq!(parse(&doc.to_pretty()).unwrap(), doc);
    }
}
