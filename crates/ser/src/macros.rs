//! Declarative macros replacing `#[derive(Serialize, Deserialize)]`.
//!
//! Four shapes cover every serialized type in the workspace:
//!
//! * [`impl_json_struct!`] — structs with named fields → JSON objects;
//! * [`impl_json_newtype!`] — single-field tuple structs → transparent
//!   (encoded as the inner value, like serde newtypes);
//! * [`impl_json_enum_units!`] — enums of unit variants → `"VariantName"`;
//! * [`impl_json_enum_structs!`] — enums of struct variants →
//!   `{"VariantName": {fields...}}` (serde's external tagging).
//!
//! Mixed enums (unit plus data variants, e.g. `SlotState`) implement the
//! traits by hand; there is exactly one in the workspace.

/// Implements [`ToJson`](crate::ToJson)/[`FromJson`](crate::FromJson) for a
/// struct with named fields, encoding it as an object in declaration order.
///
/// Invoke in the module that defines the struct so private fields resolve.
///
/// # Example
///
/// ```
/// use nimblock_ser::{impl_json_struct, from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// struct Pair { left: u32, right: Option<String> }
/// impl_json_struct!(Pair { left, right });
///
/// let text = to_string(&Pair { left: 1, right: None });
/// assert_eq!(text, r#"{"left":1,"right":null}"#);
/// assert_eq!(from_str::<Pair>(&text).unwrap().left, 1);
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Object(vec![
                    $((stringify!($field).to_owned(), $crate::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let pairs = v
                    .as_object()
                    .ok_or_else(|| $crate::JsonError::expected(
                        concat!("object for ", stringify!($ty)), v))?;
                Ok($ty {
                    $($field: $crate::field_from_json(pairs, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implements the JSON traits for a single-field tuple struct, encoding it
/// transparently as the inner value (serde newtype semantics).
///
/// # Example
///
/// ```
/// use nimblock_ser::{impl_json_newtype, from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// struct Id(u64);
/// impl_json_newtype!(Id);
///
/// assert_eq!(to_string(&Id(9)), "9");
/// assert_eq!(from_str::<Id>("9").unwrap(), Id(9));
/// ```
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                Ok($ty($crate::FromJson::from_json(v)?))
            }
        }
    };
}

/// Implements the JSON traits for an enum whose variants are all unit
/// variants, encoding each as its name string.
///
/// # Example
///
/// ```
/// use nimblock_ser::{impl_json_enum_units, from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// enum Mode { Fast, Careful }
/// impl_json_enum_units!(Mode { Fast, Careful });
///
/// assert_eq!(to_string(&Mode::Fast), "\"Fast\"");
/// assert_eq!(from_str::<Mode>("\"Careful\"").unwrap(), Mode::Careful);
/// assert!(from_str::<Mode>("\"Nope\"").is_err());
/// ```
#[macro_export]
macro_rules! impl_json_enum_units {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $($ty::$variant => $crate::Json::Str(stringify!($variant).to_owned()),)+
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    Some(other) => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{other}`", stringify!($ty)))),
                    None => Err($crate::JsonError::expected(
                        concat!(stringify!($ty), " variant string"), v)),
                }
            }
        }
    };
}

/// Implements the JSON traits for an enum whose variants all carry named
/// fields, using serde's external tagging: `{"Variant": {field: ...}}`.
///
/// # Example
///
/// ```
/// use nimblock_ser::{impl_json_enum_structs, from_str, to_string};
///
/// #[derive(Debug, PartialEq)]
/// enum Shape {
///     Circle { radius: u32 },
///     Rect { w: u32, h: u32 },
/// }
/// impl_json_enum_structs!(Shape {
///     Circle { radius },
///     Rect { w, h },
/// });
///
/// let text = to_string(&Shape::Rect { w: 2, h: 3 });
/// assert_eq!(text, r#"{"Rect":{"w":2,"h":3}}"#);
/// assert_eq!(from_str::<Shape>(&text).unwrap(), Shape::Rect { w: 2, h: 3 });
/// ```
#[macro_export]
macro_rules! impl_json_enum_structs {
    ($ty:ident { $($variant:ident { $($field:ident),+ $(,)? }),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $($ty::$variant { $($field),+ } => $crate::Json::Object(vec![(
                        stringify!($variant).to_owned(),
                        $crate::Json::Object(vec![
                            $((stringify!($field).to_owned(), $crate::ToJson::to_json($field)),)+
                        ]),
                    )]),)+
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> Result<Self, $crate::JsonError> {
                let pairs = v.as_object().ok_or_else(|| $crate::JsonError::expected(
                    concat!("externally tagged ", stringify!($ty), " object"), v))?;
                let (tag, inner) = match pairs {
                    [(tag, inner)] => (tag.as_str(), inner),
                    _ => return Err($crate::JsonError::new(concat!(
                        "expected a single-key object for ", stringify!($ty)))),
                };
                match tag {
                    $(stringify!($variant) => {
                        let fields = inner.as_object().ok_or_else(|| {
                            $crate::JsonError::expected(
                                concat!(stringify!($variant), " field object"), inner)
                        })?;
                        Ok($ty::$variant {
                            $($field: $crate::field_from_json(fields, stringify!($field))?,)+
                        })
                    })+
                    other => Err($crate::JsonError::new(format!(
                        "unknown {} variant `{other}`", stringify!($ty)))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{from_str, to_string};

    #[derive(Debug, PartialEq)]
    struct Inner(u64);
    impl_json_newtype!(Inner);

    #[derive(Debug, PartialEq)]
    struct Outer {
        id: Inner,
        tags: Vec<String>,
        note: Option<String>,
    }
    impl_json_struct!(Outer { id, tags, note });

    #[derive(Debug, PartialEq)]
    enum Event {
        Start { at: u64 },
        Move { from: u64, to: u64 },
    }
    impl_json_enum_structs!(Event {
        Start { at },
        Move { from, to },
    });

    #[test]
    fn nested_struct_roundtrips() {
        let value = Outer {
            id: Inner(7),
            tags: vec!["a".into(), "b".into()],
            note: Some("n".into()),
        };
        let text = to_string(&value);
        assert_eq!(text, r#"{"id":7,"tags":["a","b"],"note":"n"}"#);
        assert_eq!(from_str::<Outer>(&text).unwrap(), value);
    }

    #[test]
    fn struct_missing_field_errors_with_name() {
        let err = from_str::<Outer>(r#"{"id":7,"tags":[]}"#).unwrap_err();
        assert!(err.to_string().contains("missing field `note`"), "{err}");
    }

    #[test]
    fn enum_struct_variants_roundtrip() {
        for value in [Event::Start { at: 3 }, Event::Move { from: 1, to: 2 }] {
            let text = to_string(&value);
            assert_eq!(from_str::<Event>(&text).unwrap(), value);
        }
        assert!(from_str::<Event>(r#"{"Stop":{}}"#).is_err());
        assert!(from_str::<Event>(r#"{"Start":{"at":1},"Move":{"from":1,"to":2}}"#).is_err());
    }
}
