//! Trace-derived monitoring: the offline twin of the live monitor.
//!
//! A live run mirrors hypervisor events into a
//! [`nimblock_obs::MonitorState`] as they happen
//! ([`crate::Hypervisor::with_monitor`]). This module re-derives the same
//! windowed series from a recorded [`Trace`] instead, so:
//!
//! - post-mortem bundles can be built for schedules that never ran live —
//!   adversarial invariant fixtures, imported traces, or a trace salvaged
//!   from a panicking run ([`post_mortem`]);
//! - the Chrome exporter can draw queue-depth / utilization counter lanes
//!   for *any* trace ([`Trace::to_chrome`] calls [`derive_monitor`]).
//!
//! Both paths are pure functions of the trace and virtual time, so the
//! derived series is deterministic and thread-count-invariant wherever
//! the trace itself is.
//!
//! Exactness: counters (arrivals, retires, preemptions,
//! reconfigurations), busy time, and response times match the live
//! monitor exactly. Two gauges are necessarily approximations: the
//! derived queue depth counts *waiting applications* (the live monitor
//! counts unplaced tasks, which needs runtime state a trace does not
//! carry), and derived slowdown uses item-span durations (which include
//! input fetch) as the ideal-service denominator. The trace records no
//! bitstream-cache outcomes, so derived cache hit rates are always zero.

use std::collections::HashMap;

use nimblock_obs::{MonitorConfig, MonitorDoc, MonitorState, Span, SpanBuffer};

use crate::trace::{Trace, TraceEvent};
use crate::AppId;

/// Per-app bookkeeping while sweeping the trace.
struct AppInfo {
    arrival_us: u64,
    weight: u64,
    /// Sum of item-span durations (compute incl. input fetch).
    run_us: u64,
    /// Sum of reconfiguration-span durations charged to the app.
    reconfig_us: u64,
    /// Furthest end of any busy span seen so far — the occupancy proxy:
    /// the app is considered "running" at `t` while this exceeds `t`.
    active_until_us: u64,
    retired: bool,
}

/// Replays `trace` through a fresh monitor, producing the same windowed
/// series, flight-recorder entries, and SLO evaluation a live run with
/// `config` would have produced (up to the documented gauge
/// approximations). The returned state is already finalized at the
/// trace's end.
pub fn derive_monitor(trace: &Trace, config: MonitorConfig) -> MonitorState {
    let mut state = MonitorState::new(config, trace.slots());
    let mut apps: HashMap<u64, AppInfo> = HashMap::new();
    for event in trace.events() {
        let now = event.at().as_micros();
        match event {
            TraceEvent::Arrival { app, name, batch, priority, .. } => {
                state.on_arrival(now);
                apps.insert(
                    app.raw(),
                    AppInfo {
                        arrival_us: now,
                        weight: u64::from(priority.weight()),
                        run_us: 0,
                        reconfig_us: 0,
                        active_until_us: 0,
                        retired: false,
                    },
                );
                state.record(
                    now,
                    "arrival",
                    || format!("{app} {name} batch={batch} priority={priority:?}"),
                );
            }
            TraceEvent::Reconfig { slot, app, task, at, until } => {
                let (start, end) = (at.as_micros(), until.as_micros());
                state.on_reconfig(start, end);
                if let Some(info) = apps.get_mut(&app.raw()) {
                    info.reconfig_us += end.saturating_sub(start);
                    info.active_until_us = info.active_until_us.max(end);
                }
                state.record(
                    start,
                    "reconfig",
                    || format!("slot={slot} app={app} task={task} until={until}"),
                );
            }
            TraceEvent::Item { slot, app, task, item, at, until } => {
                let (start, end) = (at.as_micros(), until.as_micros());
                state.on_item_launch(slot.index(), start, end);
                if let Some(info) = apps.get_mut(&app.raw()) {
                    info.run_us += end.saturating_sub(start);
                    info.active_until_us = info.active_until_us.max(end);
                }
                state.record(
                    start,
                    "item",
                    || format!("slot={slot} app={app} task={task} item={item} until={until}"),
                );
            }
            TraceEvent::Preempt { slot, app, task, .. } => {
                state.on_preempt(now);
                // A batch preemption strikes an idle slot (its open item
                // span already ended, so this subtracts nothing); a
                // fine-grained preemption strikes mid-span and returns
                // the un-executed remainder — identical to the live path.
                state.on_item_abort(slot.index(), now);
                state.record(now, "preempt", || format!("slot={slot} victim={app} task={task}"));
            }
            TraceEvent::Retire { app, .. } => {
                if let Some(info) = apps.get_mut(&app.raw()) {
                    info.retired = true;
                    let response = now.saturating_sub(info.arrival_us);
                    let ideal = (info.run_us + info.reconfig_us).max(1);
                    let slowdown_milli = response.saturating_mul(1000) / ideal;
                    state.on_retire(now, info.weight, response, slowdown_milli);
                }
                state.record(now, "retire", || format!("{app}"));
            }
        }
        // Post-event occupancy sample, mirroring the live monitor's
        // per-event sampling point.
        let mut waiting = 0u64;
        let mut running = 0u64;
        for info in apps.values() {
            if info.retired {
                continue;
            }
            if info.active_until_us > now {
                running += 1;
            } else {
                waiting += 1;
            }
        }
        state.sample(now, waiting, waiting, running);
    }
    state.finalize(trace.end().as_micros());
    state
}

/// How many candidate span trees a post-mortem retains while looking for
/// the implicated app. A dump runs in a failure path (possibly from a
/// panic hook), so the candidate set is bounded like every other
/// span-recording path; overflow is counted in
/// [`MonitorDoc::span_dropped`] and surfaced by `analyze monitor`.
const POST_MORTEM_SPAN_CAP: usize = 256;

/// Builds a post-mortem bundle from a recorded trace: the derived
/// windowed series and flight recorder, stamped with what `trigger`ed
/// the dump, plus the implicated application's rendered span tree when
/// one can be attributed (an app that never retired has no tree).
///
/// Span-tree candidates flow through a bounded
/// [`SpanBuffer`] ([`POST_MORTEM_SPAN_CAP`] trees); on a trace with more
/// retired apps than that, trees past the cap are dropped, counted in
/// [`MonitorDoc::span_dropped`], and the implicated tree may be absent.
pub fn post_mortem(
    trace: &Trace,
    config: MonitorConfig,
    trigger: &str,
    failing_app: Option<AppId>,
) -> MonitorDoc {
    let state = derive_monitor(trace, config);
    let mut doc = state.to_doc();
    doc.trigger = Some(trigger.to_owned());
    let mut candidates = SpanBuffer::with_capacity(POST_MORTEM_SPAN_CAP);
    for span in crate::attribution::span_trees(trace) {
        candidates.push(span);
    }
    doc.span_dropped = candidates.dropped();
    doc.span_tree = failing_app.and_then(|app| {
        let suffix = format!(" {app}");
        candidates.spans().iter().find(|span| span.name.ends_with(&suffix)).map(Span::render)
    });
    doc
}

#[cfg(test)]
mod tests {
    use nimblock_app::{Priority, TaskId};
    use nimblock_fpga::SlotId;
    use nimblock_sim::SimTime;

    use super::*;

    fn fixture_trace() -> Trace {
        let mut trace = Trace::with_slots(2);
        trace.record(TraceEvent::Arrival {
            app: AppId::new(0),
            name: "lenet".into(),
            batch: 1,
            priority: Priority::High,
            at: SimTime::ZERO,
        });
        trace.record(TraceEvent::Reconfig {
            slot: SlotId::new(0),
            app: AppId::new(0),
            task: TaskId::new(0),
            at: SimTime::ZERO,
            until: SimTime::from_millis(80),
        });
        trace.record(TraceEvent::Item {
            slot: SlotId::new(0),
            app: AppId::new(0),
            task: TaskId::new(0),
            item: 0,
            at: SimTime::from_millis(80),
            until: SimTime::from_millis(130),
        });
        trace.record(TraceEvent::Retire { app: AppId::new(0), at: SimTime::from_millis(130) });
        trace
    }

    #[test]
    fn derivation_recovers_counts_and_busy_time() {
        let state = derive_monitor(&fixture_trace(), MonitorConfig::with_window_micros(10_000));
        let windows = state.windows();
        // Windows 0..12 cover [0, 130 ms); the post-event occupancy
        // sample at the retire instant (exactly 130 ms) opens one
        // trailing window, just as the live monitor's sampling does.
        assert_eq!(windows.len(), 14);
        let arrivals: u64 = windows.iter().map(|w| w.arrivals).sum();
        let retires: u64 = windows.iter().map(|w| w.retires).sum();
        let reconfigs: u64 = windows.iter().map(|w| w.reconfigurations).sum();
        let busy: u64 = windows.iter().map(|w| w.busy_micros).sum();
        assert_eq!((arrivals, retires, reconfigs), (1, 1, 1));
        assert_eq!(busy, 130_000, "80ms reconfig + 50ms item");
        // Windows 0..8 are fully busy (the reconfig stream), so each
        // holds exactly one slot-window of busy time.
        assert_eq!(windows[0].busy_micros, 10_000);
        assert_eq!(state.slots(), 2);
        let resp: u64 = windows.iter().map(|w| w.resp_high.count()).sum();
        assert_eq!(resp, 1, "High-priority retire lands in resp_high");
    }

    #[test]
    fn fine_preemption_returns_the_aborted_remainder() {
        let mut trace = Trace::with_slots(1);
        trace.record(TraceEvent::Item {
            slot: SlotId::new(0),
            app: AppId::new(0),
            task: TaskId::new(0),
            item: 0,
            at: SimTime::ZERO,
            until: SimTime::from_millis(10),
        });
        trace.record(TraceEvent::Preempt {
            slot: SlotId::new(0),
            app: AppId::new(0),
            task: TaskId::new(0),
            at: SimTime::from_millis(4),
        });
        let state = derive_monitor(&trace, MonitorConfig::with_window_micros(1_000));
        let busy: u64 = state.windows().iter().map(|w| w.busy_micros).sum();
        assert_eq!(busy, 4_000, "6 ms of the 10 ms span were never executed");
    }

    #[test]
    fn post_mortem_carries_trigger_and_span_tree() {
        let trace = fixture_trace();
        let doc = post_mortem(
            &trace,
            MonitorConfig::default(),
            "invariant: token-conservation",
            Some(AppId::new(0)),
        );
        assert_eq!(doc.trigger.as_deref(), Some("invariant: token-conservation"));
        let tree = doc.span_tree.expect("retired app has a span tree");
        assert!(tree.contains("lenet"), "{tree}");
        assert!(!doc.recorder.is_empty());
        assert_eq!(doc.span_dropped, 0, "one app is far below the candidate cap");
        // An app that never retired has no attributable tree.
        let doc = post_mortem(&trace, MonitorConfig::default(), "x", Some(AppId::new(9)));
        assert!(doc.span_tree.is_none());
    }

    #[test]
    fn post_mortem_span_candidates_are_bounded() {
        // 300 retired apps overflow the 256-tree candidate buffer:
        // span_trees yields trees in arrival order, so the last 44 are
        // dropped and counted, and an implicated app past the cap gets
        // no tree while one inside the cap still does.
        let mut trace = Trace::with_slots(1);
        let apps = 300u64;
        for i in 0..apps {
            let base = i * 1_000;
            trace.record(TraceEvent::Arrival {
                app: AppId::new(i),
                name: "lenet".into(),
                batch: 1,
                priority: Priority::Low,
                at: SimTime::from_micros(base),
            });
            trace.record(TraceEvent::Item {
                slot: SlotId::new(0),
                app: AppId::new(i),
                task: TaskId::new(0),
                item: 0,
                at: SimTime::from_micros(base),
                until: SimTime::from_micros(base + 500),
            });
            trace.record(TraceEvent::Retire {
                app: AppId::new(i),
                at: SimTime::from_micros(base + 500),
            });
        }
        let doc = post_mortem(
            &trace,
            MonitorConfig::with_window_micros(100_000),
            "flood",
            Some(AppId::new(apps - 1)),
        );
        assert_eq!(doc.span_dropped, apps - super::POST_MORTEM_SPAN_CAP as u64);
        assert!(doc.span_tree.is_none(), "implicated tree fell past the cap");
        let doc = post_mortem(
            &trace,
            MonitorConfig::with_window_micros(100_000),
            "flood",
            Some(AppId::new(0)),
        );
        assert_eq!(doc.span_dropped, apps - super::POST_MORTEM_SPAN_CAP as u64);
        assert!(doc.span_tree.is_some(), "early arrival is inside the cap");
    }
}
