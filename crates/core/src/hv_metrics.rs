//! Hypervisor instrumentation: one handle per measured quantity.
//!
//! `HvMetrics` bundles every instrument the [`crate::Hypervisor`] updates.
//! By default the handles are *detached* — they record into their own
//! atomics without any registry, so the hot path costs the same whether a
//! collector is attached or not (one relaxed atomic op per update), and
//! per-hypervisor counts stay correct even when several boards run in one
//! process. [`HvMetrics::registered`] additionally publishes the handles
//! under `hv_*` names so `Registry::render_prometheus` exposes them.

use nimblock_app::Priority;
use nimblock_metrics::RunCounters;
use nimblock_obs::{Counter, Gauge, Histogram, QuantileDigest, Registry};

/// Every instrument the hypervisor maintains during a run.
#[derive(Debug, Clone, Default)]
pub struct HvMetrics {
    /// True when a registry is attached; gates the (wall-clock) decision
    /// latency measurement, which is the only instrument whose *collection*
    /// has nontrivial cost and nondeterministic value.
    pub(crate) timed: bool,
    /// Applications admitted into the pending queue.
    pub arrivals: Counter,
    /// Applications retired.
    pub retires: Counter,
    /// Batch- or fine-grained preemptions enacted.
    pub preemptions: Counter,
    /// Partial reconfigurations started on the CAP.
    pub reconfigurations: Counter,
    /// Launches deferred for lack of buffer memory.
    pub alloc_stalls: Counter,
    /// Bitstream registrations served from the cache (warm starts).
    pub bitstream_cache_hits: Counter,
    /// Bitstream registrations that stored a new image (cold starts).
    pub bitstream_cache_misses: Counter,
    /// Batch items completed on the fabric.
    pub items: Counter,
    /// Item completions discarded as stale (aborted by fine preemption).
    pub stale_completions: Counter,
    /// Simulated microseconds the CAP spent streaming bitstreams.
    pub cap_busy_micros: Counter,
    /// Reconfigurations currently in flight on the (serial) CAP: 0 or 1.
    pub reconfig_queue_depth: Gauge,
    /// Per-application wait time (arrival to first launch), microseconds.
    pub wait_micros: Histogram,
    /// Per-application response time (arrival to retire), microseconds.
    pub response_micros: Histogram,
    /// Wall-clock nanoseconds per `next_reconfig` policy consultation.
    /// Only observed when a registry is attached ([`HvMetrics::timed`]).
    pub decision_latency_nanos: Histogram,
    /// Response time of priority-weight-1 (Low) apps, microseconds.
    pub response_time_p1: Histogram,
    /// Response time of priority-weight-3 (Medium) apps, microseconds.
    pub response_time_p3: Histogram,
    /// Response time of priority-weight-9 (High) apps, microseconds.
    pub response_time_p9: Histogram,
    /// Slowdown (response / ideal service time, ×1000) of weight-1 apps.
    pub slowdown_p1: Histogram,
    /// Slowdown (×1000) of weight-3 apps.
    pub slowdown_p3: Histogram,
    /// Slowdown (×1000) of weight-9 apps.
    pub slowdown_p9: Histogram,
    /// Streaming P50/P95/P99 sketch over all response times, microseconds.
    pub response_quantiles: QuantileDigest,
    /// Streaming P50/P95/P99 sketch over all slowdowns (×1000).
    pub slowdown_quantiles: QuantileDigest,
    /// Streaming P50/P95/P99 sketch over wall-clock decision latency,
    /// nanoseconds. Only observed when [`HvMetrics::timed`].
    pub decision_latency_quantiles: QuantileDigest,
}

impl HvMetrics {
    /// Detached instruments: always-on counting, no exposition.
    pub fn detached() -> Self {
        HvMetrics::default()
    }

    /// Instruments registered in `registry` under `hv_*` names. Two
    /// hypervisors registered in the *same* registry share series (the
    /// registry dedupes by name), which aggregates their counts — per-board
    /// reports should keep detached metrics instead.
    pub fn registered(registry: &Registry) -> Self {
        Self::registered_with(registry, true)
    }

    /// Like [`HvMetrics::registered`], but with wall-clock decision-latency
    /// timing disabled: the `hv_decision_latency_nanos` series is registered
    /// (so exports keep a stable shape) but never observed. This is what
    /// cluster board shards use — every remaining instrument is driven by
    /// simulated time only, so the merged registry renders byte-identically
    /// across runs and thread counts.
    pub fn registered_untimed(registry: &Registry) -> Self {
        Self::registered_with(registry, false)
    }

    fn registered_with(registry: &Registry, timed: bool) -> Self {
        HvMetrics {
            timed,
            arrivals: registry.counter("hv_arrivals_total", "Applications admitted into the pending queue"),
            retires: registry.counter("hv_retires_total", "Applications retired (whole batch finished)"),
            preemptions: registry.counter("hv_preemptions_total", "Preemptions enacted (batch or fine-grained)"),
            reconfigurations: registry.counter("hv_reconfigurations_total", "Partial reconfigurations started on the CAP"),
            alloc_stalls: registry.counter("hv_alloc_stalls_total", "Launches deferred for lack of buffer memory"),
            bitstream_cache_hits: registry.counter("hv_bitstream_cache_hits_total", "Bitstream registrations served from the cache"),
            bitstream_cache_misses: registry.counter("hv_bitstream_cache_misses_total", "Bitstream registrations that stored a new image"),
            items: registry.counter("hv_items_total", "Batch items completed on the fabric"),
            stale_completions: registry.counter("hv_stale_completions_total", "Item completions discarded as stale after a fine preemption"),
            cap_busy_micros: registry.counter("hv_cap_busy_micros_total", "Simulated microseconds the CAP spent streaming bitstreams"),
            reconfig_queue_depth: registry.gauge("hv_reconfig_queue_depth", "Reconfigurations in flight on the serial CAP"),
            wait_micros: registry.histogram("hv_wait_micros", "Per-application wait time (arrival to first launch), simulated microseconds"),
            response_micros: registry.histogram("hv_response_micros", "Per-application response time (arrival to retire), simulated microseconds"),
            decision_latency_nanos: registry.histogram("hv_decision_latency_nanos", "Wall-clock nanoseconds per scheduler next_reconfig consultation"),
            // Per-priority series in fixed weight order (1, 3, 9) so a
            // cluster shard-merge renders byte-identically.
            response_time_p1: registry.histogram("hv_response_time_p1", "Response time of priority-weight-1 (Low) applications, simulated microseconds"),
            response_time_p3: registry.histogram("hv_response_time_p3", "Response time of priority-weight-3 (Medium) applications, simulated microseconds"),
            response_time_p9: registry.histogram("hv_response_time_p9", "Response time of priority-weight-9 (High) applications, simulated microseconds"),
            slowdown_p1: registry.histogram("hv_slowdown_p1", "Slowdown (response over ideal service time, x1000) of priority-weight-1 applications"),
            slowdown_p3: registry.histogram("hv_slowdown_p3", "Slowdown (x1000) of priority-weight-3 applications"),
            slowdown_p9: registry.histogram("hv_slowdown_p9", "Slowdown (x1000) of priority-weight-9 applications"),
            response_quantiles: registry.digest("hv_response_micros_quantiles", "P50/P95/P99 sketch of per-application response time, simulated microseconds"),
            slowdown_quantiles: registry.digest("hv_slowdown_milli_quantiles", "P50/P95/P99 sketch of per-application slowdown (x1000)"),
            decision_latency_quantiles: registry.digest("hv_decision_latency_nanos_quantiles", "P50/P95/P99 sketch of wall-clock scheduler decision latency, nanoseconds"),
        }
    }

    /// The per-priority response-time histogram for `priority`.
    pub fn response_time_for(&self, priority: Priority) -> &Histogram {
        match priority {
            Priority::Low => &self.response_time_p1,
            Priority::Medium => &self.response_time_p3,
            Priority::High => &self.response_time_p9,
        }
    }

    /// The per-priority slowdown histogram for `priority`.
    pub fn slowdown_for(&self, priority: Priority) -> &Histogram {
        match priority {
            Priority::Low => &self.slowdown_p1,
            Priority::Medium => &self.slowdown_p3,
            Priority::High => &self.slowdown_p9,
        }
    }

    /// Snapshot of the whole-run counters for the end-of-run report.
    pub fn run_counters(&self) -> RunCounters {
        RunCounters {
            arrivals: self.arrivals.get(),
            retires: self.retires.get(),
            preemptions: self.preemptions.get(),
            reconfigurations: self.reconfigurations.get(),
            alloc_stalls: self.alloc_stalls.get(),
            bitstream_cache_hits: self.bitstream_cache_hits.get(),
            bitstream_cache_misses: self.bitstream_cache_misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_metrics_count_without_a_registry() {
        let m = HvMetrics::detached();
        assert!(!m.timed);
        m.arrivals.inc();
        m.preemptions.add(2);
        let counters = m.run_counters();
        assert_eq!(counters.arrivals, 1);
        assert_eq!(counters.preemptions, 2);
    }

    #[test]
    fn registered_metrics_expose_hv_series() {
        let registry = Registry::new();
        let m = HvMetrics::registered(&registry);
        assert!(m.timed);
        m.arrivals.add(3);
        m.wait_micros.observe(150);
        let text = registry.render_prometheus();
        assert!(text.contains("hv_arrivals_total 3"), "{text}");
        assert!(text.contains("hv_wait_micros_count 1"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
    }

    #[test]
    fn untimed_registration_exposes_series_without_timing() {
        let registry = Registry::new();
        let m = HvMetrics::registered_untimed(&registry);
        assert!(!m.timed, "untimed shards must not take wall-clock samples");
        m.retires.add(2);
        let text = registry.render_prometheus();
        assert!(text.contains("hv_retires_total 2"), "{text}");
        // The latency series exists (stable export shape) but is empty.
        assert!(text.contains("hv_decision_latency_nanos_count 0"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
    }

    #[test]
    fn per_priority_series_register_in_fixed_weight_order() {
        let registry = Registry::new();
        let m = HvMetrics::registered(&registry);
        m.response_time_for(Priority::Low).observe(10);
        m.response_time_for(Priority::High).observe(30);
        m.slowdown_for(Priority::Medium).observe(2_000);
        m.response_quantiles.observe(10);
        let text = registry.render_prometheus();
        let p1 = text.find("hv_response_time_p1").expect("p1 registered");
        let p3 = text.find("hv_response_time_p3").expect("p3 registered");
        let p9 = text.find("hv_response_time_p9").expect("p9 registered");
        assert!(p1 < p3 && p3 < p9, "weight order must be 1 < 3 < 9");
        assert!(text.contains("hv_response_time_p1_count 1"), "{text}");
        assert!(text.contains("hv_slowdown_p3_count 1"), "{text}");
        assert!(
            text.contains("hv_response_micros_quantiles{quantile=\"0.5\"}"),
            "{text}"
        );
        nimblock_obs::validate_prometheus(&text).unwrap();
        // Two registrations render byte-identically after a shard merge.
        let target = Registry::new();
        target.merge_from(&registry);
        assert_eq!(target.render_prometheus(), text);
    }

    #[test]
    fn two_hypervisors_in_one_registry_share_series() {
        let registry = Registry::new();
        let a = HvMetrics::registered(&registry);
        let b = HvMetrics::registered(&registry);
        a.arrivals.inc();
        b.arrivals.inc();
        assert_eq!(a.arrivals.get(), 2, "same name must mean same series");
    }
}
