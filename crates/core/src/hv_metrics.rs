//! Hypervisor instrumentation: one handle per measured quantity.
//!
//! `HvMetrics` bundles every instrument the [`crate::Hypervisor`] updates.
//! By default the handles are *detached* — they record into their own
//! atomics without any registry, so the hot path costs the same whether a
//! collector is attached or not (one relaxed atomic op per update), and
//! per-hypervisor counts stay correct even when several boards run in one
//! process. [`HvMetrics::registered`] additionally publishes the handles
//! under `hv_*` names so `Registry::render_prometheus` exposes them.

use nimblock_metrics::RunCounters;
use nimblock_obs::{Counter, Gauge, Histogram, Registry};

/// Every instrument the hypervisor maintains during a run.
#[derive(Debug, Clone, Default)]
pub struct HvMetrics {
    /// True when a registry is attached; gates the (wall-clock) decision
    /// latency measurement, which is the only instrument whose *collection*
    /// has nontrivial cost and nondeterministic value.
    pub(crate) timed: bool,
    /// Applications admitted into the pending queue.
    pub arrivals: Counter,
    /// Applications retired.
    pub retires: Counter,
    /// Batch- or fine-grained preemptions enacted.
    pub preemptions: Counter,
    /// Partial reconfigurations started on the CAP.
    pub reconfigurations: Counter,
    /// Launches deferred for lack of buffer memory.
    pub alloc_stalls: Counter,
    /// Bitstream registrations served from the cache (warm starts).
    pub bitstream_cache_hits: Counter,
    /// Bitstream registrations that stored a new image (cold starts).
    pub bitstream_cache_misses: Counter,
    /// Batch items completed on the fabric.
    pub items: Counter,
    /// Item completions discarded as stale (aborted by fine preemption).
    pub stale_completions: Counter,
    /// Simulated microseconds the CAP spent streaming bitstreams.
    pub cap_busy_micros: Counter,
    /// Reconfigurations currently in flight on the (serial) CAP: 0 or 1.
    pub reconfig_queue_depth: Gauge,
    /// Per-application wait time (arrival to first launch), microseconds.
    pub wait_micros: Histogram,
    /// Per-application response time (arrival to retire), microseconds.
    pub response_micros: Histogram,
    /// Wall-clock nanoseconds per `next_reconfig` policy consultation.
    /// Only observed when a registry is attached ([`HvMetrics::timed`]).
    pub decision_latency_nanos: Histogram,
}

impl HvMetrics {
    /// Detached instruments: always-on counting, no exposition.
    pub fn detached() -> Self {
        HvMetrics::default()
    }

    /// Instruments registered in `registry` under `hv_*` names. Two
    /// hypervisors registered in the *same* registry share series (the
    /// registry dedupes by name), which aggregates their counts — per-board
    /// reports should keep detached metrics instead.
    pub fn registered(registry: &Registry) -> Self {
        Self::registered_with(registry, true)
    }

    /// Like [`HvMetrics::registered`], but with wall-clock decision-latency
    /// timing disabled: the `hv_decision_latency_nanos` series is registered
    /// (so exports keep a stable shape) but never observed. This is what
    /// cluster board shards use — every remaining instrument is driven by
    /// simulated time only, so the merged registry renders byte-identically
    /// across runs and thread counts.
    pub fn registered_untimed(registry: &Registry) -> Self {
        Self::registered_with(registry, false)
    }

    fn registered_with(registry: &Registry, timed: bool) -> Self {
        HvMetrics {
            timed,
            arrivals: registry.counter("hv_arrivals_total", "Applications admitted into the pending queue"),
            retires: registry.counter("hv_retires_total", "Applications retired (whole batch finished)"),
            preemptions: registry.counter("hv_preemptions_total", "Preemptions enacted (batch or fine-grained)"),
            reconfigurations: registry.counter("hv_reconfigurations_total", "Partial reconfigurations started on the CAP"),
            alloc_stalls: registry.counter("hv_alloc_stalls_total", "Launches deferred for lack of buffer memory"),
            bitstream_cache_hits: registry.counter("hv_bitstream_cache_hits_total", "Bitstream registrations served from the cache"),
            bitstream_cache_misses: registry.counter("hv_bitstream_cache_misses_total", "Bitstream registrations that stored a new image"),
            items: registry.counter("hv_items_total", "Batch items completed on the fabric"),
            stale_completions: registry.counter("hv_stale_completions_total", "Item completions discarded as stale after a fine preemption"),
            cap_busy_micros: registry.counter("hv_cap_busy_micros_total", "Simulated microseconds the CAP spent streaming bitstreams"),
            reconfig_queue_depth: registry.gauge("hv_reconfig_queue_depth", "Reconfigurations in flight on the serial CAP"),
            wait_micros: registry.histogram("hv_wait_micros", "Per-application wait time (arrival to first launch), simulated microseconds"),
            response_micros: registry.histogram("hv_response_micros", "Per-application response time (arrival to retire), simulated microseconds"),
            decision_latency_nanos: registry.histogram("hv_decision_latency_nanos", "Wall-clock nanoseconds per scheduler next_reconfig consultation"),
        }
    }

    /// Snapshot of the whole-run counters for the end-of-run report.
    pub fn run_counters(&self) -> RunCounters {
        RunCounters {
            arrivals: self.arrivals.get(),
            retires: self.retires.get(),
            preemptions: self.preemptions.get(),
            reconfigurations: self.reconfigurations.get(),
            alloc_stalls: self.alloc_stalls.get(),
            bitstream_cache_hits: self.bitstream_cache_hits.get(),
            bitstream_cache_misses: self.bitstream_cache_misses.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_metrics_count_without_a_registry() {
        let m = HvMetrics::detached();
        assert!(!m.timed);
        m.arrivals.inc();
        m.preemptions.add(2);
        let counters = m.run_counters();
        assert_eq!(counters.arrivals, 1);
        assert_eq!(counters.preemptions, 2);
    }

    #[test]
    fn registered_metrics_expose_hv_series() {
        let registry = Registry::new();
        let m = HvMetrics::registered(&registry);
        assert!(m.timed);
        m.arrivals.add(3);
        m.wait_micros.observe(150);
        let text = registry.render_prometheus();
        assert!(text.contains("hv_arrivals_total 3"), "{text}");
        assert!(text.contains("hv_wait_micros_count 1"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
    }

    #[test]
    fn untimed_registration_exposes_series_without_timing() {
        let registry = Registry::new();
        let m = HvMetrics::registered_untimed(&registry);
        assert!(!m.timed, "untimed shards must not take wall-clock samples");
        m.retires.add(2);
        let text = registry.render_prometheus();
        assert!(text.contains("hv_retires_total 2"), "{text}");
        // The latency series exists (stable export shape) but is empty.
        assert!(text.contains("hv_decision_latency_nanos_count 0"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
    }

    #[test]
    fn two_hypervisors_in_one_registry_share_series() {
        let registry = Registry::new();
        let a = HvMetrics::registered(&registry);
        let b = HvMetrics::registered(&registry);
        a.arrivals.inc();
        b.arrivals.inc();
        assert_eq!(a.arrivals.get(), 2, "same name must mean same series");
    }
}
