//! Dynamic schedule-invariant verification.
//!
//! Nimblock's correctness claims are invariants over the schedule the
//! hypervisor actually produced: the configuration port serializes partial
//! reconfigurations (paper §2.1), a slot never runs two things at once,
//! batch-preemption fires only at batch boundaries and evicts the
//! topologically-latest task first (§3.2, Algorithm 2), task-graph
//! dependencies are respected even under cross-batch pipelining (§3.1), and
//! every admitted batch item is processed exactly once. This module checks
//! all of them against a recorded [`Trace`] and reports *every* violation as
//! structured data — unlike the original `Trace::validate`, which stopped at
//! the first problem with a bare `String`.
//!
//! The checks are deliberately trace-only: they re-derive legality from the
//! event stream alone (plus the benchmark catalog for task graphs), so the
//! verifier can audit traces produced by this simulator, deserialized from
//! disk, or written by hand as adversarial fixtures.
//!
//! Entry points:
//!
//! * [`verify_trace`] — the full rule set, configured by [`InvariantConfig`].
//! * [`verify_hardware`] — only the physical-resource rules (CAP
//!   exclusivity, slot double-booking); this is what the legacy
//!   [`Trace::validate`] shim delegates to.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use nimblock_app::{benchmarks, AppSpec, Priority, TaskId};
use nimblock_fpga::SlotId;
use nimblock_ser::{impl_json_struct, FromJson, Json, JsonError, ToJson};
use nimblock_sim::{SimDuration, SimTime};

use crate::trace::{Trace, TraceEvent};
use crate::AppId;

/// One checkable invariant of a Nimblock schedule.
///
/// Each rule has a stable kebab-case [`id`](InvariantRule::id) used in JSON
/// output and fixture assertions, and a paper reference recording which
/// claim it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InvariantRule {
    /// At most one partial reconfiguration streams through the
    /// configuration access port at any time (paper §2.1).
    CapExclusive,
    /// Every reconfiguration occupies the port for exactly the device's
    /// serialization latency (paper §2.1: bitstream size over CAP
    /// bandwidth). Only checked when [`InvariantConfig::reconfig_latency`]
    /// is set.
    CapLatency,
    /// A slot is never double-booked: its reconfiguration and execution
    /// spans do not overlap (paper §2.2).
    SlotOverlap,
    /// A task occupies at most one slot at a time (paper §2.2).
    TaskSingleSlot,
    /// No batch item starts before its task-graph predecessors have
    /// produced the inputs it consumes — item `k` of a task needs item `k`
    /// of every predecessor under pipelining (paper §3.1).
    DagOrder,
    /// Batch-preemption fires only at batch boundaries (the victim has no
    /// item in flight and is not mid-reconfiguration) unless the overlay is
    /// checkpoint-capable (paper §3.2, §7).
    PreemptBoundary,
    /// The preemption victim is the topologically-latest placed task of its
    /// application (paper Algorithm 2).
    PreemptTopoLatest,
    /// A high-priority application holding its guaranteed single slot is
    /// never evicted for a lower-priority one (paper §4.1: high-priority
    /// applications are always candidates and the allocator grants every
    /// candidate one slot when slots suffice).
    PreemptPriority,
    /// Work-token conservation: every admitted batch item of every task is
    /// processed exactly once — none leaked, none duplicated (paper §3.1's
    /// PREMA-style accounting).
    TokenConservation,
    /// An application never occupies more slots than it has unfinished
    /// tasks — the ceiling the goal-number allocator enforces (paper §4.2).
    GoalCeiling,
    /// Lifecycle sanity: every event for an application falls between its
    /// arrival and retirement, and every admitted application retires.
    Lifecycle,
}

impl InvariantRule {
    /// Every rule, in checking order.
    pub const ALL: [InvariantRule; 11] = [
        InvariantRule::CapExclusive,
        InvariantRule::CapLatency,
        InvariantRule::SlotOverlap,
        InvariantRule::TaskSingleSlot,
        InvariantRule::DagOrder,
        InvariantRule::PreemptBoundary,
        InvariantRule::PreemptTopoLatest,
        InvariantRule::PreemptPriority,
        InvariantRule::TokenConservation,
        InvariantRule::GoalCeiling,
        InvariantRule::Lifecycle,
    ];

    /// The stable machine-readable rule identifier.
    pub const fn id(self) -> &'static str {
        match self {
            InvariantRule::CapExclusive => "cap-exclusive",
            InvariantRule::CapLatency => "cap-latency",
            InvariantRule::SlotOverlap => "slot-overlap",
            InvariantRule::TaskSingleSlot => "task-single-slot",
            InvariantRule::DagOrder => "dag-order",
            InvariantRule::PreemptBoundary => "preempt-boundary",
            InvariantRule::PreemptTopoLatest => "preempt-topo-latest",
            InvariantRule::PreemptPriority => "preempt-priority",
            InvariantRule::TokenConservation => "token-conservation",
            InvariantRule::GoalCeiling => "goal-ceiling",
            InvariantRule::Lifecycle => "lifecycle",
        }
    }

    /// The paper section whose claim this rule encodes.
    pub const fn paper_section(self) -> &'static str {
        match self {
            InvariantRule::CapExclusive | InvariantRule::CapLatency => "§2.1",
            InvariantRule::SlotOverlap | InvariantRule::TaskSingleSlot => "§2.2",
            InvariantRule::DagOrder | InvariantRule::TokenConservation => "§3.1",
            InvariantRule::PreemptBoundary => "§3.2",
            InvariantRule::PreemptTopoLatest => "Algorithm 2",
            InvariantRule::PreemptPriority => "§4.1",
            InvariantRule::GoalCeiling => "§4.2",
            InvariantRule::Lifecycle => "§2.2",
        }
    }

    /// Resolves a rule from its [`id`](InvariantRule::id).
    pub fn from_id(id: &str) -> Option<InvariantRule> {
        InvariantRule::ALL.into_iter().find(|rule| rule.id() == id)
    }
}

impl fmt::Display for InvariantRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

impl ToJson for InvariantRule {
    fn to_json(&self) -> Json {
        Json::Str(self.id().to_owned())
    }
}

impl FromJson for InvariantRule {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let id = v
            .as_str()
            .ok_or_else(|| JsonError::expected("invariant rule id string", v))?;
        InvariantRule::from_id(id)
            .ok_or_else(|| JsonError::new(format!("unknown invariant rule `{id}`")))
    }
}

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The violated rule.
    pub rule: InvariantRule,
    /// When the violation manifested.
    pub at: SimTime,
    /// The slot involved, when slot-specific.
    pub slot: Option<SlotId>,
    /// The application involved, when app-specific.
    pub app: Option<AppId>,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl_json_struct!(Violation { rule, at, slot, app, message });

impl Violation {
    fn new(rule: InvariantRule, at: SimTime, message: String) -> Self {
        Violation { rule, at, slot: None, app: None, message }
    }

    fn on_slot(mut self, slot: SlotId) -> Self {
        self.slot = Some(slot);
        self
    }

    fn for_app(mut self, app: AppId) -> Self {
        self.app = Some(app);
        self
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}: {}", self.rule, self.at, self.message)
    }
}

/// Configuration of [`verify_trace`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvariantConfig {
    /// Expected configuration-port occupancy per reconfiguration; when set,
    /// every traced reconfiguration span must last exactly this long
    /// ([`InvariantRule::CapLatency`]). Leave `None` for devices with
    /// SD-card load costs or heterogeneous bitstream sizes.
    pub reconfig_latency: Option<SimDuration>,
    /// Accept mid-item preemption (a checkpoint-capable overlay, the
    /// paper's §7 future work). Off for the evaluated batch-boundary-only
    /// system.
    pub allow_mid_item_preemption: bool,
    /// Also check the Nimblock-policy rules ([`InvariantRule::GoalCeiling`],
    /// [`InvariantRule::PreemptTopoLatest`],
    /// [`InvariantRule::PreemptPriority`]). The shipped baseline policies
    /// never preempt and respect the ceiling structurally, so this is safe
    /// to leave on for all of them; disable it for hand-written policies
    /// with different preemption contracts.
    pub nimblock_policy: bool,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        InvariantConfig {
            reconfig_latency: None,
            allow_mid_item_preemption: false,
            nimblock_policy: true,
        }
    }
}

impl InvariantConfig {
    /// Only the mechanism-level rules: hardware legality, DAG order, token
    /// conservation, lifecycle — no policy-specific checks.
    pub fn mechanism_only() -> Self {
        InvariantConfig { nimblock_policy: false, ..InvariantConfig::default() }
    }

    /// Sets the expected per-reconfiguration port occupancy.
    pub fn with_reconfig_latency(mut self, latency: SimDuration) -> Self {
        self.reconfig_latency = Some(latency);
        self
    }

    /// Accepts mid-item preemption (checkpoint-capable overlay).
    pub fn with_mid_item_preemption(mut self) -> Self {
        self.allow_mid_item_preemption = true;
        self
    }
}

/// The outcome of verifying one trace: all violations, plus how much was
/// checked (so "clean" is distinguishable from "empty").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantReport {
    /// Every violation found, in time order.
    pub violations: Vec<Violation>,
    /// How many trace events were examined.
    pub events_checked: usize,
    /// How many applications the trace admitted.
    pub apps_seen: usize,
}

impl_json_struct!(InvariantReport { violations, events_checked, apps_seen });

impl InvariantReport {
    /// Returns `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Returns the violations of one rule.
    pub fn of_rule(&self, rule: InvariantRule) -> Vec<&Violation> {
        self.violations.iter().filter(|v| v.rule == rule).collect()
    }

    /// Returns the distinct rules that fired.
    pub fn rules_fired(&self) -> BTreeSet<InvariantRule> {
        self.violations.iter().map(|v| v.rule).collect()
    }
}

impl fmt::Display for InvariantReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "invariants clean: {} events, {} applications, 0 violations",
                self.events_checked, self.apps_seen
            );
        }
        writeln!(
            f,
            "{} invariant violation(s) in {} events:",
            self.violations.len(),
            self.events_checked
        )?;
        for violation in &self.violations {
            writeln!(f, "  {violation}")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Pass A: span normalization.
// ---------------------------------------------------------------------------

/// Per-trace derived data shared by the rule checkers.
///
/// The hypervisor traces each item's *scheduled* completion at launch time;
/// a fine-grained preemption aborts the in-flight item, so its traced span
/// must be truncated at the preemption instant before any span math
/// (otherwise the abandoned tail would double-book the slot against the
/// reconfiguration that evicted it). Aborted items do not count as
/// completions — the resumed launch completes the item.
struct SpanData {
    /// Item event index → truncated end (the preemption instant).
    truncated: HashMap<usize, SimTime>,
    /// Preempt event indices that interrupted an in-flight item.
    mid_item: HashSet<usize>,
    /// Preempt event indices that interrupted an in-flight reconfiguration.
    during_reconfig: HashSet<usize>,
    /// Preempt event index → the application the slot was next
    /// reconfigured for (the preemptor).
    preemptor: HashMap<usize, AppId>,
    /// Completed (untruncated) items per (app, task): `(until, item)`,
    /// sorted by completion time.
    completions: HashMap<(AppId, TaskId), Vec<(SimTime, u32)>>,
}

impl SpanData {
    fn collect(events: &[TraceEvent]) -> SpanData {
        let mut data = SpanData {
            truncated: HashMap::new(),
            mid_item: HashSet::new(),
            during_reconfig: HashSet::new(),
            preemptor: HashMap::new(),
            completions: HashMap::new(),
        };
        let mut inflight_item: HashMap<SlotId, usize> = HashMap::new();
        let mut inflight_reconfig: HashMap<SlotId, usize> = HashMap::new();
        let mut pending_preempts: HashMap<SlotId, Vec<usize>> = HashMap::new();
        for (index, event) in events.iter().enumerate() {
            match event {
                TraceEvent::Item { slot, .. } => {
                    inflight_item.insert(*slot, index);
                }
                TraceEvent::Reconfig { slot, app, .. } => {
                    inflight_reconfig.insert(*slot, index);
                    for preempt in pending_preempts.remove(slot).unwrap_or_default() {
                        data.preemptor.insert(preempt, *app);
                    }
                }
                TraceEvent::Preempt { slot, app, task, at } => {
                    if let Some(&item_index) = inflight_item.get(slot) {
                        if let TraceEvent::Item {
                            app: item_app, task: item_task, at: started, until, ..
                        } = &events[item_index]
                        {
                            if item_app == app && item_task == task && started <= at && at < until
                            {
                                data.truncated.insert(item_index, *at);
                                data.mid_item.insert(index);
                            }
                        }
                    }
                    if let Some(&reconfig_index) = inflight_reconfig.get(slot) {
                        if let TraceEvent::Reconfig {
                            app: r_app, task: r_task, at: started, until, ..
                        } = &events[reconfig_index]
                        {
                            if r_app == app && r_task == task && started <= at && at < until {
                                data.during_reconfig.insert(index);
                            }
                        }
                    }
                    pending_preempts.entry(*slot).or_default().push(index);
                }
                _ => {}
            }
        }
        for (index, event) in events.iter().enumerate() {
            if let TraceEvent::Item { app, task, item, until, .. } = event {
                if !data.truncated.contains_key(&index) {
                    data.completions
                        .entry((*app, *task))
                        .or_default()
                        .push((*until, *item));
                }
            }
        }
        for list in data.completions.values_mut() {
            list.sort();
        }
        data
    }

    /// How many items of `(app, task)` had completed by time `t`
    /// (inclusive).
    fn completed_before(&self, app: AppId, task: TaskId, t: SimTime) -> u32 {
        match self.completions.get(&(app, task)) {
            Some(list) => list.partition_point(|&(until, _)| until <= t) as u32,
            None => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Hardware rules (shared with the legacy `Trace::validate` shim).
// ---------------------------------------------------------------------------

fn hardware_violations(trace: &Trace, data: &SpanData) -> Vec<Violation> {
    let events = trace.events();
    let mut violations = Vec::new();
    // Configuration-port exclusivity: reconfiguration spans are disjoint.
    let mut cap: Vec<(SimTime, SimTime, SlotId)> = events
        .iter()
        .filter_map(|event| match event {
            TraceEvent::Reconfig { slot, at, until, .. } => Some((*at, *until, *slot)),
            _ => None,
        })
        .collect();
    cap.sort();
    for pair in cap.windows(2) {
        if pair[1].0 < pair[0].1 {
            violations.push(
                Violation::new(
                    InvariantRule::CapExclusive,
                    pair[1].0,
                    format!(
                        "configuration port overlap: [{}, {}) and [{}, {})",
                        pair[0].0, pair[0].1, pair[1].0, pair[1].1
                    ),
                )
                .on_slot(pair[1].2),
            );
        }
    }
    // Slot exclusivity: per slot, reconfiguration and (truncated) item
    // spans are disjoint.
    for index in 0..trace.slots() {
        let slot = SlotId::new(index as u32);
        let mut spans: Vec<(SimTime, SimTime)> = events
            .iter()
            .enumerate()
            .filter_map(|(event_index, event)| match event {
                TraceEvent::Reconfig { slot: s, at, until, .. } if *s == slot => {
                    Some((*at, *until))
                }
                TraceEvent::Item { slot: s, at, until, .. } if *s == slot => {
                    let until = data
                        .truncated
                        .get(&event_index)
                        .copied()
                        .unwrap_or(*until);
                    Some((*at, until))
                }
                _ => None,
            })
            .collect();
        spans.sort();
        for pair in spans.windows(2) {
            if pair[1].0 < pair[0].1 {
                violations.push(
                    Violation::new(
                        InvariantRule::SlotOverlap,
                        pair[1].0,
                        format!(
                            "{slot} overlap: [{}, {}) and [{}, {})",
                            pair[0].0, pair[0].1, pair[1].0, pair[1].1
                        ),
                    )
                    .on_slot(slot),
                );
            }
        }
    }
    violations
}

/// Checks only the physical-resource invariants: configuration-port
/// exclusivity and slot double-booking. Fine-preemption-aware: an item span
/// aborted by a traced mid-item preemption is truncated at the preemption
/// instant before overlap checking.
///
/// This is the rule subset the legacy [`Trace::validate`] delegates to; use
/// [`verify_trace`] for the full invariant set.
pub fn verify_hardware(trace: &Trace) -> Vec<Violation> {
    let data = SpanData::collect(trace.events());
    hardware_violations(trace, &data)
}

// ---------------------------------------------------------------------------
// Pass B: event-ordered replay for the stateful rules.
// ---------------------------------------------------------------------------

struct AppState {
    name: String,
    batch: u32,
    priority: Priority,
    arrival: SimTime,
    retired: Option<SimTime>,
    /// Benchmark spec, when the traced name resolves in the catalog;
    /// graph-dependent rules are skipped otherwise.
    spec: Option<AppSpec>,
    /// Task → position in topological order (empty when `spec` is `None`).
    topo_pos: HashMap<TaskId, usize>,
    /// Tasks observed in any Reconfig/Item event (the task universe for
    /// token conservation when the graph is unknown).
    seen_tasks: BTreeSet<TaskId>,
}

struct Replay<'a> {
    config: &'a InvariantConfig,
    data: &'a SpanData,
    slot_count: usize,
    apps: BTreeMap<AppId, AppState>,
    bindings: BTreeMap<SlotId, (AppId, TaskId)>,
}

impl<'a> Replay<'a> {
    fn new(trace: &Trace, config: &'a InvariantConfig, data: &'a SpanData) -> Self {
        Replay {
            config,
            data,
            slot_count: trace.slots(),
            apps: BTreeMap::new(),
            bindings: BTreeMap::new(),
        }
    }

    /// A bound task releases its slot the instant its whole batch is done;
    /// the binding table is cleaned lazily, so liveness is time-qualified.
    fn released(&self, app: AppId, task: TaskId, t: SimTime) -> bool {
        match self.apps.get(&app) {
            Some(state) => self.data.completed_before(app, task, t) >= state.batch,
            None => false,
        }
    }

    /// Slots `app` occupies at time `t` (live bindings only).
    fn occupancy(&self, app: AppId, t: SimTime) -> usize {
        self.bindings
            .values()
            .filter(|&&(a, task)| a == app && !self.released(a, task, t))
            .count()
    }

    fn check_lifecycle(
        &self,
        app: AppId,
        at: SimTime,
        what: &str,
        out: &mut Vec<Violation>,
    ) -> bool {
        match self.apps.get(&app) {
            None => {
                out.push(
                    Violation::new(
                        InvariantRule::Lifecycle,
                        at,
                        format!("{what} for {app}, which never arrived"),
                    )
                    .for_app(app),
                );
                false
            }
            Some(state) => match state.retired {
                Some(retired) if retired < at => {
                    out.push(
                        Violation::new(
                            InvariantRule::Lifecycle,
                            at,
                            format!("{what} for {app}, which retired at {retired}"),
                        )
                        .for_app(app),
                    );
                    false
                }
                _ => true,
            },
        }
    }

    fn on_arrival(
        &mut self,
        app: AppId,
        name: &str,
        batch: u32,
        priority: Priority,
        at: SimTime,
        out: &mut Vec<Violation>,
    ) {
        if self.apps.contains_key(&app) {
            out.push(
                Violation::new(
                    InvariantRule::Lifecycle,
                    at,
                    format!("duplicate arrival for {app}"),
                )
                .for_app(app),
            );
            return;
        }
        let spec = benchmarks::by_name(name);
        let topo_pos = spec
            .as_ref()
            .map(|s| {
                s.graph()
                    .topological_order()
                    .iter()
                    .enumerate()
                    .map(|(pos, &task)| (task, pos))
                    .collect()
            })
            .unwrap_or_default();
        self.apps.insert(
            app,
            AppState {
                name: name.to_owned(),
                batch,
                priority,
                arrival: at,
                retired: None,
                spec,
                topo_pos,
                seen_tasks: BTreeSet::new(),
            },
        );
    }

    fn on_reconfig(
        &mut self,
        slot: SlotId,
        app: AppId,
        task: TaskId,
        at: SimTime,
        out: &mut Vec<Violation>,
    ) {
        let known = self.check_lifecycle(app, at, "reconfiguration", out);
        // The slot must be free: unoccupied, or its previous tenant
        // finished its batch, or a preemption was traced (which removed the
        // binding before this event).
        if let Some(&(prev_app, prev_task)) = self.bindings.get(&slot) {
            if !self.released(prev_app, prev_task, at) {
                out.push(
                    Violation::new(
                        InvariantRule::SlotOverlap,
                        at,
                        format!(
                            "{slot} reconfigured for {task} of {app} while {prev_task} of \
                             {prev_app} still occupies it (no preemption traced)"
                        ),
                    )
                    .on_slot(slot)
                    .for_app(app),
                );
            }
        }
        // A task holds at most one slot.
        for (&other_slot, &(bound_app, bound_task)) in &self.bindings {
            if other_slot != slot
                && (bound_app, bound_task) == (app, task)
                && !self.released(app, task, at)
            {
                out.push(
                    Violation::new(
                        InvariantRule::TaskSingleSlot,
                        at,
                        format!(
                            "{task} of {app} reconfigured onto {slot} while still holding \
                             {other_slot}"
                        ),
                    )
                    .on_slot(slot)
                    .for_app(app),
                );
            }
        }
        self.bindings.insert(slot, (app, task));
        if let Some(state) = self.apps.get_mut(&app) {
            state.seen_tasks.insert(task);
        }
        // Goal-number ceiling: occupancy never exceeds unfinished tasks.
        if known && self.config.nimblock_policy {
            let (task_count, batch) = match self.apps.get(&app) {
                Some(state) => match &state.spec {
                    Some(spec) => (spec.graph().task_count(), state.batch),
                    None => return,
                },
                None => return,
            };
            let done_tasks = (0..task_count)
                .filter(|&t| {
                    self.data.completed_before(app, TaskId::new(t as u32), at) >= batch
                })
                .count();
            let unfinished = task_count - done_tasks;
            let occupancy = self.occupancy(app, at);
            if occupancy > unfinished {
                out.push(
                    Violation::new(
                        InvariantRule::GoalCeiling,
                        at,
                        format!(
                            "{app} occupies {occupancy} slots but has only {unfinished} \
                             unfinished tasks"
                        ),
                    )
                    .on_slot(slot)
                    .for_app(app),
                );
            }
        }
    }

    fn on_item(
        &mut self,
        slot: SlotId,
        app: AppId,
        task: TaskId,
        item: u32,
        at: SimTime,
        out: &mut Vec<Violation>,
    ) {
        let known = self.check_lifecycle(app, at, "item execution", out);
        if self.bindings.get(&slot) != Some(&(app, task)) {
            out.push(
                Violation::new(
                    InvariantRule::Lifecycle,
                    at,
                    format!("item {item} of {task} of {app} ran on {slot}, which is not \
                             configured for it"),
                )
                .on_slot(slot)
                .for_app(app),
            );
        }
        if let Some(state) = self.apps.get_mut(&app) {
            state.seen_tasks.insert(task);
        }
        if !known {
            return;
        }
        let state = &self.apps[&app];
        if item >= state.batch {
            out.push(
                Violation::new(
                    InvariantRule::TokenConservation,
                    at,
                    format!(
                        "{task} of {app} ran item {item}, beyond its batch of {}",
                        state.batch
                    ),
                )
                .on_slot(slot)
                .for_app(app),
            );
        }
        // DAG order: item k needs item k of every predecessor finished.
        let Some(spec) = &state.spec else { return };
        for &pred in spec.graph().predecessors(task) {
            let done = self.data.completed_before(app, pred, at);
            if done < item + 1 {
                out.push(
                    Violation::new(
                        InvariantRule::DagOrder,
                        at,
                        format!(
                            "item {item} of {task} of {app} started with predecessor {pred} \
                             at only {done} completed item(s) (needs {})",
                            item + 1
                        ),
                    )
                    .on_slot(slot)
                    .for_app(app),
                );
            }
        }
    }

    fn on_preempt(
        &mut self,
        index: usize,
        slot: SlotId,
        app: AppId,
        task: TaskId,
        at: SimTime,
        out: &mut Vec<Violation>,
    ) {
        let known = self.check_lifecycle(app, at, "preemption", out);
        if self.bindings.get(&slot) != Some(&(app, task)) {
            out.push(
                Violation::new(
                    InvariantRule::Lifecycle,
                    at,
                    format!("preemption of {task} of {app} on {slot}, which it does not hold"),
                )
                .on_slot(slot)
                .for_app(app),
            );
        }
        // Boundary-only: no item in flight (unless checkpoint-capable),
        // never mid-reconfiguration.
        if self.data.mid_item.contains(&index) && !self.config.allow_mid_item_preemption {
            out.push(
                Violation::new(
                    InvariantRule::PreemptBoundary,
                    at,
                    format!(
                        "{task} of {app} preempted mid-item on {slot} without a \
                         checkpoint-capable overlay"
                    ),
                )
                .on_slot(slot)
                .for_app(app),
            );
        }
        if self.data.during_reconfig.contains(&index) {
            out.push(
                Violation::new(
                    InvariantRule::PreemptBoundary,
                    at,
                    format!("{task} of {app} preempted while still reconfiguring on {slot}"),
                )
                .on_slot(slot)
                .for_app(app),
            );
        }
        if known && self.config.nimblock_policy {
            self.check_preempt_policy(index, slot, app, task, at, out);
        }
        self.bindings.remove(&slot);
    }

    fn check_preempt_policy(
        &self,
        index: usize,
        slot: SlotId,
        app: AppId,
        task: TaskId,
        at: SimTime,
        out: &mut Vec<Violation>,
    ) {
        let state = &self.apps[&app];
        // Topologically-latest-first (Algorithm 2): no placed task of the
        // victim application sits later in topological order.
        if let Some(&victim_pos) = state.topo_pos.get(&task) {
            for (&other_slot, &(bound_app, bound_task)) in &self.bindings {
                if bound_app != app || other_slot == slot {
                    continue;
                }
                if self.released(app, bound_task, at) {
                    continue;
                }
                if let Some(&other_pos) = state.topo_pos.get(&bound_task) {
                    if other_pos > victim_pos {
                        out.push(
                            Violation::new(
                                InvariantRule::PreemptTopoLatest,
                                at,
                                format!(
                                    "preempted {task} of {app} while the topologically later \
                                     {bound_task} was still placed on {other_slot}"
                                ),
                            )
                            .on_slot(slot)
                            .for_app(app),
                        );
                        break;
                    }
                }
            }
        }
        // Priority ordering, conservatively: a High-priority application is
        // always a candidate (its token threshold is floored at its own
        // weight, paper §4.1), and when live applications fit the board the
        // allocator grants every candidate at least one slot — so a High
        // victim on its last slot can never be an over-consumer and must
        // not lose it to a lower-priority preemptor.
        if state.priority != Priority::High {
            return;
        }
        let Some(&preemptor) = self.data.preemptor.get(&index) else { return };
        let preemptor_priority = match self.apps.get(&preemptor) {
            Some(p) => p.priority,
            None => return,
        };
        if preemptor_priority >= Priority::High {
            return;
        }
        if self.occupancy(app, at) != 1 {
            return;
        }
        let live_apps = self
            .apps
            .values()
            .filter(|a| a.arrival <= at && a.retired.map_or(true, |r| r >= at))
            .count();
        if live_apps <= self.slot_count {
            out.push(
                Violation::new(
                    InvariantRule::PreemptPriority,
                    at,
                    format!(
                        "high-priority {app} lost its only slot ({slot}) to {}-priority \
                         {preemptor} with {live_apps} live application(s) on {} slots",
                        preemptor_priority, self.slot_count
                    ),
                )
                .on_slot(slot)
                .for_app(app),
            );
        }
    }

    fn on_retire(&mut self, app: AppId, at: SimTime, out: &mut Vec<Violation>) {
        let Some(state) = self.apps.get_mut(&app) else {
            out.push(
                Violation::new(
                    InvariantRule::Lifecycle,
                    at,
                    format!("retirement of {app}, which never arrived"),
                )
                .for_app(app),
            );
            return;
        };
        if let Some(earlier) = state.retired {
            out.push(
                Violation::new(
                    InvariantRule::Lifecycle,
                    at,
                    format!("duplicate retirement of {app} (already retired at {earlier})"),
                )
                .for_app(app),
            );
            return;
        }
        state.retired = Some(at);
        // Token conservation at retirement: every batch item of every task
        // processed exactly once.
        let batch = state.batch;
        let tasks: Vec<TaskId> = match &state.spec {
            Some(spec) => spec.graph().task_ids().collect(),
            None => state.seen_tasks.iter().copied().collect(),
        };
        for task in tasks {
            let mut counts = vec![0u32; batch as usize];
            if let Some(list) = self.data.completions.get(&(app, task)) {
                for &(_, item) in list {
                    if (item as usize) < counts.len() {
                        counts[item as usize] += 1;
                    }
                }
            }
            if counts.iter().all(|&c| c == 0) && batch > 0 {
                out.push(
                    Violation::new(
                        InvariantRule::TokenConservation,
                        at,
                        format!(
                            "{app} retired with {task} having completed 0 of {batch} items"
                        ),
                    )
                    .for_app(app),
                );
                continue;
            }
            for (item, &count) in counts.iter().enumerate() {
                if count != 1 {
                    out.push(
                        Violation::new(
                            InvariantRule::TokenConservation,
                            at,
                            format!(
                                "work token for item {item} of {task} of {app} was consumed \
                                 {count} times (expected exactly once)"
                            ),
                        )
                        .for_app(app),
                    );
                }
            }
        }
        self.bindings.retain(|_, &mut (bound_app, _)| bound_app != app);
    }

    fn finish(&self, out: &mut Vec<Violation>, end: SimTime) {
        for (&app, state) in &self.apps {
            if state.retired.is_none() {
                out.push(
                    Violation::new(
                        InvariantRule::Lifecycle,
                        end,
                        format!(
                            "{app} ('{}') arrived at {} but never retired",
                            state.name, state.arrival
                        ),
                    )
                    .for_app(app),
                );
            }
        }
    }
}

/// Verifies every schedule invariant against `trace`, returning all
/// violations found (never just the first).
///
/// Rules needing the application's task graph (DAG order, preemption
/// topological ordering, full token conservation) resolve the traced
/// benchmark name through [`nimblock_app::benchmarks::by_name`]; traces of
/// unknown applications are still checked against the graph-free rules.
pub fn verify_trace(trace: &Trace, config: &InvariantConfig) -> InvariantReport {
    let events = trace.events();
    let data = SpanData::collect(events);
    let mut violations = hardware_violations(trace, &data);
    if let Some(expected) = config.reconfig_latency {
        for event in events {
            if let TraceEvent::Reconfig { slot, app, task, at, until } = event {
                let took = until.saturating_since(*at);
                if took != expected {
                    violations.push(
                        Violation::new(
                            InvariantRule::CapLatency,
                            *at,
                            format!(
                                "reconfiguration of {task} of {app} on {slot} occupied the \
                                 port for {took}, expected {expected}"
                            ),
                        )
                        .on_slot(*slot)
                        .for_app(*app),
                    );
                }
            }
        }
    }
    let mut replay = Replay::new(trace, config, &data);
    for (index, event) in events.iter().enumerate() {
        match event {
            TraceEvent::Arrival { app, name, batch, priority, at } => {
                replay.on_arrival(*app, name, *batch, *priority, *at, &mut violations);
            }
            TraceEvent::Reconfig { slot, app, task, at, .. } => {
                replay.on_reconfig(*slot, *app, *task, *at, &mut violations);
            }
            TraceEvent::Item { slot, app, task, item, at, .. } => {
                replay.on_item(*slot, *app, *task, *item, *at, &mut violations);
            }
            TraceEvent::Preempt { slot, app, task, at } => {
                replay.on_preempt(index, *slot, *app, *task, *at, &mut violations);
            }
            TraceEvent::Retire { app, at } => {
                replay.on_retire(*app, *at, &mut violations);
            }
        }
    }
    let apps_seen = replay.apps.len();
    replay.finish(&mut violations, trace.end());
    violations.sort_by_key(|v| v.at);
    InvariantReport { violations, events_checked: events.len(), apps_seen }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn arrival(app: u64, name: &str, batch: u32, priority: Priority, at: u64) -> TraceEvent {
        TraceEvent::Arrival {
            app: AppId::new(app),
            name: name.to_owned(),
            batch,
            priority,
            at: ms(at),
        }
    }

    fn reconfig(slot: u32, app: u64, task: u32, from: u64, to: u64) -> TraceEvent {
        TraceEvent::Reconfig {
            slot: SlotId::new(slot),
            app: AppId::new(app),
            task: TaskId::new(task),
            at: ms(from),
            until: ms(to),
        }
    }

    fn item(slot: u32, app: u64, task: u32, item: u32, from: u64, to: u64) -> TraceEvent {
        TraceEvent::Item {
            slot: SlotId::new(slot),
            app: AppId::new(app),
            task: TaskId::new(task),
            item,
            at: ms(from),
            until: ms(to),
        }
    }

    fn retire(app: u64, at: u64) -> TraceEvent {
        TraceEvent::Retire { app: AppId::new(app), at: ms(at) }
    }

    /// A complete, legal one-item LeNet run on three slots.
    fn clean_lenet_trace() -> Trace {
        let mut trace = Trace::with_slots(3);
        trace.record(arrival(0, "LeNet", 1, Priority::Medium, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        trace.record(item(0, 0, 0, 0, 80, 140));
        trace.record(reconfig(1, 0, 1, 80, 160));
        trace.record(item(1, 0, 1, 0, 160, 200));
        trace.record(reconfig(2, 0, 2, 160, 240));
        trace.record(item(2, 0, 2, 0, 240, 260));
        trace.record(retire(0, 260));
        trace
    }

    #[test]
    fn clean_trace_verifies_clean() {
        let report = verify_trace(&clean_lenet_trace(), &InvariantConfig::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.apps_seen, 1);
    }

    #[test]
    fn cap_latency_rule_fires_on_short_reconfig() {
        let mut trace = clean_lenet_trace();
        // Rebuild with a 40 ms reconfiguration where 80 ms is expected.
        trace = {
            let mut t = Trace::with_slots(3);
            for event in trace.events() {
                t.record(event.clone());
            }
            t.record(reconfig(0, 0, 0, 300, 340));
            t
        };
        let config = InvariantConfig::default()
            .with_reconfig_latency(SimDuration::from_millis(80));
        let report = verify_trace(&trace, &config);
        assert!(report.rules_fired().contains(&InvariantRule::CapLatency), "{report}");
    }

    #[test]
    fn dag_order_rule_fires_when_consumer_outruns_producer() {
        let mut trace = Trace::with_slots(3);
        trace.record(arrival(0, "LeNet", 1, Priority::Low, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        trace.record(reconfig(1, 0, 1, 80, 160));
        // Task 1 runs its item before task 0 produced anything.
        trace.record(item(1, 0, 1, 0, 160, 200));
        trace.record(item(0, 0, 0, 0, 200, 260));
        let report = verify_trace(&trace, &InvariantConfig::mechanism_only());
        assert!(report.rules_fired().contains(&InvariantRule::DagOrder), "{report}");
    }

    #[test]
    fn unretired_app_is_a_lifecycle_violation() {
        let mut trace = Trace::with_slots(3);
        trace.record(arrival(0, "LeNet", 1, Priority::Low, 0));
        let report = verify_trace(&trace, &InvariantConfig::default());
        let fired = report.rules_fired();
        assert!(fired.contains(&InvariantRule::Lifecycle), "{report}");
        // And the incomplete batch is not (yet) a token violation: tokens
        // are only audited at retirement.
        assert!(!fired.contains(&InvariantRule::TokenConservation), "{report}");
    }

    #[test]
    fn token_rule_fires_on_duplicate_and_missing_items() {
        let mut trace = Trace::with_slots(1);
        trace.record(arrival(0, "LeNet", 2, Priority::Low, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        // Item 0 twice, item 1 never.
        trace.record(item(0, 0, 0, 0, 80, 140));
        trace.record(item(0, 0, 0, 0, 140, 200));
        trace.record(retire(0, 200));
        let report = verify_trace(&trace, &InvariantConfig::mechanism_only());
        let tokens = report.of_rule(InvariantRule::TokenConservation);
        assert!(tokens.len() >= 2, "{report}");
    }

    #[test]
    fn rule_ids_are_stable_and_resolvable() {
        for rule in InvariantRule::ALL {
            assert_eq!(InvariantRule::from_id(rule.id()), Some(rule));
            assert!(!rule.paper_section().is_empty());
        }
        assert_eq!(InvariantRule::from_id("no-such-rule"), None);
    }

    #[test]
    fn violations_serialize_with_rule_ids() {
        let violation = Violation::new(
            InvariantRule::SlotOverlap,
            ms(5),
            "synthetic".to_owned(),
        )
        .on_slot(SlotId::new(1));
        let text = nimblock_ser::to_string(&violation);
        assert!(text.contains("\"slot-overlap\""), "{text}");
        let back: Violation = nimblock_ser::from_str(&text).unwrap();
        assert_eq!(back, violation);
    }

    #[test]
    fn report_display_lists_every_violation() {
        let mut trace = Trace::with_slots(1);
        trace.record(arrival(0, "LeNet", 1, Priority::Low, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        trace.record(reconfig(0, 0, 1, 40, 120));
        let report = verify_trace(&trace, &InvariantConfig::mechanism_only());
        let rendered = report.to_string();
        assert!(rendered.contains("cap-exclusive"), "{rendered}");
        assert!(rendered.contains("slot-overlap"), "{rendered}");
    }
}
