//! Per-application runtime state.

use std::fmt;
use std::sync::Arc;

use nimblock_ser::impl_json_newtype;

use nimblock_app::{AppSpec, Priority, TaskId};
use nimblock_fpga::{BitstreamId, BufferId, SlotId};
use nimblock_sim::{SimDuration, SimTime};

/// Identifier of an application instance inside one hypervisor.
///
/// Assigned densely in arrival order, so sorting by `AppId` sorts by age —
/// the ordering both PREMA's candidate selection and Nimblock's
/// oldest-first allocation rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(u64);

impl_json_newtype!(AppId);

impl AppId {
    /// Creates an identifier from its raw value. The hypervisor assigns
    /// ids densely in arrival order; this constructor exists so tests and
    /// trace tooling can build fixture traces by hand.
    pub const fn new(raw: u64) -> Self {
        AppId(raw)
    }

    /// Returns the raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// Where one task of a running application currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPhase {
    /// Not configured on any slot (never placed, or batch-preempted).
    Unplaced,
    /// A partial bitstream is streaming into the slot.
    Reconfiguring(SlotId),
    /// Configured and idle at a batch boundary — the only state in which
    /// the task may be preempted (paper §3.2).
    Idle(SlotId),
    /// Processing one batch item on the slot.
    Running(SlotId),
    /// The whole batch is processed; the slot has been surrendered.
    Done,
}

impl TaskPhase {
    /// Returns the slot the task occupies, if any.
    pub fn slot(self) -> Option<SlotId> {
        match self {
            TaskPhase::Unplaced | TaskPhase::Done => None,
            TaskPhase::Reconfiguring(s) | TaskPhase::Idle(s) | TaskPhase::Running(s) => Some(s),
        }
    }

    /// Returns `true` if the task holds a slot (reconfiguring, idle, or
    /// running).
    pub fn is_placed(self) -> bool {
        self.slot().is_some()
    }
}

/// The hypervisor-side state of one admitted application.
///
/// Read-only to schedulers (through [`crate::SchedView`]); only the
/// hypervisor mutates it.
#[derive(Debug, Clone)]
pub struct AppRuntime {
    id: AppId,
    event_index: usize,
    spec: Arc<AppSpec>,
    batch_size: u32,
    priority: Priority,
    arrival: SimTime,
    pub(crate) bitstreams: Vec<BitstreamId>,
    pub(crate) phases: Vec<TaskPhase>,
    pub(crate) items_done: Vec<u32>,
    pub(crate) buffers: Vec<Option<BufferId>>,
    /// Checkpointed progress into the current item of each task (non-zero
    /// only after a fine-grained preemption interrupted the item).
    pub(crate) item_progress: Vec<SimDuration>,
    /// When each task's in-flight item started, while running.
    pub(crate) item_started: Vec<Option<SimTime>>,
    pub(crate) first_launch: Option<SimTime>,
    pub(crate) run_time: SimDuration,
    pub(crate) reconfig_time: SimDuration,
    pub(crate) preemptions: u32,
}

impl AppRuntime {
    pub(crate) fn new(
        id: AppId,
        event_index: usize,
        spec: Arc<AppSpec>,
        batch_size: u32,
        priority: Priority,
        arrival: SimTime,
        bitstreams: Vec<BitstreamId>,
    ) -> Self {
        let n = spec.graph().task_count();
        assert_eq!(bitstreams.len(), n, "one bitstream per task");
        AppRuntime {
            id,
            event_index,
            spec,
            batch_size,
            priority,
            arrival,
            bitstreams,
            phases: vec![TaskPhase::Unplaced; n],
            items_done: vec![0; n],
            buffers: vec![None; n],
            item_progress: vec![SimDuration::ZERO; n],
            item_started: vec![None; n],
            first_launch: None,
            run_time: SimDuration::ZERO,
            reconfig_time: SimDuration::ZERO,
            preemptions: 0,
        }
    }

    /// Returns the application identifier.
    pub fn id(&self) -> AppId {
        self.id
    }

    /// Returns the index of the arrival event that created this application.
    pub fn event_index(&self) -> usize {
        self.event_index
    }

    /// Returns the application specification.
    pub fn spec(&self) -> &Arc<AppSpec> {
        &self.spec
    }

    /// Returns the batch size.
    pub fn batch_size(&self) -> u32 {
        self.batch_size
    }

    /// Returns the priority level.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Returns the arrival time.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Returns the phase of `task`.
    pub fn phase(&self, task: TaskId) -> TaskPhase {
        self.phases[task.index()]
    }

    /// Returns how many batch items `task` has completed.
    pub fn items_done(&self, task: TaskId) -> u32 {
        self.items_done[task.index()]
    }

    /// Returns how many preemptions this application has suffered.
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    /// Returns the checkpointed progress into `task`'s current item (zero
    /// unless a fine-grained preemption interrupted it).
    pub fn item_progress(&self, task: TaskId) -> SimDuration {
        self.item_progress[task.index()]
    }

    /// Returns the number of slots the application currently occupies
    /// (`a.slots_used` in the paper's Algorithm 2).
    pub fn slots_used(&self) -> usize {
        self.phases.iter().filter(|p| p.is_placed()).count()
    }

    /// Returns `true` once every task has processed the whole batch.
    pub fn is_complete(&self) -> bool {
        self.phases.iter().all(|&p| p == TaskPhase::Done)
    }

    /// Returns the number of tasks that have not yet finished their batch.
    pub fn unfinished_tasks(&self) -> usize {
        self.phases.iter().filter(|&&p| p != TaskPhase::Done).count()
    }

    /// Returns the estimated remaining compute: Σ over unfinished tasks of
    /// `(batch - items_done) × latency`. PREMA's shortest-candidate-first
    /// selection sorts by this.
    pub fn remaining_compute(&self) -> SimDuration {
        self.spec
            .graph()
            .tasks()
            .map(|(id, task)| {
                let left = u64::from(self.batch_size - self.items_done[id.index()]);
                task.latency().saturating_mul(left)
            })
            .sum()
    }

    /// Returns `true` if every predecessor of `task` has completed enough
    /// items for `task` to process its next one: one more than `task` under
    /// pipelining, the whole batch under bulk processing.
    pub fn deps_allow_next_item(&self, task: TaskId, pipelining: bool) -> bool {
        let next_item = self.items_done[task.index()];
        if next_item >= self.batch_size {
            return false;
        }
        self.spec.graph().predecessors(task).iter().all(|&p| {
            let done = self.items_done[p.index()];
            if pipelining {
                done > next_item
            } else {
                done == self.batch_size
            }
        })
    }

    /// Returns the first unplaced task (in topological order) whose
    /// predecessors are all placed or done — eligible for *eager*
    /// configuration so reconfiguration overlaps upstream compute.
    pub fn next_unplaced_eager(&self) -> Option<TaskId> {
        self.spec.graph().topological_order().iter().copied().find(|&t| {
            self.phases[t.index()] == TaskPhase::Unplaced
                && self
                    .spec
                    .graph()
                    .predecessors(t)
                    .iter()
                    .all(|&p| self.phases[p.index()] != TaskPhase::Unplaced)
        })
    }

    /// Returns the first unplaced task (in topological order) whose
    /// predecessors have completed their *whole batch* — the bulk readiness
    /// rule used by FCFS, PREMA, and round-robin.
    pub fn next_unplaced_ready(&self) -> Option<TaskId> {
        self.spec.graph().topological_order().iter().copied().find(|&t| {
            self.phases[t.index()] == TaskPhase::Unplaced
                && self
                    .spec
                    .graph()
                    .predecessors(t)
                    .iter()
                    .all(|&p| self.phases[p.index()] == TaskPhase::Done)
        })
    }

    /// Iterates every unplaced task (in topological order) whose
    /// predecessors have completed their whole batch, without allocating.
    /// FCFS and round-robin walk this at every scheduling point, so the
    /// hot path must not build a `Vec` per application per decision.
    pub fn unplaced_ready_iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.spec.graph().topological_order().iter().copied().filter(|&t| {
            self.phases[t.index()] == TaskPhase::Unplaced
                && self
                    .spec
                    .graph()
                    .predecessors(t)
                    .iter()
                    .all(|&p| self.phases[p.index()] == TaskPhase::Done)
        })
    }

    /// Returns every unplaced task (in topological order) whose
    /// predecessors have completed their whole batch, as an owned list.
    pub fn unplaced_ready_tasks(&self) -> Vec<TaskId> {
        self.unplaced_ready_iter().collect()
    }

    /// Returns the placed (reconfiguring, idle, or running) task that is
    /// latest in topological order — the batch-preemption victim choice of
    /// Algorithm 2, which "eliminates the chance of removing a task that is
    /// acting as a pipelined dependency".
    pub fn topologically_latest_placed(&self) -> Option<TaskId> {
        self.spec
            .graph()
            .topological_order()
            .iter()
            .copied()
            .rev()
            .find(|&t| self.phases[t.index()].is_placed())
    }

    /// Returns the bitstream for `task`.
    pub fn bitstream(&self, task: TaskId) -> BitstreamId {
        self.bitstreams[task.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::benchmarks;

    fn runtime() -> AppRuntime {
        let spec = Arc::new(benchmarks::lenet());
        let n = spec.graph().task_count();
        AppRuntime::new(
            AppId::new(0),
            0,
            spec,
            4,
            Priority::Medium,
            SimTime::ZERO,
            (0..n as u64).map(BitstreamId::new).collect(),
        )
    }

    fn t(i: u32) -> TaskId {
        TaskId::new(i)
    }

    #[test]
    fn fresh_app_is_all_unplaced() {
        let app = runtime();
        assert_eq!(app.slots_used(), 0);
        assert!(!app.is_complete());
        assert_eq!(app.unfinished_tasks(), 3);
        assert_eq!(app.next_unplaced_eager(), Some(t(0)));
        assert_eq!(app.next_unplaced_ready(), Some(t(0)));
    }

    #[test]
    fn eager_follows_placement_ready_follows_completion() {
        let mut app = runtime();
        app.phases[0] = TaskPhase::Reconfiguring(SlotId::new(0));
        // Eager: task 1 may configure as soon as task 0 is placed.
        assert_eq!(app.next_unplaced_eager(), Some(t(1)));
        // Bulk-ready: task 1 must wait for task 0 to finish the batch.
        assert_eq!(app.next_unplaced_ready(), None);
        app.phases[0] = TaskPhase::Done;
        app.items_done[0] = 4;
        assert_eq!(app.next_unplaced_ready(), Some(t(1)));
    }

    #[test]
    fn deps_allow_next_item_pipelined_vs_bulk() {
        let mut app = runtime();
        app.items_done[0] = 2;
        // Task 1 has done 1 item; pred has done 2 > 1: pipelining allows.
        app.items_done[1] = 1;
        assert!(app.deps_allow_next_item(t(1), true));
        // Bulk requires pred to have the whole batch (4) done.
        assert!(!app.deps_allow_next_item(t(1), false));
        app.items_done[0] = 4;
        assert!(app.deps_allow_next_item(t(1), false));
    }

    #[test]
    fn deps_never_allow_past_batch_end() {
        let mut app = runtime();
        app.items_done[0] = 4;
        assert!(!app.deps_allow_next_item(t(0), true));
        assert!(!app.deps_allow_next_item(t(0), false));
    }

    #[test]
    fn sources_are_always_item_ready() {
        let app = runtime();
        assert!(app.deps_allow_next_item(t(0), true));
        assert!(app.deps_allow_next_item(t(0), false));
    }

    #[test]
    fn remaining_compute_shrinks_with_progress() {
        let mut app = runtime();
        let before = app.remaining_compute();
        app.items_done[0] = 2;
        let after = app.remaining_compute();
        assert!(after < before);
        // 2 items × 60 ms less.
        assert_eq!(before - after, SimDuration::from_millis(120));
    }

    #[test]
    fn completion_accounting() {
        let mut app = runtime();
        for i in 0..3 {
            app.phases[i] = TaskPhase::Done;
            app.items_done[i] = 4;
        }
        assert!(app.is_complete());
        assert_eq!(app.unfinished_tasks(), 0);
        assert_eq!(app.remaining_compute(), SimDuration::ZERO);
    }

    #[test]
    fn topologically_latest_placed_picks_pipeline_tail() {
        let mut app = runtime();
        app.phases[0] = TaskPhase::Running(SlotId::new(0));
        app.phases[1] = TaskPhase::Idle(SlotId::new(1));
        assert_eq!(app.topologically_latest_placed(), Some(t(1)));
        app.phases[2] = TaskPhase::Reconfiguring(SlotId::new(2));
        assert_eq!(app.topologically_latest_placed(), Some(t(2)));
    }

    #[test]
    fn phase_slot_extraction() {
        assert_eq!(TaskPhase::Unplaced.slot(), None);
        assert_eq!(TaskPhase::Done.slot(), None);
        let s = SlotId::new(3);
        assert_eq!(TaskPhase::Idle(s).slot(), Some(s));
        assert!(TaskPhase::Running(s).is_placed());
    }
}
