//! The Nimblock hypervisor and scheduling policies.
//!
//! This crate is the paper's primary contribution: a hypervisor for
//! fine-grained FPGA sharing on a slot-based overlay, and the scheduling
//! algorithms evaluated on it.
//!
//! # Architecture
//!
//! The crate separates *mechanism* from *policy*:
//!
//! * [`Hypervisor`] is the mechanism. It owns the device model, moves
//!   applications through the arrival → pending → running → retired
//!   lifecycle, drives reconfiguration through the single configuration
//!   port, feeds batch items to configured tasks (respecting task-graph
//!   dependencies), allocates data buffers, and records metrics. It mirrors
//!   the bare-metal ARM hypervisor of the paper (§2.2).
//! * [`Scheduler`] is the policy. At every scheduling point the hypervisor
//!   offers the policy a read-only [`SchedView`] and asks for at most one
//!   [`Reconfig`] directive — which slot to reconfigure with which task,
//!   possibly *batch-preempting* the idle task currently holding the slot.
//!
//! Five policies reproduce the paper's evaluation (§5.1):
//!
//! * [`NoSharingScheduler`] — the baseline: one application at a time owns
//!   the whole board,
//! * [`FcfsScheduler`] — ready tasks from all applications, oldest first,
//! * [`PremaScheduler`] — PREMA token accumulation, shortest candidate
//!   first, no pipelining or preemption,
//! * [`RoundRobinScheduler`] — Coyote-style per-slot priority queues,
//! * [`NimblockScheduler`] — the paper's algorithm: tokens, goal-number
//!   slot allocation, oldest-first task selection, cross-batch pipelining,
//!   and batch-preemption ([`NimblockConfig`] switches the ablations).
//!
//! [`Testbed`] wires a stimulus from `nimblock-workload` to a hypervisor and
//! returns a `nimblock-metrics` report, reproducing the paper's testbed.
//!
//! # Example
//!
//! ```
//! use nimblock_core::{NimblockScheduler, Testbed};
//! use nimblock_workload::{generate, Scenario};
//!
//! let events = generate(1, 5, Scenario::Stress);
//! let report = Testbed::new(NimblockScheduler::default()).run(&events);
//! assert_eq!(report.records().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod attribution;
mod hv_metrics;
mod hypervisor;
pub mod invariants;
pub mod monitor;
mod runtime;
mod scheduler;
mod testbed;
pub mod trace;
mod view;

pub use arena::AppArena;
pub use attribution::{attribute_trace, span_trees};
pub use hv_metrics::HvMetrics;
pub use hypervisor::{Hypervisor, HvEvent};
pub use invariants::{
    verify_hardware, verify_trace, InvariantConfig, InvariantReport, InvariantRule, Violation,
};
pub use monitor::{derive_monitor, post_mortem};
pub use runtime::{AppId, AppRuntime, TaskPhase};
pub use scheduler::{
    DmlStaticScheduler, EdfScheduler, FcfsScheduler, NimblockConfig, NimblockScheduler,
    NoSharingScheduler, PremaScheduler, RoundRobinScheduler, Scheduler, SjfScheduler,
};
pub use testbed::Testbed;
pub use trace::{Trace, TraceEvent};
pub use view::{Reconfig, SchedView, SlotBinding};
