//! The hypervisor mechanism.

use std::collections::HashMap;
use std::sync::Arc;

use nimblock_fpga::{Device, SlotId};
use nimblock_metrics::{Report, ResponseRecord};
use nimblock_sim::{EventQueue, Handler, SimTime};
use nimblock_app::TaskId;
use nimblock_workload::ArrivalEvent;

use nimblock_obs::{nb_debug, nb_info, nb_trace};

use crate::trace::{Trace, TraceEvent};
use crate::{
    AppArena, AppId, AppRuntime, HvMetrics, Reconfig, SchedView, Scheduler, SlotBinding, TaskPhase,
};

/// A hypervisor event, delivered by the simulation engine.
///
/// These are the occurrences the bare-metal hypervisor of the paper reacts
/// to: an application arriving from the testbed, the periodic scheduling
/// interval, the configuration port finishing a partial reconfiguration,
/// and user logic finishing one batch item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HvEvent {
    /// Arrival of stimulus event `index` (resolved against the stimulus the
    /// hypervisor was constructed with).
    Arrival(usize),
    /// The periodic scheduling interval (400 ms on the evaluated system).
    Tick,
    /// The configuration port finished reconfiguring `slot`.
    ReconfigDone {
        /// The reconfigured slot.
        slot: SlotId,
    },
    /// The task on `slot` finished one batch item.
    ItemDone {
        /// Application owning the task.
        app: AppId,
        /// The task that finished an item.
        task: TaskId,
        /// The slot it ran on.
        slot: SlotId,
        /// Launch generation of the slot; stale completions (the item was
        /// aborted by a fine-grained preemption) are ignored.
        gen: u64,
    },
}

/// The Nimblock hypervisor: mechanism only, policy behind [`Scheduler`].
///
/// Owns the device model and all application runtime state. Driven as a
/// [`Handler`] by `nimblock_sim::Simulation`; most users want the
/// [`crate::Testbed`] wrapper instead of driving this directly.
#[derive(Debug)]
pub struct Hypervisor<S> {
    device: Device,
    scheduler: S,
    stimulus: Vec<ArrivalEvent>,
    apps: AppArena,
    bindings: Vec<Option<(AppId, TaskId)>>,
    /// Reusable slot-snapshot buffer for [`SchedView`]s, refreshed in place
    /// at every scheduling point so the per-event path allocates nothing.
    snapshot_buf: Vec<SlotBinding>,
    records: Vec<ResponseRecord>,
    next_app_raw: u64,
    arrivals_seen: usize,
    /// Instrumentation: always-on detached handles, optionally published
    /// through a registry via [`Hypervisor::with_metrics`].
    metrics: HvMetrics,
    interconnect: nimblock_fpga::Interconnect,
    tick_interval: nimblock_sim::SimDuration,
    trace: Option<Trace>,
    /// Per-slot launch generation; bumped on every launch and abort so
    /// stale [`HvEvent::ItemDone`] events can be recognized.
    launch_gen: Vec<u64>,
    /// Checkpoint-save latency of fine-grained (mid-item) preemption;
    /// `None` models the baseline overlay, which can only batch-preempt.
    fine_checkpoint: Option<nimblock_sim::SimDuration>,
    /// Partial bitstreams are per (application, task), not per arrival:
    /// repeated invocations of the same application reuse the same files,
    /// so their SD-card load cost is paid once (a warm start). The key
    /// includes the bitstream size so same-named applications with
    /// different footprints do not share entries.
    bitstream_cache: HashMap<(String, usize, u64), nimblock_fpga::BitstreamId>,
    /// Continuous-observability sink (windowed time-series + flight
    /// recorder + SLO engine). `None` (the default) keeps the hot path
    /// free of monitoring work beyond one branch per emission point.
    monitor: Option<nimblock_obs::MonitorHandle>,
    /// Set whenever an event may have changed the scheduling state, so
    /// the post-event occupancy sample (an O(apps × tasks) scan) is
    /// skipped on no-op ticks. The monitor carries the previous sample
    /// through unsampled windows, so skipping is observationally free.
    monitor_dirty: bool,
    /// `false` when the attached monitor retains no windows (a sink-less
    /// configuration): occupancy samples would be discarded on arrival,
    /// so the post-event scan is skipped entirely.
    monitor_samples: bool,
}

impl<S: Scheduler> Hypervisor<S> {
    /// Creates a hypervisor over `device` that will admit `stimulus` events
    /// as the simulation delivers [`HvEvent::Arrival`]s.
    pub fn new(device: Device, scheduler: S, stimulus: Vec<ArrivalEvent>) -> Self {
        let slot_count = device.slot_count();
        Hypervisor {
            device,
            scheduler,
            stimulus,
            apps: AppArena::new(),
            bindings: vec![None; slot_count],
            snapshot_buf: Vec::with_capacity(slot_count),
            records: Vec::new(),
            next_app_raw: 0,
            arrivals_seen: 0,
            metrics: HvMetrics::detached(),
            interconnect: nimblock_fpga::Interconnect::zcu106_default(),
            tick_interval: nimblock_sim::SimDuration::from_millis(
                nimblock_fpga::zcu106::SCHEDULING_INTERVAL_MILLIS,
            ),
            trace: None,
            launch_gen: vec![0; slot_count],
            fine_checkpoint: None,
            bitstream_cache: HashMap::new(),
            monitor: None,
            monitor_dirty: false,
            monitor_samples: false,
        }
    }

    /// Attaches a continuous-observability monitor: every admission,
    /// reconfiguration, preemption, item launch/abort, and retirement is
    /// mirrored into its virtual-time tumbling windows and flight
    /// recorder, and the scheduling state (queue depth, waiting/running
    /// apps) is sampled after every event. Detached hypervisors skip all
    /// of this behind a single `Option` branch.
    pub fn with_monitor(mut self, monitor: nimblock_obs::MonitorHandle) -> Self {
        // Bind the monitor to this device so its utilization denominator
        // and per-slot abort tracking match regardless of how the handle
        // was constructed.
        monitor.with(|m| m.set_slots(self.device.slot_count()));
        self.monitor_samples = monitor.with(|m| m.config().window_capacity > 0);
        self.monitor = Some(monitor);
        self
    }

    /// Enables fine-grained (mid-item) preemption with the given
    /// checkpoint-save latency, modelling the checkpoint-capable overlay of
    /// the paper's future work (§7). Schedulers may then preempt a
    /// *running* task; its item progress is checkpointed and resumed later.
    pub fn with_fine_preemption(mut self, checkpoint: nimblock_sim::SimDuration) -> Self {
        self.fine_checkpoint = Some(checkpoint);
        self
    }

    /// Overrides the periodic scheduling-tick interval.
    pub fn with_tick_interval(mut self, interval: nimblock_sim::SimDuration) -> Self {
        self.tick_interval = interval;
        self
    }

    /// Enables schedule tracing (see [`Trace`]). Off by default: traces of
    /// long runs are large. The trace records the device's slot count so
    /// downstream analysis (utilization, validation, Gantt/Chrome export)
    /// needs no out-of-band configuration.
    pub fn with_tracing(mut self) -> Self {
        self.trace = Some(Trace::with_slots(self.device.slot_count()));
        self
    }

    /// Publishes this hypervisor's instruments in `registry` (as `hv_*`
    /// series) and enables wall-clock scheduler decision-latency timing.
    /// Without this the hypervisor still counts — into detached handles —
    /// so the end-of-run report's counters are always populated.
    pub fn with_metrics(mut self, registry: &nimblock_obs::Registry) -> Self {
        self.metrics = HvMetrics::registered(registry);
        self
    }

    /// Publishes this hypervisor's instruments in `registry` like
    /// [`Hypervisor::with_metrics`], but *without* wall-clock
    /// decision-latency timing, so everything the registry observes is a
    /// function of simulated time only. Cluster board shards use this to
    /// keep the merged metrics export deterministic.
    pub fn with_untimed_metrics(mut self, registry: &nimblock_obs::Registry) -> Self {
        self.metrics = HvMetrics::registered_untimed(registry);
        self
    }

    /// Returns the hypervisor's instruments.
    pub fn metrics(&self) -> &HvMetrics {
        &self.metrics
    }

    /// Returns the recorded trace so far, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Removes and returns the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Overrides the per-item hypervisor overhead (task launch plus data
    /// movement through the PS). Zero models an ideal zero-cost hypervisor.
    /// Sugar for a position-independent [`nimblock_fpga::Interconnect::ThroughPs`].
    pub fn with_per_item_overhead(self, overhead: nimblock_sim::SimDuration) -> Self {
        self.with_interconnect(nimblock_fpga::Interconnect::ThroughPs {
            per_transfer: overhead,
        })
    }

    /// Overrides the inter-slot data-movement model (through-PS on the
    /// evaluated overlay; a ring NoC is the paper's §7 future work).
    pub fn with_interconnect(mut self, interconnect: nimblock_fpga::Interconnect) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Returns the device model.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Returns the scheduling policy.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Returns the live (admitted, unretired) applications.
    pub fn apps(&self) -> &AppArena {
        &self.apps
    }

    /// Returns the records of retired applications so far.
    pub fn records(&self) -> &[ResponseRecord] {
        &self.records
    }

    /// Returns how many launches were deferred for lack of buffer memory.
    pub fn alloc_stalls(&self) -> u64 {
        self.metrics.alloc_stalls.get()
    }

    /// Returns `true` once every stimulus event has arrived and retired.
    pub fn finished(&self) -> bool {
        self.arrivals_seen == self.stimulus.len() && self.apps.is_empty()
    }

    /// Consumes the hypervisor into a metrics report, including the
    /// whole-run counters (preemptions, reconfigurations, alloc stalls,
    /// bitstream cache hits/misses).
    pub fn into_report(self, finished_at: SimTime) -> Report {
        Report::new(self.scheduler.name(), self.records, finished_at)
            .with_counters(self.metrics.run_counters())
    }

    /// Refreshes the reusable slot snapshot in place. [`SchedView`]s are
    /// then built from `&self.snapshot_buf` and `&self.apps` directly —
    /// disjoint field borrows, so the scheduler (another field) can still
    /// be called mutably while the view is alive.
    fn refresh_snapshot(&mut self) {
        self.snapshot_buf.clear();
        self.snapshot_buf
            .extend(self.device.slots().iter().map(|slot| SlotBinding {
                slot: slot.id(),
                state: slot.state(),
                bound: self.bindings[slot.id().index()],
                resources: *slot.resources(),
            }));
    }

    /// Admits stimulus event `index`: registers its bitstreams, creates the
    /// runtime, and notifies the policy (paper §2.2: bitstreams are placed
    /// in the filesystem and the application enters the pending queue).
    /// # Panics
    ///
    /// Panics if any task of the arriving application fits no slot on this
    /// device: such an application could never be placed by any policy and
    /// would livelock the run, so admission fails fast and names the task.
    fn admit(&mut self, index: usize, now: SimTime) {
        let event = self.stimulus[index].clone();
        for (task, spec) in event.app().graph().tasks() {
            assert!(
                self.device
                    .slots()
                    .iter()
                    .any(|slot| spec.resources().fits_within(slot.resources())),
                "application '{}' cannot be admitted: {task} ('{}') fits no slot on this device",
                event.app().name(),
                spec.name(),
            );
        }
        self.arrivals_seen += 1;
        self.metrics.arrivals.inc();
        let id = AppId::new(self.next_app_raw);
        self.next_app_raw += 1;
        let mut cache_hits = 0u64;
        let mut cache_misses = 0u64;
        let bitstreams = (0..event.app().graph().task_count())
            .map(|task| {
                let key = (
                    event.app().name().to_owned(),
                    task,
                    event.app().bitstream_bytes(),
                );
                match self.bitstream_cache.get(&key) {
                    Some(&bitstream) => {
                        // Warm start: the partial bitstream files of a
                        // repeat invocation are already on the card.
                        self.metrics.bitstream_cache_hits.inc();
                        cache_hits += 1;
                        bitstream
                    }
                    None => {
                        self.metrics.bitstream_cache_misses.inc();
                        cache_misses += 1;
                        let bitstream =
                            self.device.store_mut().register(event.app().bitstream_bytes());
                        self.bitstream_cache.insert(key, bitstream);
                        bitstream
                    }
                }
            })
            .collect();
        if let Some(monitor) = &self.monitor {
            let at = now.as_micros();
            monitor.with(|m| {
                m.on_arrival(at);
                for _ in 0..cache_hits {
                    m.on_cache(at, true);
                }
                for _ in 0..cache_misses {
                    m.on_cache(at, false);
                }
                m.record(
                    at,
                    "arrival",
                    || format!(
                        "{id} {} batch={} priority={:?}",
                        event.app().name(),
                        event.batch_size(),
                        event.priority(),
                    ),
                );
            });
        }
        nb_info!(
            "hv",
            "msg=\"admitted\" app={id} name={} batch={} priority={:?} at={now}",
            event.app().name(),
            event.batch_size(),
            event.priority(),
        );
        let runtime = AppRuntime::new(
            id,
            index,
            Arc::clone(event.app()),
            event.batch_size(),
            event.priority(),
            now,
            bitstreams,
        );
        self.apps.insert(runtime);
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent::Arrival {
                app: id,
                name: event.app().name().to_owned(),
                batch: event.batch_size(),
                priority: event.priority(),
                at: now,
            });
        }
        self.refresh_snapshot();
        let view = SchedView {
            now,
            apps: &self.apps,
            slots: &self.snapshot_buf,
            reconfig_latency: self.device.nominal_reconfig_latency(),
            interconnect: self.interconnect,
        };
        self.scheduler.on_arrival(&view, id);
    }

    fn on_reconfig_done(&mut self, slot: SlotId, now: SimTime) {
        nb_trace!("cap", "msg=\"reconfig done\" slot={slot} at={now}");
        self.metrics.reconfig_queue_depth.add(-1);
        self.device.finish_reconfiguration(slot);
        let (app, task) = self.bindings[slot.index()]
            .expect("reconfiguration completed on an unbound slot");
        let runtime = self.apps.get_mut(app).expect("bound app is live");
        debug_assert_eq!(runtime.phases[task.index()], TaskPhase::Reconfiguring(slot));
        runtime.phases[task.index()] = TaskPhase::Idle(slot);
    }

    fn on_item_done(&mut self, app: AppId, task: TaskId, slot: SlotId, now: SimTime, gen: u64) {
        if gen != self.launch_gen[slot.index()] {
            // The launch this completion belongs to was aborted by a
            // fine-grained preemption; its progress is checkpointed.
            self.metrics.stale_completions.inc();
            return;
        }
        self.metrics.items.inc();
        self.device.finish_execution(slot);
        if let Some(monitor) = &self.monitor {
            monitor.with(|m| m.on_item_done(slot.index()));
        }
        let runtime = self.apps.get_mut(app).expect("running app is live");
        debug_assert_eq!(runtime.phases[task.index()], TaskPhase::Running(slot));
        runtime.item_progress[task.index()] = nimblock_sim::SimDuration::ZERO;
        runtime.item_started[task.index()] = None;
        runtime.items_done[task.index()] += 1;
        runtime.run_time += runtime.spec().graph().task(task).latency();
        if runtime.items_done[task.index()] == runtime.batch_size() {
            runtime.phases[task.index()] = TaskPhase::Done;
            self.bindings[slot.index()] = None;
            self.device
                .release_slot(slot)
                .expect("slot of a completed task is idle");
        } else {
            runtime.phases[task.index()] = TaskPhase::Idle(slot);
        }
        self.free_consumed_buffers(app);
        if self.apps[app].is_complete() {
            self.retire(app, now);
        }
    }

    /// Relinquishes output buffers whose data no consumer still needs
    /// (paper §2.2: "the hypervisor relinquishes the unneeded data
    /// buffers").
    fn free_consumed_buffers(&mut self, app: AppId) {
        let runtime = self.apps.get_mut(app).expect("app is live");
        let graph = Arc::clone(runtime.spec()).graph_arc();
        for task in graph.task_ids() {
            let producer_done = runtime.phases[task.index()] == TaskPhase::Done;
            let consumers_done = graph
                .successors(task)
                .iter()
                .all(|&s| runtime.phases[s.index()] == TaskPhase::Done);
            if producer_done && consumers_done {
                if let Some(buffer) = runtime.buffers[task.index()].take() {
                    self.device
                        .memory_mut()
                        .free(buffer)
                        .expect("buffer was live");
                }
            }
        }
    }

    fn retire(&mut self, app: AppId, now: SimTime) {
        let runtime = self.apps.remove(app).expect("retiring app is live");
        // Free any buffers the consumed-buffer sweep left behind.
        for buffer in runtime.buffers.iter().flatten() {
            self.device
                .memory_mut()
                .free(*buffer)
                .expect("buffer was live");
        }
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent::Retire { app, at: now });
        }
        self.metrics.retires.inc();
        let wait = match runtime.first_launch {
            Some(first) => first.saturating_since(runtime.arrival()),
            None => now.saturating_since(runtime.arrival()),
        };
        self.metrics.wait_micros.observe(wait.as_micros());
        let response = now.saturating_since(runtime.arrival()).as_micros();
        self.metrics.response_micros.observe(response);
        // Per-priority class series plus the streaming quantile sketches.
        // Slowdown = response over ideal service time (own compute plus
        // own reconfiguration), scaled ×1000 to keep integer buckets.
        let ideal = (runtime.run_time + runtime.reconfig_time).as_micros().max(1);
        let slowdown_milli = response.saturating_mul(1000) / ideal;
        self.metrics.response_time_for(runtime.priority()).observe(response);
        self.metrics.slowdown_for(runtime.priority()).observe(slowdown_milli);
        self.metrics.response_quantiles.observe(response);
        self.metrics.slowdown_quantiles.observe(slowdown_milli);
        if let Some(monitor) = &self.monitor {
            let at = now.as_micros();
            let weight = u64::from(runtime.priority().weight());
            monitor.with(|m| {
                m.on_retire(at, weight, response, slowdown_milli);
                m.record(
                    at,
                    "retire",
                    || format!(
                        "{app} {} response={response}us slowdown_milli={slowdown_milli}",
                        runtime.spec().name(),
                    ),
                );
            });
        }
        nb_info!(
            "hv",
            "msg=\"retired\" app={app} name={} at={now} preemptions={}",
            runtime.spec().name(),
            runtime.preemptions,
        );
        self.records.push(ResponseRecord {
            event_index: runtime.event_index(),
            app_name: runtime.spec().name().to_owned(),
            batch_size: runtime.batch_size(),
            priority: runtime.priority(),
            arrival: runtime.arrival(),
            first_launch: runtime.first_launch,
            retired: now,
            run_time: runtime.run_time,
            reconfig_time: runtime.reconfig_time,
            preemptions: runtime.preemptions,
        });
        self.refresh_snapshot();
        let view = SchedView {
            now,
            apps: &self.apps,
            slots: &self.snapshot_buf,
            reconfig_latency: self.device.nominal_reconfig_latency(),
            interconnect: self.interconnect,
        };
        self.scheduler.on_retire(&view, app);
    }

    /// Validates and enacts one scheduling directive.
    ///
    /// # Panics
    ///
    /// Panics when the directive violates the [`Scheduler`] contract: dead
    /// application, non-unplaced task, busy slot, or preemption of a
    /// non-idle victim. These are policy bugs.
    fn enact(&mut self, directive: Reconfig, now: SimTime, queue: &mut EventQueue<HvEvent>) {
        self.monitor_dirty = true;
        let Reconfig { app, task, slot } = directive;
        assert!(
            self.apps.contains(app),
            "directive names dead application {app}"
        );
        assert_eq!(
            self.apps[app].phase(task),
            TaskPhase::Unplaced,
            "directive places {task} of {app} which is not unplaced"
        );
        assert!(
            self.apps[app]
                .spec()
                .graph()
                .task(task)
                .resources()
                .fits_within(
                    self.device
                        .slot(slot)
                        .expect("directive names a real slot")
                        .resources()
                ),
            "directive places {task} of {app} into {slot}, which it does not fit"
        );
        // Preempt the current occupant, if any.
        let mut reconfig_start = now;
        if let Some((victim_app, victim_task)) = self.bindings[slot.index()] {
            assert!(
                (victim_app, victim_task) != (app, task),
                "directive reconfigures {task} of {app} onto its own slot"
            );
            let fine_checkpoint = self.fine_checkpoint;
            let victim = self
                .apps
                .get_mut(victim_app)
                .expect("bound app is live");
            match victim.phases[victim_task.index()] {
                // Batch-preemption: batch state (items_done) is retained —
                // that is the whole point of preempting at batch boundaries
                // (paper §3.2).
                TaskPhase::Idle(victim_slot) if victim_slot == slot => {}
                // Fine-grained preemption: only legal on a checkpoint-capable
                // overlay; the in-flight item's progress is saved and the
                // checkpoint latency delays the reconfiguration.
                TaskPhase::Running(victim_slot) if victim_slot == slot => {
                    let checkpoint = fine_checkpoint.unwrap_or_else(|| {
                        // Scheduler-contract violation, documented under
                        // "# Panics": a policy may only request mid-item
                        // preemption when the overlay checkpoints.
                        // nimblock: allow(no-unwrap-hot-path)
                        panic!(
                            "mid-item preemption of {victim_task} of {victim_app} \
                             without a checkpoint-capable overlay"
                        )
                    });
                    let started = victim.item_started[victim_task.index()]
                        .expect("running task has a start time");
                    let latency = victim.spec().graph().task(victim_task).latency();
                    // Elapsed time includes the item's input fetch, so a
                    // preempted item may bank up to one fetch worth of
                    // "progress" — a slightly optimistic checkpoint model.
                    let progress = victim.item_progress[victim_task.index()]
                        + now.saturating_since(started);
                    victim.item_progress[victim_task.index()] =
                        progress.min(latency);
                    victim.item_started[victim_task.index()] = None;
                    self.launch_gen[slot.index()] += 1; // in-flight ItemDone is stale
                    self.device
                        .abort_execution(slot)
                        .expect("running slot can be aborted");
                    if let Some(monitor) = &self.monitor {
                        // The aborted item's un-executed remainder leaves
                        // the busy series.
                        monitor.with(|m| m.on_item_abort(slot.index(), now.as_micros()));
                    }
                    reconfig_start = now + checkpoint;
                }
                // Scheduler-contract violation ("# Panics"): only bound
                // tasks (idle at a batch boundary, or running on a
                // checkpointing overlay) are legal preemption victims.
                // nimblock: allow(no-unwrap-hot-path)
                other => panic!(
                    "preemption of {victim_task} of {victim_app} in phase {other:?}"
                ),
            }
            let victim = self.apps.get_mut(victim_app).expect("bound app is live");
            victim.phases[victim_task.index()] = TaskPhase::Unplaced;
            victim.preemptions += 1;
            self.metrics.preemptions.inc();
            if let Some(monitor) = &self.monitor {
                let at = now.as_micros();
                monitor.with(|m| {
                    m.on_preempt(at);
                    m.record(
                        at,
                        "preempt",
                        // Lazy: evaluated only if the flight recorder
                        // accepts the event. nimblock: allow(hot-path-no-alloc)
                        || format!("slot={slot} victim={victim_app} task={victim_task}"),
                    );
                });
            }
            nb_debug!(
                "hv",
                "msg=\"preempt\" slot={slot} victim={victim_app} task={victim_task} at={now}"
            );
            self.bindings[slot.index()] = None;
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent::Preempt {
                    slot,
                    app: victim_app,
                    task: victim_task,
                    at: now,
                });
            }
        }
        let bitstream = self.apps[app].bitstream(task);
        let done_at = self
            .device
            .begin_reconfiguration(slot, bitstream, reconfig_start)
            .expect("directive validated against device state");
        let runtime = self.apps.get_mut(app).expect("checked above");
        runtime.phases[task.index()] = TaskPhase::Reconfiguring(slot);
        runtime.reconfig_time += done_at.saturating_since(now);
        self.metrics.reconfigurations.inc();
        self.metrics.reconfig_queue_depth.add(1);
        self.metrics
            .cap_busy_micros
            .add(done_at.saturating_since(reconfig_start).as_micros());
        nb_debug!(
            "cap",
            "msg=\"reconfig\" slot={slot} app={app} task={task} start={reconfig_start} done={done_at}"
        );
        self.bindings[slot.index()] = Some((app, task));
        if let Some(trace) = &mut self.trace {
            // Traced at the stream start, not the decision instant: under
            // fine-grained preemption the checkpoint save delays the
            // stream, and the CAP span must cover port occupancy only so
            // trace analysis can audit the serialization latency exactly.
            trace.record(TraceEvent::Reconfig {
                slot,
                app,
                task,
                at: reconfig_start,
                until: done_at,
            });
        }
        if let Some(monitor) = &self.monitor {
            monitor.with(|m| {
                m.on_reconfig(reconfig_start.as_micros(), done_at.as_micros());
                m.record(
                    reconfig_start.as_micros(),
                    "reconfig",
                    // Lazy: evaluated only if the flight recorder
                    // accepts the event. nimblock: allow(hot-path-no-alloc)
                    || format!("slot={slot} app={app} task={task} until={done_at}"),
                );
            });
        }
        queue.push(done_at, HvEvent::ReconfigDone { slot });
    }

    /// Feeds the next batch item to every idle task whose dependencies
    /// allow it (under the policy's pipelining rule).
    fn launch_items(&mut self, now: SimTime, queue: &mut EventQueue<HvEvent>) {
        let pipelining = self.scheduler.pipelining();
        for slot_index in 0..self.bindings.len() {
            let Some((app, task)) = self.bindings[slot_index] else {
                continue;
            };
            let slot = SlotId::new(slot_index as u32);
            let runtime = self.apps.get_mut(app).expect("bound app is live");
            if runtime.phases[task.index()] != TaskPhase::Idle(slot) {
                continue;
            }
            if !runtime.deps_allow_next_item(task, pipelining) {
                continue;
            }
            // Allocate the task's output buffer on first launch.
            if runtime.buffers[task.index()].is_none() {
                let bytes = runtime.spec().graph().task(task).output_bytes();
                match self.device.memory_mut().alloc(bytes) {
                    Ok(buffer) => {
                        let runtime = self.apps.get_mut(app).expect("bound app is live");
                        runtime.buffers[task.index()] = Some(buffer);
                    }
                    Err(_) => {
                        // Retry at a later scheduling point, once buffers
                        // have been relinquished.
                        self.metrics.alloc_stalls.inc();
                        nb_debug!(
                            "hv",
                            "msg=\"alloc stall\" app={app} task={task} at={now}"
                        );
                        continue;
                    }
                }
            }
            self.device
                .begin_execution(slot)
                .expect("idle bound slot is configured");
            self.launch_gen[slot_index] += 1;
            let gen = self.launch_gen[slot_index];
            let runtime = self.apps.get_mut(app).expect("bound app is live");
            runtime.phases[task.index()] = TaskPhase::Running(slot);
            self.monitor_dirty = true;
            runtime.first_launch.get_or_insert(now);
            runtime.item_started[task.index()] = Some(now);
            // Fetch the item's inputs: from predecessors' slots when they
            // are resident, from PS memory otherwise (application inputs,
            // or producers that already left the fabric).
            let slot_count = self.bindings.len();
            let preds = runtime.spec().graph().predecessors(task);
            let fetch = if preds.is_empty() {
                self.interconnect.fetch_latency(None, slot, slot_count)
            } else {
                preds
                    .iter()
                    .map(|&p| {
                        let from = runtime.phases[p.index()].slot();
                        self.interconnect.fetch_latency(from, slot, slot_count)
                    })
                    .max()
                    .expect("non-empty predecessors")
            };
            // Resume a checkpointed item where it left off.
            let full = runtime.spec().graph().task(task).latency();
            let remaining = full - runtime.item_progress[task.index()].min(full);
            let latency = remaining + fetch;
            let item = runtime.items_done[task.index()];
            if let Some(trace) = &mut self.trace {
                trace.record(TraceEvent::Item {
                    slot,
                    app,
                    task,
                    item,
                    at: now,
                    until: now + latency,
                });
            }
            queue.push(now + latency, HvEvent::ItemDone { app, task, slot, gen });
            if let Some(monitor) = &self.monitor {
                let until = now + latency;
                monitor.with(|m| {
                    m.on_item_launch(slot_index, now.as_micros(), until.as_micros());
                    m.record(
                        now.as_micros(),
                        "item",
                        // Lazy: evaluated only if the flight recorder
                        // accepts the event. nimblock: allow(hot-path-no-alloc)
                        || format!("slot={slot} app={app} task={task} item={item} until={until}"),
                    );
                });
            }
        }
    }

    /// The scheduling loop run after every event: policy directives while
    /// the configuration port is idle, then item launches.
    fn drive(&mut self, now: SimTime, queue: &mut EventQueue<HvEvent>) {
        while self.device.cap().is_idle() {
            self.refresh_snapshot();
            let directive = {
                let view = SchedView {
                    now,
                    apps: &self.apps,
                    slots: &self.snapshot_buf,
                    reconfig_latency: self.device.nominal_reconfig_latency(),
                    interconnect: self.interconnect,
                };
                // Wall-clock decision latency is only measured when a
                // registry is attached: the Instant pair is the one
                // instrument with a real (syscall-level) cost, and its
                // values are nondeterministic.
                if self.metrics.timed {
                    // nimblock: allow(no-wallclock-sim)
                    let started = std::time::Instant::now();
                    let directive = self.scheduler.next_reconfig(&view);
                    // Sub-nanosecond beyond u64 range (584 years) cannot
                    // occur for a single decision.
                    // nimblock: allow(no-lossy-cast)
                    let elapsed = started.elapsed().as_nanos() as u64;
                    self.metrics.decision_latency_nanos.observe(elapsed);
                    self.metrics.decision_latency_quantiles.observe(elapsed);
                    directive
                } else {
                    self.scheduler.next_reconfig(&view)
                }
            };
            match directive {
                Some(reconfig) => self.enact(reconfig, now, queue),
                None => break,
            }
        }
        self.launch_items(now, queue);
    }
}

impl<S: Scheduler> Handler<HvEvent> for Hypervisor<S> {
    fn handle(&mut self, now: SimTime, event: HvEvent, queue: &mut EventQueue<HvEvent>) {
        match event {
            HvEvent::Arrival(index) => {
                self.monitor_dirty = true;
                self.admit(index, now);
            }
            HvEvent::Tick => {}
            HvEvent::ReconfigDone { slot } => {
                self.monitor_dirty = true;
                self.on_reconfig_done(slot, now);
            }
            HvEvent::ItemDone { app, task, slot, gen } => {
                self.monitor_dirty = true;
                self.on_item_done(app, task, slot, now, gen);
            }
        }
        self.drive(now, queue);
        if self.monitor_dirty {
            if let (true, Some(monitor)) = (self.monitor_samples, &self.monitor) {
                // Sample the post-event scheduling state: unplaced tasks
                // (work backlog), slotless apps, and apps holding a slot.
                // Only when the state may have changed — no-op ticks skip
                // the scan, and the monitor carries the previous sample
                // through the windows in between.
                let mut queue_depth = 0u64;
                let mut waiting = 0u64;
                let mut running = 0u64;
                for (_, runtime) in self.apps.iter() {
                    let mut placed = false;
                    for phase in &runtime.phases {
                        if *phase == TaskPhase::Unplaced {
                            queue_depth += 1;
                        } else if phase.is_placed() {
                            placed = true;
                        }
                    }
                    if placed {
                        running += 1;
                    } else {
                        waiting += 1;
                    }
                }
                monitor.with(|m| m.sample(now.as_micros(), queue_depth, waiting, running));
            }
            self.monitor_dirty = false;
        }
        // A zero tick interval disables self re-arming: an outer driver
        // (e.g. a multi-board cluster) supplies the ticks instead.
        if matches!(event, HvEvent::Tick) && !self.finished() && !self.tick_interval.is_zero() {
            queue.push(now + self.tick_interval, HvEvent::Tick);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::VecDeque;
    

    use nimblock_app::{benchmarks, Priority, TaskId};
    use nimblock_fpga::DeviceConfig;
    use nimblock_sim::{SimDuration, Simulation};
    use nimblock_workload::ArrivalEvent;

    use super::*;
    use crate::Reconfig;

    /// A test policy that replays a fixed list of directives, one per
    /// scheduling point, then stays silent.
    #[derive(Debug, Default)]
    struct Scripted {
        directives: VecDeque<Reconfig>,
        pipelining: bool,
    }

    impl Scheduler for Scripted {
        fn name(&self) -> String {
            "Scripted".to_owned()
        }

        fn pipelining(&self) -> bool {
            self.pipelining
        }

        fn next_reconfig(&mut self, _view: &SchedView<'_>) -> Option<Reconfig> {
            self.directives.pop_front()
        }
    }

    fn start(scheduler: Scripted, batch: u32) -> Simulation<HvEvent, Hypervisor<Scripted>> {
        let events = vec![ArrivalEvent::new(
            benchmarks::lenet(),
            batch,
            Priority::Medium,
            SimTime::ZERO,
        )];
        let hypervisor = Hypervisor::new(Device::new(DeviceConfig::zcu106()), scheduler, events);
        let mut sim = Simulation::new(hypervisor);
        sim.queue_mut().push(SimTime::ZERO, HvEvent::Arrival(0));
        sim
    }

    fn app0() -> AppId {
        AppId::new(0)
    }

    #[test]
    #[should_panic(expected = "dead application")]
    fn directive_for_unknown_app_panics() {
        let scripted = Scripted {
            directives: VecDeque::from(vec![Reconfig {
                app: AppId::new(99),
                task: TaskId::new(0),
                slot: SlotId::new(0),
            }]),
            pipelining: false,
        };
        start(scripted, 1).run();
    }

    #[test]
    #[should_panic(expected = "not unplaced")]
    fn directive_for_placed_task_panics() {
        // Place task 0 twice on two different slots.
        let scripted = Scripted {
            directives: VecDeque::from(vec![
                Reconfig { app: app0(), task: TaskId::new(0), slot: SlotId::new(0) },
                Reconfig { app: app0(), task: TaskId::new(0), slot: SlotId::new(1) },
            ]),
            pipelining: false,
        };
        start(scripted, 1).run();
    }

    #[test]
    fn scripted_single_app_completes_and_reports() {
        // Place the three LeNet tasks on three slots in topological order.
        let scripted = Scripted {
            directives: VecDeque::from(vec![
                Reconfig { app: app0(), task: TaskId::new(0), slot: SlotId::new(0) },
                Reconfig { app: app0(), task: TaskId::new(1), slot: SlotId::new(1) },
                Reconfig { app: app0(), task: TaskId::new(2), slot: SlotId::new(2) },
            ]),
            pipelining: true,
        };
        let mut sim = start(scripted, 2);
        sim.run();
        assert!(sim.handler().finished());
        let records = sim.handler().records();
        assert_eq!(records.len(), 1);
        // 3 reconfigurations of 80 ms each were charged to the app.
        assert_eq!(records[0].reconfig_time, SimDuration::from_millis(240));
        assert_eq!(sim.handler().device().cap().completed(), 3);
    }

    #[test]
    fn silent_scheduler_never_finishes() {
        let mut sim = start(Scripted::default(), 1);
        sim.run_until(SimTime::from_secs(10));
        assert!(!sim.handler().finished());
        assert!(sim.handler().records().is_empty());
        assert_eq!(sim.handler().apps().len(), 1);
    }

    #[test]
    fn tracing_is_off_by_default_and_on_when_enabled() {
        let hypervisor = Hypervisor::new(
            Device::new(DeviceConfig::zcu106()),
            Scripted::default(),
            Vec::new(),
        );
        assert!(hypervisor.trace().is_none());
        let mut traced = Hypervisor::new(
            Device::new(DeviceConfig::zcu106()),
            Scripted::default(),
            Vec::new(),
        )
        .with_tracing();
        assert!(traced.trace().is_some());
        assert!(traced.take_trace().is_some());
        assert!(traced.trace().is_none());
    }

    #[test]
    fn finished_requires_all_arrivals_and_retirements() {
        let hypervisor = Hypervisor::new(
            Device::new(DeviceConfig::zcu106()),
            Scripted::default(),
            vec![ArrivalEvent::new(
                benchmarks::lenet(),
                1,
                Priority::Low,
                SimTime::ZERO,
            )],
        );
        // Nothing arrived yet: one stimulus event outstanding.
        assert!(!hypervisor.finished());
    }

    #[test]
    fn bulk_mode_waits_for_predecessor_batches() {
        // With pipelining disabled, task 1 must not start until task 0 has
        // finished both items; verify through the final timestamp.
        let scripted_bulk = Scripted {
            directives: VecDeque::from(vec![
                Reconfig { app: app0(), task: TaskId::new(0), slot: SlotId::new(0) },
                Reconfig { app: app0(), task: TaskId::new(1), slot: SlotId::new(1) },
                Reconfig { app: app0(), task: TaskId::new(2), slot: SlotId::new(2) },
            ]),
            pipelining: false,
        };
        let scripted_pipe = Scripted {
            directives: VecDeque::from(vec![
                Reconfig { app: app0(), task: TaskId::new(0), slot: SlotId::new(0) },
                Reconfig { app: app0(), task: TaskId::new(1), slot: SlotId::new(1) },
                Reconfig { app: app0(), task: TaskId::new(2), slot: SlotId::new(2) },
            ]),
            pipelining: true,
        };
        let mut bulk = start(scripted_bulk, 3);
        let mut pipe = start(scripted_pipe, 3);
        let bulk_end = bulk.run();
        let pipe_end = pipe.run();
        assert!(
            pipe_end < bulk_end,
            "pipelined ({pipe_end}) must finish before bulk ({bulk_end})"
        );
    }
}
