//! Dense arena of live application runtimes, indexed by [`AppId`].
//!
//! [`AppId`]s are handed out densely in arrival order, so the live set at
//! any instant is a contiguous id range with holes where applications
//! already retired. The arena exploits that: a `VecDeque` of `Option`
//! slots addressed by `id − base`, giving O(1) lookup, insert, and remove
//! on the hypervisor's per-event path with no tree rebalancing and no
//! per-entry allocation. Retired slots at the front are reclaimed by
//! advancing `base`, so memory tracks the live window rather than the
//! whole run history.
//!
//! Iteration order is ascending [`AppId`] — identical to the `BTreeMap`
//! this structure replaced, which the schedulers' oldest-first age
//! ordering (PREMA, Nimblock) and byte-identical reports rely on.

use std::collections::VecDeque;

use crate::{AppId, AppRuntime};

/// Arena of live [`AppRuntime`]s with O(1) id-indexed access and
/// ascending-id iteration. See the module docs for the layout.
#[derive(Debug, Clone, Default)]
pub struct AppArena {
    /// Id of `slots[0]`, once any slot exists.
    base: u64,
    /// One slot per id in `[base, base + slots.len())`; `None` = retired.
    slots: VecDeque<Option<AppRuntime>>,
    /// Number of `Some` slots.
    live: usize,
}

impl AppArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        AppArena::default()
    }

    /// Returns the number of live applications.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` if no applications are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Returns `true` if `id` is live.
    pub fn contains(&self, id: AppId) -> bool {
        self.get(id).is_some()
    }

    fn index_of(&self, id: AppId) -> Option<usize> {
        id.raw().checked_sub(self.base).map(|offset| offset as usize)
    }

    /// Returns the runtime of `id`, if live.
    pub fn get(&self, id: AppId) -> Option<&AppRuntime> {
        let index = self.index_of(id)?;
        self.slots.get(index)?.as_ref()
    }

    /// Returns the runtime of `id` mutably, if live.
    pub fn get_mut(&mut self, id: AppId) -> Option<&mut AppRuntime> {
        let index = self.index_of(id)?;
        self.slots.get_mut(index)?.as_mut()
    }

    /// Inserts `runtime` under its own id.
    ///
    /// # Panics
    ///
    /// Panics if the id is already live or falls below the arena's
    /// reclaimed front — ids must be assigned in non-decreasing order, the
    /// hypervisor's arrival-order contract.
    pub fn insert(&mut self, runtime: AppRuntime) {
        let raw = runtime.id().raw();
        if self.slots.is_empty() {
            self.base = raw;
        }
        let offset = raw.checked_sub(self.base).unwrap_or_else(|| {
            panic!("app id {raw} inserted below the arena base {}", self.base)
        });
        let index = offset as usize;
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let slot = &mut self.slots[index];
        assert!(slot.is_none(), "app id {raw} inserted twice");
        *slot = Some(runtime);
        self.live += 1;
    }

    /// Removes and returns the runtime of `id`, reclaiming any retired
    /// prefix so the arena's footprint tracks the live id window.
    pub fn remove(&mut self, id: AppId) -> Option<AppRuntime> {
        let index = self.index_of(id)?;
        let runtime = self.slots.get_mut(index)?.take()?;
        self.live -= 1;
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.base += 1;
        }
        if self.slots.is_empty() {
            self.base = 0;
        }
        Some(runtime)
    }

    /// Iterates live applications in ascending id (= arrival age) order.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, &AppRuntime)> + '_ {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref())
            .map(|runtime| (runtime.id(), runtime))
    }

    /// Iterates live application ids, oldest (lowest) first.
    pub fn ids(&self) -> impl Iterator<Item = AppId> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

impl std::ops::Index<AppId> for AppArena {
    type Output = AppRuntime;

    fn index(&self, id: AppId) -> &AppRuntime {
        self.get(id).unwrap_or_else(|| {
            // Indexing a retired id is a caller bug, same as `BTreeMap`'s
            // panicking `Index`.
            panic!("no live application {id}")
        })
    }
}

impl FromIterator<AppRuntime> for AppArena {
    fn from_iter<I: IntoIterator<Item = AppRuntime>>(iter: I) -> Self {
        let mut arena = AppArena::new();
        for runtime in iter {
            arena.insert(runtime);
        }
        arena
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use nimblock_app::{benchmarks, Priority};
    use nimblock_fpga::BitstreamId;
    use nimblock_sim::SimTime;

    use super::*;

    fn runtime(raw: u64) -> AppRuntime {
        let spec = Arc::new(benchmarks::lenet());
        let n = spec.graph().task_count();
        AppRuntime::new(
            AppId::new(raw),
            raw as usize,
            spec,
            2,
            Priority::Medium,
            SimTime::ZERO,
            (0..n as u64).map(BitstreamId::new).collect(),
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = AppArena::new();
        assert!(arena.is_empty());
        arena.insert(runtime(0));
        arena.insert(runtime(1));
        arena.insert(runtime(2));
        assert_eq!(arena.len(), 3);
        assert!(arena.contains(AppId::new(1)));
        assert_eq!(arena.get(AppId::new(2)).map(|r| r.id()), Some(AppId::new(2)));
        assert!(arena.get(AppId::new(3)).is_none());
        let removed = arena.remove(AppId::new(1)).expect("live");
        assert_eq!(removed.id(), AppId::new(1));
        assert!(arena.remove(AppId::new(1)).is_none());
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn iterates_in_ascending_id_order_with_holes() {
        let mut arena = AppArena::new();
        for raw in 0..6 {
            arena.insert(runtime(raw));
        }
        arena.remove(AppId::new(0));
        arena.remove(AppId::new(3));
        let ids: Vec<u64> = arena.ids().map(AppId::raw).collect();
        assert_eq!(ids, vec![1, 2, 4, 5]);
    }

    #[test]
    fn front_reclamation_bounds_memory() {
        let mut arena = AppArena::new();
        for raw in 0..100 {
            arena.insert(runtime(raw));
            if raw >= 2 {
                arena.remove(AppId::new(raw - 2));
            }
        }
        // Only the trailing live window is retained.
        assert_eq!(arena.len(), 2);
        assert!(arena.slots.len() <= 3, "retired prefix not reclaimed");
        assert_eq!(arena.ids().map(AppId::raw).collect::<Vec<_>>(), vec![98, 99]);
    }

    #[test]
    fn reuse_after_full_drain() {
        let mut arena = AppArena::new();
        arena.insert(runtime(5));
        arena.remove(AppId::new(5));
        assert!(arena.is_empty());
        arena.insert(runtime(9));
        assert_eq!(arena.ids().map(AppId::raw).collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_insert_panics() {
        let mut arena = AppArena::new();
        arena.insert(runtime(1));
        arena.insert(runtime(1));
    }

    #[test]
    fn index_returns_live_runtime() {
        let mut arena = AppArena::new();
        arena.insert(runtime(4));
        assert_eq!(arena[AppId::new(4)].id(), AppId::new(4));
    }
}
