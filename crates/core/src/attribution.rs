//! Response-time attribution: critical-path decomposition of every
//! application's life from a recorded [`Trace`].
//!
//! The paper's evaluation (Figs. 6–9) is an argument about *where
//! response time goes* under each policy — queue wait, CAP-serialized
//! reconfiguration, compute, preemption loss, and the wall-clock time
//! cross-batch pipelining claws back. This module turns any trace into
//! that argument, mechanically:
//!
//! 1. [`attribute_trace`] walks each retired application's `[arrival,
//!    retire)` window and classifies every elementary interval by the
//!    cause that was *driving (or blocking) progress* at that instant,
//!    with a fixed precedence — own execution > own reconfiguration >
//!    preemption loss > CAP serialization > queue wait. The resulting
//!    six components sum **exactly** (integer microseconds, no drift)
//!    to the measured response time; `pipeline_overlap_gain` is the
//!    negative term crediting overlapped execution across slots.
//! 2. [`span_trees`] derives a Dapper-style span tree per application
//!    (app → task → batch item, with reconfig / preemption / queue
//!    children, causal links to the CAP and the blocking predecessor
//!    task) and flags the spans on the critical path.
//!
//! Both run on the bare trace — no hypervisor state needed — so
//! `nimblock analyze explain` can post-process any `trace.json`.
//!
//! ## Why the decomposition is exact
//!
//! For one app, partition `[arrival, retire)` at every span boundary.
//! Each elementary interval gets exactly one label, so the labelled
//! interval lengths sum to the response time by construction. The
//! *busy* label (some own task item running) is then rewritten as
//! `compute + pipeline_overlap_gain`, where `compute` is the sum of
//! clamped item durations (double-counting parallel items) and the
//! gain is `busy_union − compute ≤ 0` — an identity, so exactness is
//! preserved.

use std::collections::BTreeMap;

use nimblock_metrics::{AppAttribution, AttributionComponents, AttributionSummary};
use nimblock_obs::{Span, SpanKind};

use nimblock_app::Priority;

use crate::trace::{Trace, TraceEvent};
use crate::AppId;

/// Everything one application's trace events say about its life.
struct AppTimeline {
    /// Position of this app's `Arrival` among all arrivals (equals the
    /// stimulus event index for time-sorted sequences — the simulator
    /// pops same-time events FIFO).
    arrival_order: usize,
    name: String,
    priority: Priority,
    arrival_us: u64,
    retire_us: Option<u64>,
    /// `(task, item, start, end)` in record order.
    items: Vec<(usize, u32, u64, u64)>,
    /// `(task, slot, start, end)` own reconfigurations.
    reconfigs: Vec<(usize, usize, u64, u64)>,
    /// `(task, at)` preemptions suffered.
    preempts: Vec<(usize, u64)>,
}

/// Collects per-app timelines plus the global CAP busy spans.
fn timelines(trace: &Trace) -> (Vec<(AppId, AppTimeline)>, Vec<(u64, u64)>) {
    let mut apps: BTreeMap<AppId, AppTimeline> = BTreeMap::new();
    let mut order: Vec<AppId> = Vec::new();
    let mut cap: Vec<(u64, u64)> = Vec::new();
    for event in trace.events() {
        match event {
            TraceEvent::Arrival { app, name, priority, at, .. } => {
                order.push(*app);
                apps.insert(
                    *app,
                    AppTimeline {
                        arrival_order: order.len() - 1,
                        name: name.clone(),
                        priority: *priority,
                        arrival_us: at.as_micros(),
                        retire_us: None,
                        items: Vec::new(),
                        reconfigs: Vec::new(),
                        preempts: Vec::new(),
                    },
                );
            }
            TraceEvent::Retire { app, at } => {
                if let Some(tl) = apps.get_mut(app) {
                    tl.retire_us = Some(at.as_micros());
                }
            }
            TraceEvent::Item { app, task, item, at, until, .. } => {
                if let Some(tl) = apps.get_mut(app) {
                    tl.items.push((task.index(), *item, at.as_micros(), until.as_micros()));
                }
            }
            TraceEvent::Reconfig { slot, app, task, at, until } => {
                cap.push((at.as_micros(), until.as_micros()));
                if let Some(tl) = apps.get_mut(app) {
                    tl.reconfigs.push((
                        task.index(),
                        slot.index(),
                        at.as_micros(),
                        until.as_micros(),
                    ));
                }
            }
            TraceEvent::Preempt { app, task, at, .. } => {
                if let Some(tl) = apps.get_mut(app) {
                    tl.preempts.push((task.index(), at.as_micros()));
                }
            }
        }
    }
    cap.sort_unstable();
    let ordered = order
        .into_iter()
        .filter_map(|id| apps.remove(&id).map(|tl| (id, tl)))
        .collect();
    (ordered, cap)
}

/// Clamps `(start, end)` to `[lo, hi]`; `None` if the result is empty.
fn clamp(start: u64, end: u64, lo: u64, hi: u64) -> Option<(u64, u64)> {
    let s = start.max(lo);
    let e = end.min(hi);
    (s < e).then_some((s, e))
}

/// Merges possibly-overlapping spans into a sorted disjoint union.
fn union(mut spans: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    spans.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// `true` if `t` lies inside the sorted disjoint `spans`.
fn covered(spans: &[(u64, u64)], t: u64) -> bool {
    let i = spans.partition_point(|&(s, _)| s <= t);
    i > 0 && t < spans[i - 1].1
}

/// The label an elementary interval receives, in precedence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cause {
    Busy,
    Reconfig,
    PreemptionLoss,
    CapSerialization,
    QueueWait,
}

/// Per-app classified timeline: each elementary interval of
/// `[arrival, retire)` with its winning cause, plus the derived
/// components. Internal scaffolding shared by [`attribute_trace`] and
/// [`span_trees`].
struct Classified {
    segments: Vec<(u64, u64, Cause)>,
    components: AttributionComponents,
}

fn classify(tl: &AppTimeline, cap: &[(u64, u64)]) -> Option<Classified> {
    let a = tl.arrival_us;
    let r = tl.retire_us?;
    if r <= a {
        return Some(Classified {
            segments: Vec::new(),
            components: AttributionComponents::default(),
        });
    }
    let own_items: Vec<(u64, u64)> = tl
        .items
        .iter()
        .filter_map(|&(_, _, s, e)| clamp(s, e, a, r))
        .collect();
    let compute: u64 = own_items.iter().map(|&(s, e)| e - s).sum();
    let busy = union(own_items);
    let rec = union(
        tl.reconfigs
            .iter()
            .filter_map(|&(_, _, s, e)| clamp(s, e, a, r))
            .collect(),
    );
    // A preemption's pending window ends when the task next gets a
    // reconfiguration stream (normal path) or, defensively, when it
    // next runs an item; otherwise it pends until retirement.
    let pend = union(
        tl.preempts
            .iter()
            .filter_map(|&(task, at)| {
                let next_rec = tl
                    .reconfigs
                    .iter()
                    .filter(|&&(t, _, s, _)| t == task && s >= at)
                    .map(|&(_, _, s, _)| s)
                    .min();
                let next_item = tl
                    .items
                    .iter()
                    .filter(|&&(t, _, s, _)| t == task && s >= at)
                    .map(|&(_, _, s, _)| s)
                    .min();
                let end = match (next_rec, next_item) {
                    (Some(x), Some(y)) => x.min(y),
                    (Some(x), None) | (None, Some(x)) => x,
                    (None, None) => r,
                };
                clamp(at, end.max(at), a, r)
            })
            .collect(),
    );
    let cap_busy = union(
        cap.iter()
            .filter_map(|&(s, e)| clamp(s, e, a, r))
            .collect(),
    );

    let mut bounds: Vec<u64> = vec![a, r];
    for set in [&busy, &rec, &pend, &cap_busy] {
        for &(s, e) in set.iter() {
            bounds.push(s);
            bounds.push(e);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();

    let mut components = AttributionComponents {
        compute,
        ..AttributionComponents::default()
    };
    let mut busy_union_len = 0u64;
    let mut segments = Vec::with_capacity(bounds.len().saturating_sub(1));
    for pair in bounds.windows(2) {
        let (t0, t1) = (pair[0], pair[1]);
        let len = t1 - t0;
        let cause = if covered(&busy, t0) {
            busy_union_len += len;
            Cause::Busy
        } else if covered(&rec, t0) {
            components.reconfig += len;
            Cause::Reconfig
        } else if covered(&pend, t0) {
            components.preemption_loss += len;
            Cause::PreemptionLoss
        } else if covered(&cap_busy, t0) {
            components.cap_serialization += len;
            Cause::CapSerialization
        } else {
            components.queue_wait += len;
            Cause::QueueWait
        };
        segments.push((t0, t1, cause));
    }
    // busy = compute + gain, an identity: the sum stays exact.
    components.pipeline_overlap_gain = busy_union_len as i64 - compute as i64;
    Some(Classified { segments, components })
}

/// Decomposes every retired application's response time into the six
/// attribution components (see the module docs for the exactness
/// argument). Apps are indexed by arrival order, which matches the
/// stimulus event index for time-sorted sequences.
pub fn attribute_trace(trace: &Trace) -> AttributionSummary {
    let (apps, cap) = timelines(trace);
    let attributions = apps
        .iter()
        .filter_map(|(_, tl)| {
            let classified = classify(tl, &cap)?;
            let response = tl.retire_us?.saturating_sub(tl.arrival_us);
            debug_assert!(
                classified.components.sums_to(response),
                "attribution drift for {}: {:?} != {response}",
                tl.name,
                classified.components,
            );
            Some(AppAttribution {
                event_index: tl.arrival_order,
                app_name: tl.name.clone(),
                priority: tl.priority,
                response_micros: response,
                components: classified.components,
            })
        })
        .collect();
    AttributionSummary::from_apps(attributions)
}

/// Derives one span tree per retired application, in arrival order:
/// an `App` root with `Task` children (each holding its `Reconfig`
/// and `BatchItem` spans plus post-preemption `Preempt` pending
/// windows), interleaved with synthesized `Queue` ("queue wait") and
/// `Requeue` ("cap wait") spans for the intervals where the app was
/// purely blocked. Spans on the critical path — the chain of
/// intervals that actually determined the retire time — are flagged
/// [`Span::critical`]; reconfig and cap-wait spans carry a `cap`
/// causal link, tasks link their blocking predecessor.
pub fn span_trees(trace: &Trace) -> Vec<Span> {
    let (apps, cap) = timelines(trace);
    let mut trees = Vec::new();
    for (id, tl) in &apps {
        let Some(retire) = tl.retire_us else { continue };
        let Some(classified) = classify(tl, &cap) else { continue };
        let mut root = Span::new(
            format!("{} {}", tl.name, id),
            SpanKind::App,
            tl.arrival_us,
            retire,
        );
        root.critical = true;

        // Which own item drives each busy interval: the one ending last.
        let mut item_critical = vec![false; tl.items.len()];
        for &(t0, _, cause) in &classified.segments {
            if cause != Cause::Busy {
                continue;
            }
            let driver = tl
                .items
                .iter()
                .enumerate()
                .filter(|&(_, &(_, _, s, e))| s <= t0 && t0 < e)
                .max_by_key(|&(i, &(_, _, _, e))| (e, i))
                .map(|(i, _)| i);
            if let Some(i) = driver {
                item_critical[i] = true;
            }
        }

        // Task spans with their children.
        let mut tasks: BTreeMap<usize, Span> = BTreeMap::new();
        let task_span = |tasks: &mut BTreeMap<usize, Span>, task: usize| {
            tasks.entry(task).or_insert_with(|| {
                let mut span =
                    Span::new(format!("task#{task}"), SpanKind::Task, u64::MAX, 0);
                if task > 0 {
                    span.links.push(format!("pred:task#{}", task - 1));
                }
                span
            });
        };
        for &(task, slot, s, e) in &tl.reconfigs {
            task_span(&mut tasks, task);
            let parent = tasks.get_mut(&task).expect("just inserted");
            parent.start_us = parent.start_us.min(s);
            parent.end_us = parent.end_us.max(e);
            let mut span =
                Span::new(format!("reconfig slot#{slot}"), SpanKind::Reconfig, s, e);
            span.links.push("cap".to_owned());
            span.critical = true;
            parent.children.push(span);
        }
        for (i, &(task, item, s, e)) in tl.items.iter().enumerate() {
            task_span(&mut tasks, task);
            let parent = tasks.get_mut(&task).expect("just inserted");
            parent.start_us = parent.start_us.min(s);
            parent.end_us = parent.end_us.max(e);
            let mut span = Span::new(format!("item{item}"), SpanKind::BatchItem, s, e);
            span.critical = item_critical[i];
            if span.critical {
                parent.critical = true;
            }
            parent.children.push(span);
        }
        for &(task, at) in &tl.preempts {
            if let Some(parent) = tasks.get_mut(&task) {
                let resume = tl
                    .reconfigs
                    .iter()
                    .filter(|&&(t, _, s, _)| t == task && s >= at)
                    .map(|&(_, _, s, _)| s)
                    .min()
                    .unwrap_or(retire);
                parent.end_us = parent.end_us.max(resume);
                let mut span =
                    Span::new("preempted".to_owned(), SpanKind::Preempt, at, resume);
                span.critical = true;
                parent.children.push(span);
            }
        }
        for task in tasks.values_mut() {
            task.children.sort_by_key(|c| (c.start_us, c.end_us));
        }

        // Synthesized blocked-interval spans on the root, coalescing
        // adjacent segments with the same cause.
        let mut gaps: Vec<Span> = Vec::new();
        for &(t0, t1, cause) in &classified.segments {
            let (kind, name, link) = match cause {
                Cause::QueueWait => (SpanKind::Queue, "queue wait", None),
                Cause::CapSerialization => (SpanKind::Requeue, "cap wait", Some("cap")),
                _ => continue,
            };
            match gaps.last_mut() {
                Some(last) if last.end_us == t0 && last.kind == kind => last.end_us = t1,
                _ => {
                    let mut span = Span::new(name.to_owned(), kind, t0, t1);
                    span.critical = true;
                    if let Some(link) = link {
                        span.links.push(link.to_owned());
                    }
                    gaps.push(span);
                }
            }
        }

        let mut children: Vec<Span> = tasks.into_values().collect();
        children.extend(gaps);
        children.sort_by_key(|c| (c.start_us, c.end_us));
        root.children = children;
        trees.push(root);
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_app::TaskId;
    use nimblock_fpga::SlotId;
    use nimblock_sim::SimTime;

    fn arrival(app: u64, name: &str, priority: Priority, at_ms: u64) -> TraceEvent {
        TraceEvent::Arrival {
            app: AppId::new(app),
            name: name.into(),
            batch: 2,
            priority,
            at: SimTime::from_millis(at_ms),
        }
    }

    fn reconfig(slot: u32, app: u64, task: u32, from_ms: u64, to_ms: u64) -> TraceEvent {
        TraceEvent::Reconfig {
            slot: SlotId::new(slot),
            app: AppId::new(app),
            task: TaskId::new(task),
            at: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(to_ms),
        }
    }

    fn item(slot: u32, app: u64, task: u32, item: u32, from_ms: u64, to_ms: u64) -> TraceEvent {
        TraceEvent::Item {
            slot: SlotId::new(slot),
            app: AppId::new(app),
            task: TaskId::new(task),
            item,
            at: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(to_ms),
        }
    }

    fn retire(app: u64, at_ms: u64) -> TraceEvent {
        TraceEvent::Retire { app: AppId::new(app), at: SimTime::from_millis(at_ms) }
    }

    /// app0: arrival 0, reconfig 0..80, items 80..130 and 130..180,
    /// retire 180. No contention.
    fn simple_trace() -> Trace {
        let mut trace = Trace::with_slots(2);
        trace.record(arrival(0, "lenet", Priority::Medium, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        trace.record(item(0, 0, 0, 0, 80, 130));
        trace.record(item(0, 0, 0, 1, 130, 180));
        trace.record(retire(0, 180));
        trace
    }

    #[test]
    fn uncontended_app_attributes_reconfig_and_compute() {
        let summary = attribute_trace(&simple_trace());
        assert_eq!(summary.apps.len(), 1);
        let app = &summary.apps[0];
        assert_eq!(app.response_micros, 180_000);
        assert_eq!(app.components.reconfig, 80_000);
        assert_eq!(app.components.compute, 100_000);
        assert_eq!(app.components.queue_wait, 0);
        assert_eq!(app.components.cap_serialization, 0);
        assert_eq!(app.components.preemption_loss, 0);
        assert_eq!(app.components.pipeline_overlap_gain, 0);
        assert!(summary.is_exact());
    }

    #[test]
    fn cap_serialization_is_charged_while_anothers_reconfig_blocks() {
        let mut trace = Trace::with_slots(2);
        // app0 hogs the CAP 0..80; app1 arrives at 0, waits, then
        // reconfigures 80..160, runs 160..200.
        trace.record(arrival(0, "a", Priority::Low, 0));
        trace.record(arrival(1, "b", Priority::Low, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        trace.record(item(0, 0, 0, 0, 80, 300));
        trace.record(reconfig(1, 1, 0, 80, 160));
        trace.record(item(1, 1, 0, 0, 160, 200));
        trace.record(retire(1, 200));
        trace.record(retire(0, 300));
        let summary = attribute_trace(&trace);
        let b = summary.apps.iter().find(|a| a.app_name == "b").unwrap();
        assert_eq!(b.components.cap_serialization, 80_000, "{:?}", b.components);
        assert_eq!(b.components.reconfig, 80_000);
        assert_eq!(b.components.compute, 40_000);
        assert_eq!(b.components.queue_wait, 0);
        assert!(summary.is_exact());
    }

    #[test]
    fn preemption_loss_covers_the_evicted_window() {
        let mut trace = Trace::with_slots(1);
        trace.record(arrival(0, "victim", Priority::Low, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        trace.record(item(0, 0, 0, 0, 80, 120));
        trace.record(TraceEvent::Preempt {
            slot: SlotId::new(0),
            app: AppId::new(0),
            task: TaskId::new(0),
            at: SimTime::from_millis(120),
        });
        // Re-admitted: reconfig 200..280, final item 280..320.
        trace.record(reconfig(0, 0, 0, 200, 280));
        trace.record(item(0, 0, 0, 1, 280, 320));
        trace.record(retire(0, 320));
        let summary = attribute_trace(&trace);
        let app = &summary.apps[0];
        assert_eq!(app.components.preemption_loss, 80_000, "{:?}", app.components);
        assert_eq!(app.components.reconfig, 160_000);
        assert_eq!(app.components.compute, 80_000);
        assert!(summary.is_exact());
    }

    #[test]
    fn pipeline_overlap_gain_is_negative_for_parallel_tasks() {
        let mut trace = Trace::with_slots(2);
        trace.record(arrival(0, "pipe", Priority::High, 0));
        trace.record(reconfig(0, 0, 0, 0, 80));
        trace.record(item(0, 0, 0, 0, 80, 180));
        trace.record(reconfig(1, 0, 1, 80, 160));
        // task#1 overlaps task#0's second item 180..280.
        trace.record(item(0, 0, 0, 1, 180, 280));
        trace.record(item(1, 0, 1, 0, 180, 280));
        trace.record(item(1, 0, 1, 1, 280, 380));
        trace.record(retire(0, 380));
        let summary = attribute_trace(&trace);
        let app = &summary.apps[0];
        assert_eq!(app.components.compute, 400_000);
        assert_eq!(app.components.pipeline_overlap_gain, -100_000);
        assert!(summary.is_exact());
        // busy union is 80..380 = 300ms; reconfig interval 0..80 own.
        assert_eq!(app.components.reconfig, 80_000);
        assert_eq!(app.components.queue_wait, 0);
    }

    #[test]
    fn span_tree_marks_critical_path_and_links() {
        let trees = span_trees(&simple_trace());
        assert_eq!(trees.len(), 1);
        let root = &trees[0];
        assert!(root.critical);
        assert_eq!(root.kind, SpanKind::App);
        let task = root
            .children
            .iter()
            .find(|c| c.kind == SpanKind::Task)
            .expect("task span");
        let rendered = root.render();
        assert!(rendered.contains("reconfig slot#0"), "{rendered}");
        assert!(rendered.contains("<- cap"), "{rendered}");
        assert!(task.children.iter().any(|c| c.critical && c.kind == SpanKind::BatchItem));
    }

    #[test]
    fn never_retired_apps_are_skipped() {
        let mut trace = Trace::with_slots(1);
        trace.record(arrival(0, "zombie", Priority::Low, 0));
        assert!(attribute_trace(&trace).apps.is_empty());
        assert!(span_trees(&trace).is_empty());
    }

    #[test]
    fn interval_union_and_coverage() {
        let u = union(vec![(5, 10), (0, 3), (9, 12), (20, 25)]);
        assert_eq!(u, vec![(0, 3), (5, 12), (20, 25)]);
        assert!(covered(&u, 0));
        assert!(covered(&u, 11));
        assert!(!covered(&u, 3));
        assert!(!covered(&u, 12));
        assert!(!covered(&u, 4));
    }
}
