//! The testbed: stimulus in, report out (paper §5.1).

use nimblock_fpga::{Device, DeviceConfig};
use nimblock_metrics::Report;
use nimblock_sim::{SimDuration, SimTime, Simulation};
use nimblock_workload::EventSequence;

use crate::{HvEvent, Hypervisor, Scheduler};

/// Emulates real-time application arrival on a single FPGA: releases each
/// stimulus event to the hypervisor at its arrival time, runs the system to
/// completion, and collects per-application metadata into a
/// [`Report`].
///
/// # Example
///
/// ```
/// use nimblock_core::{PremaScheduler, Testbed};
/// use nimblock_workload::{generate, Scenario};
///
/// let events = generate(3, 4, Scenario::Standard);
/// let report = Testbed::new(PremaScheduler::new()).run(&events);
/// assert_eq!(report.records().len(), 4);
/// assert_eq!(report.scheduler(), "PREMA");
/// ```
#[derive(Debug)]
pub struct Testbed<S> {
    scheduler: S,
    device_config: DeviceConfig,
    horizon: SimTime,
    per_item_overhead: Option<SimDuration>,
    interconnect: Option<nimblock_fpga::Interconnect>,
    scheduling_interval: SimDuration,
    fine_checkpoint: Option<SimDuration>,
    metrics: Option<nimblock_obs::Registry>,
    monitor: Option<nimblock_obs::MonitorHandle>,
    legacy_queue: bool,
}

/// Default livelock horizon: far beyond any legitimate sequence length
/// (the longest benchmark runs ~17 minutes per arrival).
const DEFAULT_HORIZON: SimTime = SimTime::from_secs(10_000_000);

impl<S: Scheduler> Testbed<S> {
    /// Creates a testbed on the default ZCU106 overlay (ten slots, 80 ms
    /// reconfiguration).
    pub fn new(scheduler: S) -> Self {
        Testbed {
            scheduler,
            device_config: DeviceConfig::zcu106(),
            horizon: DEFAULT_HORIZON,
            per_item_overhead: None,
            interconnect: None,
            scheduling_interval: SimDuration::from_millis(
                nimblock_fpga::zcu106::SCHEDULING_INTERVAL_MILLIS,
            ),
            fine_checkpoint: None,
            metrics: None,
            monitor: None,
            legacy_queue: false,
        }
    }

    /// Attaches a continuous-observability monitor (windowed time-series,
    /// flight recorder, SLO rules — see `nimblock_obs::timeseries`). The
    /// caller keeps a clone of the handle and snapshots it with
    /// [`nimblock_obs::MonitorHandle::to_doc`] after the run; the testbed
    /// finalizes the window series at the run's finish time.
    pub fn with_monitor(mut self, monitor: nimblock_obs::MonitorHandle) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Runs the simulation on the retired binary-heap event queue instead
    /// of the calendar queue. Exists solely so the differential suites can
    /// assert both backends produce byte-identical reports; a run's outcome
    /// never depends on the backend.
    #[cfg(feature = "legacy-queue")]
    pub fn with_legacy_queue(mut self) -> Self {
        self.legacy_queue = true;
        self
    }

    /// Publishes run telemetry in `registry`: the hypervisor's `hv_*`
    /// series, the policy's `sched_*` series (via
    /// [`Scheduler::attach_metrics`]), and the simulation engine's `sim_*`
    /// series. The registry outlives the run — render it afterwards with
    /// `registry.render_prometheus()` or serialize it as JSON.
    pub fn with_metrics(mut self, registry: nimblock_obs::Registry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Overrides the device configuration (slot count, port bandwidth, …).
    pub fn with_device_config(mut self, device_config: DeviceConfig) -> Self {
        self.device_config = device_config;
        self
    }

    /// Overrides the livelock horizon after which [`Testbed::run`] panics.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Overrides the per-item hypervisor overhead (control plus data
    /// movement through the PS between batch items; default 1 ms). A
    /// NoC-equipped overlay — the paper's §7 future work — would shrink
    /// this; zero models an ideal zero-cost hypervisor.
    pub fn with_per_item_overhead(mut self, overhead: SimDuration) -> Self {
        self.per_item_overhead = Some(overhead);
        self
    }

    /// Overrides the inter-slot data-movement model: the evaluated
    /// through-PS path, or the ring NoC of the paper's §7 future work.
    pub fn with_interconnect(mut self, interconnect: nimblock_fpga::Interconnect) -> Self {
        self.interconnect = Some(interconnect);
        self
    }

    /// Models a checkpoint-capable overlay: schedulers may preempt
    /// mid-item, paying `checkpoint` to save the item's state (paper §7
    /// future work). Pair with a policy that exploits it, e.g.
    /// `NimblockConfig::fine_preemption()`.
    pub fn with_fine_preemption(mut self, checkpoint: SimDuration) -> Self {
        self.fine_checkpoint = Some(checkpoint);
        self
    }

    /// Overrides the periodic scheduling interval at which slot
    /// reallocation is triggered (400 ms on the evaluated system).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero (the tick would spin forever).
    pub fn with_scheduling_interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "scheduling interval must be positive");
        self.scheduling_interval = interval;
        self
    }

    /// Runs `events` to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to retire every application before the
    /// livelock horizon — a scheduler that stops making progress is a bug
    /// worth failing loudly on.
    /// Runs `events` to completion with schedule tracing enabled, returning
    /// the report plus the full [`crate::Trace`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Testbed::run`].
    pub fn run_traced(self, events: &EventSequence) -> (Report, crate::Trace) {
        let horizon = self.horizon;
        let registry = self.metrics.clone();
        let monitor = self.monitor.clone();
        let mut sim = self.into_simulation(events, true);
        sim.run_until(horizon);
        assert!(
            sim.handler().finished(),
            "testbed hit the livelock horizon with {} applications outstanding",
            sim.handler().apps().len()
        );
        Self::export_sim_metrics(registry.as_ref(), &sim);
        let finished_at = sim.now();
        if let Some(monitor) = &monitor {
            monitor.with(|m| m.finalize(finished_at.as_micros()));
        }
        let mut hypervisor = sim.into_handler();
        let trace = hypervisor.take_trace().expect("tracing was enabled");
        let report = hypervisor
            .into_report(finished_at)
            .with_attribution(crate::attribution::attribute_trace(&trace));
        (report, trace)
    }

    /// Publishes the engine-level series after a run: events processed and
    /// the event-queue high-water mark.
    fn export_sim_metrics(
        registry: Option<&nimblock_obs::Registry>,
        sim: &Simulation<HvEvent, Hypervisor<S>>,
    ) {
        let Some(registry) = registry else { return };
        registry
            .counter("sim_events_total", "Simulation events processed")
            .add(sim.steps());
        registry
            .gauge(
                "sim_event_queue_depth_max",
                "High-water mark of the simulation event-queue depth",
            )
            .set(sim.max_queue_depth() as i64);
    }

    fn into_simulation(
        self,
        events: &EventSequence,
        tracing: bool,
    ) -> Simulation<HvEvent, Hypervisor<S>> {
        let device = Device::new(self.device_config);
        let tick = self.scheduling_interval;
        let mut scheduler = self.scheduler;
        if let Some(registry) = &self.metrics {
            scheduler.attach_metrics(registry);
        }
        let mut hypervisor = Hypervisor::new(device, scheduler, events.events().to_vec())
            .with_tick_interval(tick);
        if let Some(registry) = &self.metrics {
            hypervisor = hypervisor.with_metrics(registry);
        }
        if let Some(overhead) = self.per_item_overhead {
            hypervisor = hypervisor.with_per_item_overhead(overhead);
        }
        if let Some(interconnect) = self.interconnect {
            hypervisor = hypervisor.with_interconnect(interconnect);
        }
        if let Some(checkpoint) = self.fine_checkpoint {
            hypervisor = hypervisor.with_fine_preemption(checkpoint);
        }
        if let Some(monitor) = self.monitor {
            hypervisor = hypervisor.with_monitor(monitor);
        }
        if tracing {
            hypervisor = hypervisor.with_tracing();
        }
        let queue = if self.legacy_queue {
            nimblock_sim::EventQueue::legacy_heap()
        } else {
            nimblock_sim::EventQueue::new()
        };
        let mut sim = Simulation::with_queue(hypervisor, queue);
        for (index, event) in events.iter().enumerate() {
            sim.queue_mut().push(event.arrival(), HvEvent::Arrival(index));
        }
        sim.queue_mut().push(SimTime::ZERO + tick, HvEvent::Tick);
        sim
    }

    /// Runs `events` to completion and returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the system fails to retire every application before the
    /// livelock horizon — a scheduler that stops making progress is a bug
    /// worth failing loudly on.
    pub fn run(self, events: &EventSequence) -> Report {
        let horizon = self.horizon;
        let registry = self.metrics.clone();
        let monitor = self.monitor.clone();
        let mut sim = self.into_simulation(events, false);
        sim.run_until(horizon);
        assert!(
            sim.handler().finished(),
            "testbed hit the livelock horizon with {} applications outstanding",
            sim.handler().apps().len()
        );
        Self::export_sim_metrics(registry.as_ref(), &sim);
        let finished_at = sim.now();
        if let Some(monitor) = &monitor {
            monitor.with(|m| m.finalize(finished_at.as_micros()));
        }
        sim.into_handler().into_report(finished_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FcfsScheduler, NimblockScheduler, NoSharingScheduler, PremaScheduler, RoundRobinScheduler};
    use nimblock_workload::{generate, Scenario};

    #[test]
    fn every_policy_retires_every_app_on_the_same_stimulus() {
        let events = generate(11, 8, Scenario::Stress);
        let reports = [
            Testbed::new(NoSharingScheduler::new()).run(&events),
            Testbed::new(FcfsScheduler::new()).run(&events),
            Testbed::new(PremaScheduler::new()).run(&events),
            Testbed::new(RoundRobinScheduler::new()).run(&events),
            Testbed::new(NimblockScheduler::new()).run(&events),
        ];
        for report in &reports {
            assert_eq!(report.records().len(), 8, "{}", report.scheduler());
            for record in report.records() {
                assert!(record.retired >= record.arrival);
                assert!(record.first_launch.is_some(), "{}", report.scheduler());
            }
        }
    }

    #[test]
    fn metrics_registry_collects_run_telemetry() {
        let events = generate(5, 6, Scenario::Standard);
        let registry = nimblock_obs::Registry::new();
        let report = Testbed::new(NimblockScheduler::new())
            .with_metrics(registry.clone())
            .run(&events);
        let text = registry.render_prometheus();
        assert!(text.contains("hv_arrivals_total 6"), "{text}");
        assert!(text.contains("hv_retires_total 6"), "{text}");
        assert!(text.contains("sim_events_total"), "{text}");
        assert!(text.contains("sim_event_queue_depth_max"), "{text}");
        assert!(text.contains("sched_decisions_total"), "{text}");
        assert!(text.contains("sched_candidates_count"), "{text}");
        nimblock_obs::validate_prometheus(&text).unwrap();
        // The same counters surface in the report without any registry.
        assert_eq!(report.counters().arrivals, 6);
        assert_eq!(report.counters().retires, 6);
    }

    #[test]
    fn instrumentation_does_not_perturb_the_schedule() {
        let events = generate(9, 6, Scenario::Standard);
        let plain = Testbed::new(NimblockScheduler::new()).run(&events);
        let metered = Testbed::new(NimblockScheduler::new())
            .with_metrics(nimblock_obs::Registry::new())
            .run(&events);
        assert_eq!(plain.records(), metered.records());
        assert_eq!(plain.finished_at(), metered.finished_at());
        assert_eq!(plain.counters(), metered.counters());
    }

    #[test]
    fn monitor_fills_windows_without_perturbing_the_schedule() {
        let events = generate(9, 6, Scenario::Standard);
        let plain = Testbed::new(NimblockScheduler::new()).run(&events);
        // One-second windows: the Standard scenario spans ~28 min of
        // virtual time, which overflows the default 10 ms windows'
        // capacity bound (the drop counter would eat the late retires).
        let config = nimblock_obs::MonitorConfig::with_window_micros(1_000_000);
        let monitor = nimblock_obs::MonitorHandle::new(config, 0);
        let monitored = Testbed::new(NimblockScheduler::new())
            .with_monitor(monitor.clone())
            .run(&events);
        assert_eq!(plain.records(), monitored.records());
        assert_eq!(plain.finished_at(), monitored.finished_at());
        assert_eq!(plain.counters(), monitored.counters());
        let doc = monitor.to_doc();
        assert_eq!(doc.slots, 10, "bound to the zcu106 slot count on attach");
        assert!(!doc.windows.is_empty());
        let arrivals: u64 = doc.windows.iter().map(|w| w.arrivals).sum();
        let retires: u64 = doc.windows.iter().map(|w| w.retires).sum();
        assert_eq!((arrivals, retires), (6, 6));
        let responses: u64 = doc
            .windows
            .iter()
            .map(|w| w.resp_low.count() + w.resp_med.count() + w.resp_high.count())
            .sum();
        assert_eq!(responses, 6, "every retiree lands in one class sketch");
        for (index, window) in doc.windows.iter().enumerate() {
            assert!(
                window.busy_micros <= doc.slots * doc.window_micros,
                "window {index} overfull: {} busy µs",
                window.busy_micros
            );
        }
        assert!(!doc.recorder.is_empty());
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let events = generate(5, 6, Scenario::Standard);
        let a = Testbed::new(NimblockScheduler::new()).run(&events);
        let b = Testbed::new(NimblockScheduler::new()).run(&events);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.finished_at(), b.finished_at());
    }

    #[test]
    fn smaller_devices_work() {
        let events = generate(2, 4, Scenario::Standard);
        let config = DeviceConfig::zcu106().with_slot_count(3);
        let report = Testbed::new(NimblockScheduler::new())
            .with_device_config(config)
            .run(&events);
        assert_eq!(report.records().len(), 4);
    }

    #[test]
    #[should_panic(expected = "livelock horizon")]
    fn horizon_catches_unfinished_runs() {
        let events = generate(0, 4, Scenario::Standard);
        // A horizon shorter than any execution forces the panic path.
        Testbed::new(NoSharingScheduler::new())
            .with_horizon(SimTime::from_millis(1))
            .run(&events);
    }
}
