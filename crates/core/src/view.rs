//! The read-only system view offered to schedulers, and their directives.

use nimblock_app::TaskId;
use nimblock_fpga::{Interconnect, Resources, SlotId, SlotState};
use nimblock_sim::{SimDuration, SimTime};

use crate::{AppArena, AppId, AppRuntime};

/// One slot as a scheduler sees it: hardware state plus the hypervisor's
/// binding of which task currently owns it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBinding {
    /// The slot.
    pub slot: SlotId,
    /// The hardware occupancy state.
    pub state: SlotState,
    /// The task bound to the slot, if any.
    pub bound: Option<(AppId, TaskId)>,
    /// The fabric resources the slot encloses (slots may be heterogeneous).
    pub resources: Resources,
}

impl SlotBinding {
    /// Returns `true` if the slot is unbound and hardware-reconfigurable —
    /// free for a new task without preempting anyone.
    pub fn is_free(&self) -> bool {
        self.bound.is_none() && self.state.reconfigurable()
    }
}

/// A scheduling directive: reconfigure `slot` with `task` of `app`.
///
/// If the slot is currently bound to a different task, enacting the
/// directive batch-preempts that task: legal only while the victim is idle
/// at a batch boundary ([`crate::TaskPhase::Idle`]); the hypervisor panics
/// on violations because they are policy bugs, not runtime conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reconfig {
    /// Application owning the task to configure.
    pub app: AppId,
    /// Task to configure.
    pub task: TaskId,
    /// Destination slot.
    pub slot: SlotId,
}

/// A read-only snapshot of hypervisor state handed to [`crate::Scheduler`]
/// at each scheduling point.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Current virtual time.
    pub now: SimTime,
    /// Live (admitted, unretired) applications, keyed by age: iterating the
    /// arena visits the oldest application first.
    pub apps: &'a AppArena,
    /// All slots with their bindings, in slot-index order.
    pub slots: &'a [SlotBinding],
    /// Latency of one partial reconfiguration on this device.
    pub reconfig_latency: SimDuration,
    /// The inter-slot data-movement model of the device.
    pub interconnect: Interconnect,
}

impl SchedView<'_> {
    /// Returns the free slots (unbound and reconfigurable), lowest index
    /// first.
    pub fn free_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots.iter().filter(|b| b.is_free()).map(|b| b.slot)
    }

    /// Returns the first free slot, if any.
    pub fn first_free_slot(&self) -> Option<SlotId> {
        self.free_slots().next()
    }

    /// Returns live application ids oldest first (arrival order).
    pub fn apps_by_age(&self) -> impl Iterator<Item = AppId> + '_ {
        self.apps.ids()
    }

    /// Returns the runtime of `app`, if it is still live.
    pub fn app(&self, app: AppId) -> Option<&AppRuntime> {
        self.apps.get(app)
    }

    /// Returns the number of slots on the device.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Returns the free slots whose resources fit `task` of `app`, lowest
    /// index first. On the uniform overlay of the paper every task fits
    /// every slot; heterogeneous overlays (à la Hetero-ViTAL) restrict
    /// placement.
    pub fn free_slots_fitting(
        &self,
        app: AppId,
        task: TaskId,
    ) -> impl Iterator<Item = SlotId> + '_ {
        let needs = self
            .app(app)
            .map(|rt| *rt.spec().graph().task(task).resources());
        self.slots
            .iter()
            .filter(move |b| {
                b.is_free()
                    && needs
                        .map(|needs| needs.fits_within(&b.resources))
                        .unwrap_or(false)
            })
            .map(|b| b.slot)
    }

    /// Returns the first free slot that fits `task` of `app`, if any.
    pub fn first_free_slot_fitting(&self, app: AppId, task: TaskId) -> Option<SlotId> {
        self.free_slots_fitting(app, task).next()
    }

    /// Returns the free slot with the cheapest input path for `task` of
    /// `app`: the one minimizing the worst fetch latency from the task's
    /// currently placed predecessors (ties break to the lowest index, so
    /// on the through-PS interconnect this equals
    /// [`SchedView::first_free_slot`]).
    pub fn best_free_slot_for(&self, app: AppId, task: TaskId) -> Option<SlotId> {
        let runtime = self.app(app)?;
        let preds = runtime.spec().graph().predecessors(task);
        self.free_slots_fitting(app, task).min_by_key(|&candidate| {
            let worst = preds
                .iter()
                .map(|&p| {
                    let from = runtime.phase(p).slot();
                    self.interconnect
                        .fetch_latency(from, candidate, self.slots.len())
                })
                .max()
                .unwrap_or(SimDuration::ZERO);
            (worst, candidate)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimblock_fpga::BitstreamId;

    #[test]
    fn free_requires_unbound_and_reconfigurable() {
        let bs = BitstreamId::new(0);
        let free = SlotBinding {
            slot: SlotId::new(0),
            state: SlotState::Empty,
            bound: None,
            resources: Resources::ZERO,
        };
        assert!(free.is_free());
        let bound = SlotBinding {
            bound: Some((AppId::new(1), TaskId::new(0))),
            ..free
        };
        assert!(!bound.is_free());
        let reconfiguring = SlotBinding {
            state: SlotState::Reconfiguring(bs),
            ..free
        };
        assert!(!reconfiguring.is_free());
        // A slot still holding a finished task's logic is free.
        let stale = SlotBinding {
            state: SlotState::Configured(bs),
            ..free
        };
        assert!(stale.is_free());
    }

    #[test]
    fn view_helpers_iterate_in_order() {
        let apps = AppArena::new();
        let slots = vec![
            SlotBinding {
                slot: SlotId::new(0),
                state: SlotState::Empty,
                bound: Some((AppId::new(0), TaskId::new(0))),
                resources: Resources::ZERO,
            },
            SlotBinding {
                slot: SlotId::new(1),
                state: SlotState::Empty,
                bound: None,
                resources: Resources::ZERO,
            },
        ];
        let view = SchedView {
            now: SimTime::ZERO,
            apps: &apps,
            slots: &slots,
            reconfig_latency: SimDuration::from_millis(80),
            interconnect: Interconnect::zcu106_default(),
        };
        assert_eq!(view.first_free_slot(), Some(SlotId::new(1)));
        assert_eq!(view.slot_count(), 2);
        assert_eq!(view.apps_by_age().count(), 0);
        assert!(view.app(AppId::new(9)).is_none());
    }
}
