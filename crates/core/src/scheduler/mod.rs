//! The scheduling-policy interface and the five evaluated policies.

mod dml;
mod extras;
mod fcfs;
mod metrics;
mod nimblock;
mod no_sharing;
mod prema;
mod round_robin;
mod tokens;

pub use dml::DmlStaticScheduler;
pub use extras::{EdfScheduler, SjfScheduler};
pub use fcfs::FcfsScheduler;
pub use nimblock::{NimblockConfig, NimblockScheduler};
pub use no_sharing::NoSharingScheduler;
pub use prema::PremaScheduler;
pub use round_robin::RoundRobinScheduler;
pub(crate) use metrics::SchedMetrics;
pub(crate) use tokens::TokenBank;

use crate::{AppId, Reconfig, SchedView};

/// A scheduling policy consulted by the [`crate::Hypervisor`].
///
/// The hypervisor calls [`Scheduler::next_reconfig`] at every scheduling
/// point at which the configuration port is idle — application arrival,
/// reconfiguration completion, batch-item completion, application
/// retirement, and the periodic scheduling interval. The policy may answer
/// with at most one [`Reconfig`] directive per call (the port reconfigures
/// one slot at a time); directing a bound slot batch-preempts its idle
/// occupant.
///
/// # Contract
///
/// A directive must name a live application, one of its
/// [`crate::TaskPhase::Unplaced`] tasks, and a slot that is either free or
/// occupied by an [`crate::TaskPhase::Idle`] task. The hypervisor panics on
/// violations — they are policy bugs, not runtime conditions.
///
/// # Threading
///
/// The trait itself does not require `Send`, but the parallel cluster
/// testbed builds one scheduler *per board worker thread* from a shared
/// `Fn() -> S + Sync` factory, and callers that move boxed policies across
/// threads (the CLI, the faas gateway) use `Box<dyn Scheduler + Send>`.
/// Every policy in this crate is plain owned data and therefore `Send`;
/// keep it that way (no `Rc`, no thread-local captures) — the
/// `schedulers_are_send` test pins this.
pub trait Scheduler {
    /// Human-readable policy name, used in reports.
    fn name(&self) -> String;

    /// Whether the hypervisor may pipeline batch items across dependent
    /// tasks (Figure 2(c)). Bulk-processing policies return `false`.
    fn pipelining(&self) -> bool {
        false
    }

    /// Notification that `app` was admitted (it is present in `view`).
    fn on_arrival(&mut self, view: &SchedView<'_>, app: AppId) {
        let _ = (view, app);
    }

    /// Notification that `app` retired (it is already absent from `view`).
    fn on_retire(&mut self, view: &SchedView<'_>, app: AppId) {
        let _ = (view, app);
    }

    /// Returns the next reconfiguration to perform, or `None` to leave the
    /// configuration port idle until the next scheduling point.
    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig>;

    /// Publishes the policy's instruments (candidate counts, token levels,
    /// queue depths, …) in `registry` under `sched_*` names. The default
    /// does nothing; policies without interesting internal state need not
    /// implement it.
    fn attach_metrics(&mut self, registry: &nimblock_obs::Registry) {
        let _ = registry;
    }
}

impl<T: Scheduler + ?Sized> Scheduler for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn pipelining(&self) -> bool {
        (**self).pipelining()
    }

    fn on_arrival(&mut self, view: &SchedView<'_>, app: AppId) {
        (**self).on_arrival(view, app);
    }

    fn on_retire(&mut self, view: &SchedView<'_>, app: AppId) {
        (**self).on_retire(view, app);
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        (**self).next_reconfig(view)
    }

    fn attach_metrics(&mut self, registry: &nimblock_obs::Registry) {
        (**self).attach_metrics(registry);
    }
}

#[cfg(test)]
mod send_tests {
    use super::*;

    /// Compile-time pin: every policy can cross a thread boundary, which is
    /// what lets the cluster testbed run one board per worker. If a future
    /// policy gains an `Rc` or other non-`Send` state, this stops building.
    #[test]
    fn schedulers_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<NoSharingScheduler>();
        assert_send::<FcfsScheduler>();
        assert_send::<PremaScheduler>();
        assert_send::<RoundRobinScheduler>();
        assert_send::<NimblockScheduler>();
        assert_send::<DmlStaticScheduler>();
        assert_send::<EdfScheduler>();
        assert_send::<SjfScheduler>();
        assert_send::<Box<dyn Scheduler + Send>>();
    }
}
