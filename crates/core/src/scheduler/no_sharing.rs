//! The no-sharing baseline (paper §5.1).

use std::collections::VecDeque;

use crate::{AppId, Reconfig, SchedView, Scheduler};

/// The baseline scheduler: no sharing and no virtualization.
///
/// Only one application uses the FPGA at a time; the rest wait in a FIFO
/// pending queue. The active application may use *all* slots to execute
/// parallel branches of its task graph (and to hide reconfiguration behind
/// upstream compute), but batch items are bulk-processed — no cross-batch
/// pipelining — and nothing is ever preempted.
///
/// # Example
///
/// ```
/// use nimblock_core::{NoSharingScheduler, Testbed};
/// use nimblock_workload::{generate, Scenario};
///
/// let report = Testbed::new(NoSharingScheduler::new()).run(&generate(0, 3, Scenario::Standard));
/// assert_eq!(report.scheduler(), "NoSharing");
/// ```
#[derive(Debug, Clone, Default)]
pub struct NoSharingScheduler {
    active: Option<AppId>,
    fifo: VecDeque<AppId>,
}

impl NoSharingScheduler {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        NoSharingScheduler::default()
    }

    /// Returns the application currently owning the board, if any.
    pub fn active(&self) -> Option<AppId> {
        self.active
    }
}

impl Scheduler for NoSharingScheduler {
    fn name(&self) -> String {
        "NoSharing".to_owned()
    }

    fn on_arrival(&mut self, _view: &SchedView<'_>, app: AppId) {
        // Per-arrival FIFO admission; amortized VecDeque growth bounded
        // by live apps. nimblock: allow(hot-path-no-alloc)
        self.fifo.push_back(app);
    }

    fn on_retire(&mut self, _view: &SchedView<'_>, app: AppId) {
        if self.active == Some(app) {
            self.active = None;
        }
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        // Promote the next waiting application when the board is free.
        if self.active.is_none_or(|a| view.app(a).is_none()) {
            self.active = None;
            while let Some(front) = self.fifo.pop_front() {
                if view.app(front).is_some() {
                    self.active = Some(front);
                    break;
                }
            }
        }
        let app = self.active?;
        let runtime = view.app(app)?;
        let task = runtime.next_unplaced_eager()?;
        let slot = view.first_free_slot_fitting(app, task)?;
        Some(Reconfig { app, task, slot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{ArrivalEvent, EventSequence};

    #[test]
    fn applications_serialize() {
        // Two LeNets arriving together: the second's response time includes
        // the first's full execution.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::lenet(), 5, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 5, Priority::High, SimTime::ZERO),
        ]);
        let report = Testbed::new(NoSharingScheduler::new()).run(&events);
        let first = report.records()[0].response_time();
        let second = report.records()[1].response_time();
        assert!(
            second > first,
            "second app ({second}) must wait for the first ({first})"
        );
        // Not even high priority jumps the FIFO.
        assert!(second.as_secs_f64() >= 2.0 * first.as_secs_f64() * 0.8);
    }

    #[test]
    fn lenet_batch5_matches_table3_execution_time() {
        // Calibration check: baseline LeNet execution ≈ 0.73 s at batch 5.
        let events = EventSequence::new(vec![ArrivalEvent::new(
            benchmarks::lenet(),
            5,
            Priority::Low,
            SimTime::ZERO,
        )]);
        let report = Testbed::new(NoSharingScheduler::new()).run(&events);
        let exec = report.records()[0].execution_time().as_secs_f64();
        assert!(
            (exec - 0.73).abs() / 0.73 < 0.15,
            "LeNet baseline execution {exec} too far from 0.73 s"
        );
    }
}
