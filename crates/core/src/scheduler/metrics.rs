//! Shared policy telemetry: the `sched_*` series.
//!
//! Every instrumented policy holds a [`SchedMetrics`] of detached handles;
//! [`crate::Scheduler::attach_metrics`] swaps them for registry-backed ones.
//! Detached handles cost the same single relaxed atomic op, so an
//! uninstrumented run pays nothing measurable (see the `obs_overhead`
//! bench).

use nimblock_obs::{Counter, Gauge, Histogram, Registry};

/// Instrument handles shared by the scheduling policies.
#[derive(Debug, Clone)]
pub(crate) struct SchedMetrics {
    /// `next_reconfig` invocations (scheduling points consulted).
    pub(crate) decisions: Counter,
    /// Directives returned (reconfigurations requested).
    pub(crate) directives: Counter,
    /// Directives that batch-preempt an idle occupant.
    pub(crate) preempt_directives: Counter,
    /// Candidate-pool size per decision (token policies only).
    pub(crate) candidates: Histogram,
    /// Highest token count in the bank, in milli-tokens (token policies).
    pub(crate) max_tokens_milli: Gauge,
    /// Ready-queue depth (queue policies only).
    pub(crate) ready_depth: Gauge,
}

impl SchedMetrics {
    /// Creates detached handles: fully functional, never exported.
    pub(crate) fn detached() -> Self {
        SchedMetrics {
            decisions: Counter::detached(),
            directives: Counter::detached(),
            preempt_directives: Counter::detached(),
            candidates: Histogram::detached(),
            max_tokens_milli: Gauge::detached(),
            ready_depth: Gauge::detached(),
        }
    }

    /// Rebinds every handle to `registry` under the `sched_*` names.
    /// Handles the policy does not drive simply stay at zero.
    pub(crate) fn register(&mut self, registry: &Registry) {
        self.decisions = registry.counter(
            "sched_decisions_total",
            "Scheduling points at which the policy was consulted",
        );
        self.directives = registry.counter(
            "sched_directives_total",
            "Reconfiguration directives the policy returned",
        );
        self.preempt_directives = registry.counter(
            "sched_preempt_directives_total",
            "Directives that batch-preempt an idle occupant",
        );
        self.candidates = registry.histogram(
            "sched_candidates",
            "Candidate-pool size per scheduling decision",
        );
        self.max_tokens_milli = registry.gauge(
            "sched_max_tokens_milli",
            "Highest token count in the bank, in milli-tokens",
        );
        self.ready_depth = registry.gauge(
            "sched_ready_queue_depth",
            "Ready tasks waiting for a slot",
        );
    }
}

impl Default for SchedMetrics {
    fn default() -> Self {
        SchedMetrics::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_handles_count_without_a_registry() {
        let metrics = SchedMetrics::detached();
        metrics.decisions.inc();
        metrics.candidates.observe(3);
        metrics.max_tokens_milli.set(9_000);
        assert_eq!(metrics.decisions.get(), 1);
        assert_eq!(metrics.candidates.count(), 1);
        assert_eq!(metrics.max_tokens_milli.get(), 9_000);
    }

    #[test]
    fn register_rebinds_to_exported_instruments() {
        let registry = Registry::new();
        let mut metrics = SchedMetrics::detached();
        metrics.register(&registry);
        metrics.decisions.inc();
        metrics.directives.add(2);
        let text = registry.render_prometheus();
        assert!(text.contains("sched_decisions_total 1"), "{text}");
        assert!(text.contains("sched_directives_total 2"), "{text}");
    }
}
