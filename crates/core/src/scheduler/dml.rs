//! A DML-style static scheduler (paper §6.2 related work).
//!
//! DML solves the slot-allocation problem with an offline ILP, relying on
//! *prior knowledge of applications and their arrival times*, requires the
//! user to statically designate slot counts, and ignores priorities. This
//! policy reproduces that contrast: it receives the whole stimulus up
//! front, splits the board's slots among the applications of each arrival
//! wave with the exact ILP from `nimblock-ilp`, and then holds those
//! allocations fixed — no tokens, no preemption, no reallocation.
//!
//! Comparing it with Nimblock quantifies the paper's argument that dynamic
//! allocation without user input can match a static optimal split while
//! also handling priorities and unpredictable arrivals.

use std::collections::BTreeMap;

use nimblock_ilp::{saturation, EstimatorConfig, PipelineEstimator};
use nimblock_sim::SimDuration;
use nimblock_workload::EventSequence;

use crate::{AppId, Reconfig, SchedView, Scheduler};

/// The static DML-style policy. Build it with the full stimulus (the prior
/// knowledge DML assumes) via [`DmlStaticScheduler::plan`].
#[derive(Debug, Clone)]
pub struct DmlStaticScheduler {
    /// Static slot allocation per stimulus event index.
    planned: Vec<usize>,
    /// Live apps' allocations, looked up at admission by event order.
    admitted: BTreeMap<AppId, usize>,
    next_event: usize,
    pipelining: bool,
}

impl DmlStaticScheduler {
    /// Plans static allocations for `events` on a `slot_count`-slot device
    /// with `reconfig` latency: each application's makespan-versus-slots
    /// curve is estimated, and the board is split by the exact ILP among
    /// the applications of each overlapping arrival window.
    ///
    /// The window heuristic mirrors DML's usage: applications whose
    /// arrivals fall within one estimated makespan of each other are
    /// assumed co-resident and share the split.
    pub fn plan(events: &EventSequence, slot_count: usize, reconfig: SimDuration) -> Self {
        let estimator = PipelineEstimator::new(EstimatorConfig {
            reconfig,
            pipelining: true,
        });
        // Estimate each app's solo curve.
        let curves: Vec<Vec<SimDuration>> = events
            .iter()
            .map(|event| {
                (1..=slot_count)
                    .map(|k| estimator.makespan(event.app().graph(), event.batch_size(), k))
                    .collect()
            })
            .collect();
        // Partition events into co-residency windows by arrival time.
        let mut planned = vec![1usize; events.len()];
        let mut window: Vec<usize> = Vec::new();
        let mut window_end = nimblock_sim::SimTime::ZERO;
        let flush = |window: &[usize], planned: &mut Vec<usize>, curves: &[Vec<SimDuration>]| {
            if window.is_empty() {
                return;
            }
            let window_curves: Vec<Vec<SimDuration>> =
                window.iter().map(|&i| curves[i].clone()).collect();
            // More co-residents than slots: everyone gets one slot (the ILP
            // would be infeasible); otherwise split exactly.
            if window.len() > slot_count {
                for &i in window {
                    planned[i] = 1;
                }
            } else if let Ok(split) = saturation::optimal_slot_split(&window_curves, slot_count) {
                for (&i, slots) in window.iter().zip(split) {
                    planned[i] = slots;
                }
            }
        };
        for (index, event) in events.iter().enumerate() {
            if !window.is_empty() && event.arrival() > window_end {
                flush(&window, &mut planned, &curves);
                window.clear();
            }
            // Extend the window to this app's estimated solo completion.
            let solo = curves[index][0];
            window_end = window_end.max(event.arrival() + solo);
            window.push(index);
        }
        flush(&window, &mut planned, &curves);
        DmlStaticScheduler {
            planned,
            admitted: BTreeMap::new(),
            next_event: 0,
            pipelining: true,
        }
    }

    /// Returns the planned allocation per stimulus event.
    pub fn planned_allocations(&self) -> &[usize] {
        &self.planned
    }
}

impl Scheduler for DmlStaticScheduler {
    fn name(&self) -> String {
        "DML-static".to_owned()
    }

    fn pipelining(&self) -> bool {
        self.pipelining
    }

    fn on_arrival(&mut self, _view: &SchedView<'_>, app: AppId) {
        // Applications are admitted in stimulus order (the hypervisor
        // assigns AppIds densely), so the next planned slot count is this
        // application's.
        let allocation = self.planned.get(self.next_event).copied().unwrap_or(1);
        self.next_event += 1;
        self.admitted.insert(app, allocation);
    }

    fn on_retire(&mut self, _view: &SchedView<'_>, app: AppId) {
        self.admitted.remove(&app);
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        view.first_free_slot()?;
        // Oldest first, respecting the static allocation; no preemption.
        for (&app, &allocation) in &self.admitted {
            let Some(runtime) = view.app(app) else { continue };
            if runtime.slots_used() >= allocation {
                continue;
            }
            if let Some(task) = runtime.next_unplaced_eager() {
                if let Some(slot) = view.first_free_slot_fitting(app, task) {
                    return Some(Reconfig { app, task, slot });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{generate, ArrivalEvent, Scenario};

    const R: SimDuration = SimDuration::from_millis(80);

    #[test]
    fn solo_app_gets_many_slots() {
        let events = EventSequence::new(vec![ArrivalEvent::new(
            benchmarks::optical_flow(),
            10,
            Priority::Low,
            SimTime::ZERO,
        )]);
        let planner = DmlStaticScheduler::plan(&events, 10, R);
        assert!(planner.planned_allocations()[0] > 1);
    }

    #[test]
    fn coresident_apps_share_the_split() {
        // Two long apps arriving together must split the ten slots.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::optical_flow(), 10, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::alexnet(), 10, Priority::Low, SimTime::from_millis(100)),
        ]);
        let planner = DmlStaticScheduler::plan(&events, 10, R);
        let total: usize = planner.planned_allocations().iter().sum();
        assert!(total <= 10, "static split must fit the board, got {total}");
        assert!(planner.planned_allocations().iter().all(|&a| a >= 1));
    }

    #[test]
    fn oversubscribed_window_falls_back_to_one_each() {
        let events = EventSequence::new(
            (0..15u64)
                .map(|i| {
                    ArrivalEvent::new(
                        benchmarks::digit_recognition(),
                        5,
                        Priority::Low,
                        SimTime::from_millis(i * 10),
                    )
                })
                .collect(),
        );
        let planner = DmlStaticScheduler::plan(&events, 10, R);
        assert!(planner.planned_allocations().iter().all(|&a| a == 1));
    }

    #[test]
    fn static_plan_runs_to_completion() {
        let events = generate(23, 10, Scenario::Stress);
        let planner = DmlStaticScheduler::plan(&events, 10, R);
        let report = Testbed::new(planner).run(&events);
        assert_eq!(report.records().len(), 10);
        assert_eq!(report.scheduler(), "DML-static");
    }

    #[test]
    fn nimblock_is_competitive_without_prior_knowledge() {
        // The paper's claim: dynamic Nimblock matches a static optimal
        // split without knowing arrivals in advance. Allow DML a small
        // edge, but not a blowout.
        let events = generate(24, 12, Scenario::Stress);
        let planner = DmlStaticScheduler::plan(&events, 10, R);
        let dml = Testbed::new(planner).run(&events);
        let nimblock = Testbed::new(crate::NimblockScheduler::default()).run(&events);
        assert!(
            nimblock.mean_response_secs() < dml.mean_response_secs() * 1.5,
            "Nimblock {:.1}s vs DML-static {:.1}s",
            nimblock.mean_response_secs(),
            dml.mean_response_secs()
        );
    }
}
