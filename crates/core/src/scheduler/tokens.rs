//! PREMA-style token accumulation (paper §4.1, Algorithm 1).
//!
//! Applications accumulate tokens proportional to their priority and their
//! normalized performance degradation. The *threshold* is the maximum token
//! count in the pending queue rounded down to the nearest priority level;
//! applications at or above the threshold are scheduling *candidates*.

use std::collections::BTreeMap;

use nimblock_app::Priority;
use nimblock_sim::SimTime;

use crate::{AppId, AppRuntime, SchedView};

/// The scheduling-interval length used as the token-accumulation epoch
/// (the paper's 400 ms slot-reallocation interval, §5.1).
const EPOCH_SECS: f64 = 0.4;

#[derive(Debug, Clone)]
struct TokenEntry {
    tokens: f64,
    weight: f64,
    /// Single-slot latency estimate in seconds; normalizes degradation.
    isolated_secs: f64,
    admitted: SimTime,
    last_update: SimTime,
    candidate_since: Option<SimTime>,
}

/// Token bookkeeping shared by the PREMA and Nimblock policies.
#[derive(Debug, Clone)]
pub(crate) struct TokenBank {
    alpha: f64,
    entries: BTreeMap<AppId, TokenEntry>,
    /// Reusable scratch for candidate selection, so the per-decision path
    /// allocates nothing once warm.
    pool: Vec<(SimTime, AppId)>,
}

impl TokenBank {
    /// Creates a bank with degradation scale factor `alpha`.
    pub(crate) fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        TokenBank {
            alpha,
            entries: BTreeMap::new(),
            pool: Vec::new(),
        }
    }

    /// Admits an application: initial tokens equal its priority weight
    /// (Algorithm 1, line 3).
    pub(crate) fn admit(&mut self, app: &AppRuntime, view: &SchedView<'_>) {
        let weight = f64::from(app.priority().weight());
        let isolated = app
            .spec()
            .single_slot_latency(app.batch_size(), view.reconfig_latency)
            .as_secs_f64()
            .max(1e-6);
        self.entries.insert(
            app.id(),
            TokenEntry {
                tokens: weight,
                weight,
                isolated_secs: isolated,
                admitted: view.now,
                last_update: view.now,
                candidate_since: None,
            },
        );
    }

    /// Forgets a retired application.
    pub(crate) fn remove(&mut self, app: AppId) {
        self.entries.remove(&app);
    }

    /// Accumulates tokens for every pending application. At each 400 ms
    /// scheduling epoch an application earns `alpha × priority ×
    /// degradation` tokens, where its degradation is the time it has spent
    /// in the system normalized by its isolated (single-slot) latency
    /// (Algorithm 1, line 6). Integrated over epochs this gives the closed
    /// form `weight + alpha × weight × elapsed² / (2 × isolated × epoch)`,
    /// which keeps the result independent of how often the hypervisor
    /// happens to consult the scheduler.
    pub(crate) fn accumulate(&mut self, now: SimTime) {
        for entry in self.entries.values_mut() {
            let elapsed = now.saturating_since(entry.admitted).as_secs_f64();
            entry.tokens = entry.weight
                + self.alpha * entry.weight * elapsed * elapsed
                    / (2.0 * entry.isolated_secs * EPOCH_SECS);
            entry.last_update = now;
        }
    }

    /// Returns the candidate threshold: the maximum token count floored to
    /// the nearest priority level (Algorithm 1, line 8).
    pub(crate) fn threshold(&self) -> f64 {
        self.entries
            .values()
            .map(|e| f64::from(Priority::floor_weight(e.tokens)))
            .fold(0.0, f64::max)
    }

    /// Fills `out` with the candidate pool — applications whose tokens meet
    /// the threshold — ordered oldest candidate first (entry into the pool,
    /// then age). Newly qualifying applications are stamped with `now`.
    /// Writes into the caller's buffer so steady-state decisions allocate
    /// nothing.
    pub(crate) fn candidates_into(&mut self, now: SimTime, out: &mut Vec<AppId>) {
        out.clear();
        let threshold = self.threshold();
        self.pool.clear();
        for (&id, entry) in self.entries.iter_mut() {
            if entry.tokens >= threshold {
                let since = *entry.candidate_since.get_or_insert(now);
                // `pool` is a reusable scratch buffer; its capacity
                // persists across reconfigurations and tops out at the
                // live-app count. nimblock: allow(hot-path-no-alloc)
                self.pool.push((since, id));
            }
        }
        self.pool.sort();
        out.extend(self.pool.iter().map(|&(_, id)| id));
    }

    /// Returns the candidate pool as an owned list; see
    /// [`TokenBank::candidates_into`].
    #[cfg(test)]
    pub(crate) fn candidates(&mut self, now: SimTime) -> Vec<AppId> {
        let mut out = Vec::new();
        self.candidates_into(now, &mut out);
        out
    }

    /// Returns the token count of `app`, if admitted.
    #[cfg(test)]
    pub(crate) fn tokens(&self, app: AppId) -> Option<f64> {
        self.entries.get(&app).map(|e| e.tokens)
    }

    /// Returns the highest token count in the bank (zero when empty) —
    /// the raw value the candidate [`TokenBank::threshold`] is floored
    /// from. Exposed as the `sched_max_tokens_milli` telemetry gauge.
    pub(crate) fn max_tokens(&self) -> f64 {
        self.entries.values().map(|e| e.tokens).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::SlotBinding;
    use nimblock_app::benchmarks;
    use nimblock_sim::SimDuration;
    use std::sync::Arc;

    fn make_app(raw: u64, priority: Priority, batch: u32) -> AppRuntime {
        let spec = Arc::new(benchmarks::lenet());
        let n = spec.graph().task_count();
        AppRuntime::new(
            AppId::new(raw),
            raw as usize,
            spec,
            batch,
            priority,
            SimTime::ZERO,
            (0..n as u64).map(nimblock_fpga::BitstreamId::new).collect(),
        )
    }

    fn view_at<'a>(
        now: SimTime,
        apps: &'a crate::AppArena,
        slots: &'a [SlotBinding],
    ) -> SchedView<'a> {
        SchedView {
            now,
            apps,
            slots,
            reconfig_latency: SimDuration::from_millis(80),
            interconnect: nimblock_fpga::Interconnect::zcu106_default(),
        }
    }

    #[test]
    fn initial_tokens_equal_priority_weight() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let app = make_app(0, Priority::High, 2);
        bank.admit(&app, &view_at(SimTime::ZERO, &apps, &[]));
        assert_eq!(bank.tokens(app.id()), Some(9.0));
    }

    #[test]
    fn tokens_grow_faster_for_higher_priority() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let low = make_app(0, Priority::Low, 2);
        let high = make_app(1, Priority::High, 2);
        bank.admit(&low, &view);
        bank.admit(&high, &view);
        bank.accumulate(SimTime::from_secs(10));
        let low_gain = bank.tokens(low.id()).unwrap() - 1.0;
        let high_gain = bank.tokens(high.id()).unwrap() - 9.0;
        assert!((high_gain / low_gain - 9.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_apps_degrade_faster() {
        // Same priority, smaller batch => smaller isolated latency => faster
        // normalized degradation.
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let small = make_app(0, Priority::Low, 1);
        let big = make_app(1, Priority::Low, 30);
        bank.admit(&small, &view);
        bank.admit(&big, &view);
        bank.accumulate(SimTime::from_secs(5));
        assert!(bank.tokens(small.id()).unwrap() > bank.tokens(big.id()).unwrap());
    }

    #[test]
    fn threshold_floors_to_priority_levels() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let medium = make_app(0, Priority::Medium, 2);
        bank.admit(&medium, &view);
        assert_eq!(bank.threshold(), 3.0);
        // Push tokens to 8.9 — still floors to 3.
        let app_entry = bank.entries.get_mut(&medium.id()).unwrap();
        app_entry.tokens = 8.9;
        assert_eq!(bank.threshold(), 3.0);
        bank.entries.get_mut(&medium.id()).unwrap().tokens = 9.1;
        assert_eq!(bank.threshold(), 9.0);
    }

    #[test]
    fn high_priority_arrival_excludes_low_until_it_degrades() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let low = make_app(0, Priority::Low, 2);
        let high = make_app(1, Priority::High, 2);
        bank.admit(&low, &view);
        bank.admit(&high, &view);
        let cands = bank.candidates(SimTime::ZERO);
        assert_eq!(cands, vec![high.id()]);
    }

    #[test]
    fn candidates_ordered_by_pool_entry_time() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let a = make_app(0, Priority::High, 2);
        bank.admit(&a, &view);
        assert_eq!(bank.candidates(SimTime::ZERO), vec![a.id()]);
        // b joins the pool later; a keeps its earlier candidate_since.
        let b = make_app(1, Priority::High, 2);
        bank.admit(&b, &view_at(SimTime::from_secs(1), &apps, &[]));
        let cands = bank.candidates(SimTime::from_secs(1));
        assert_eq!(cands, vec![a.id(), b.id()]);
    }

    #[test]
    fn removed_apps_leave_the_pool() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let a = make_app(0, Priority::Low, 2);
        bank.admit(&a, &view);
        bank.remove(a.id());
        assert!(bank.candidates(SimTime::ZERO).is_empty());
        assert_eq!(bank.threshold(), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn zero_alpha_rejected() {
        TokenBank::new(0.0);
    }

    /// Saturation edge case: after an extreme wait (days of simulated
    /// time), token counts for all three priority weights (1/3/9) stay
    /// finite, keep their strict priority ordering, and the candidate
    /// threshold saturates at the top priority level — it never climbs
    /// past 9 no matter how large the raw maximum grows.
    #[test]
    fn extreme_wait_keeps_tokens_finite_and_threshold_saturated() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let low = make_app(0, Priority::Low, 2);
        let medium = make_app(1, Priority::Medium, 2);
        let high = make_app(2, Priority::High, 2);
        bank.admit(&low, &view);
        bank.admit(&medium, &view);
        bank.admit(&high, &view);
        // ~11.6 simulated days of waiting.
        bank.accumulate(SimTime::from_secs(1_000_000));
        let t_low = bank.tokens(low.id()).unwrap();
        let t_medium = bank.tokens(medium.id()).unwrap();
        let t_high = bank.tokens(high.id()).unwrap();
        for t in [t_low, t_medium, t_high] {
            assert!(t.is_finite(), "token count overflowed to non-finite: {t}");
            assert!(t > 9.0, "after an extreme wait every app passed the top weight");
        }
        assert!(t_low < t_medium && t_medium < t_high);
        // The floor quantizes to priority levels {0, 1, 3, 9}: the
        // threshold saturates at 9 even though raw maxima are astronomical.
        assert_eq!(bank.threshold(), 9.0);
        assert!(bank.max_tokens() > 1e6);
        // With everyone past the top level, all three are candidates —
        // saturation restores FCFS-among-equals rather than starving Low.
        let cands = bank.candidates(SimTime::from_secs(1_000_000));
        assert_eq!(cands.len(), 3);
    }

    /// Boundary behaviour at the exact 1/3/9 weight levels: a token count
    /// sitting exactly on a level floors to that level, one ulp-ish below
    /// floors to the level beneath.
    #[test]
    fn threshold_boundaries_at_each_priority_weight() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let app = make_app(0, Priority::Low, 2);
        bank.admit(&app, &view);
        for (tokens, floored) in [
            (0.999_999, 0.0),
            (1.0, 1.0),
            (2.999_999, 1.0),
            (3.0, 3.0),
            (8.999_999, 3.0),
            (9.0, 9.0),
            (1e12, 9.0),
        ] {
            bank.entries.get_mut(&app.id()).unwrap().tokens = tokens;
            assert_eq!(
                bank.threshold(),
                floored,
                "tokens={tokens} must floor to {floored}"
            );
        }
    }

    /// Accumulating "backwards" (a view timestamp earlier than admission,
    /// which a scheduler consulted mid-epoch can produce) saturates to zero
    /// elapsed time instead of underflowing: tokens never drop below the
    /// admission weight.
    #[test]
    fn accumulation_before_admission_saturates_to_weight() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let app = make_app(0, Priority::High, 2);
        bank.admit(&app, &view_at(SimTime::from_secs(100), &apps, &[]));
        bank.accumulate(SimTime::from_secs(50));
        assert_eq!(bank.tokens(app.id()), Some(9.0));
    }

    /// A Low-priority application left waiting long enough crosses the
    /// High level and becomes a candidate alongside a fresh High arrival —
    /// the anti-starvation property the 1/3/9 weights exist to provide.
    #[test]
    fn low_priority_eventually_crosses_the_high_level() {
        let mut bank = TokenBank::new(1.0);
        let apps = crate::AppArena::new();
        let view = view_at(SimTime::ZERO, &apps, &[]);
        let low = make_app(0, Priority::Low, 2);
        bank.admit(&low, &view);
        // Find the first epoch multiple where Low passes weight 9.
        let mut crossed = None;
        for secs in 1..100_000 {
            bank.accumulate(SimTime::from_secs(secs));
            if bank.tokens(low.id()).unwrap() >= 9.0 {
                crossed = Some(secs);
                break;
            }
        }
        let crossed = crossed.expect("Low never crossed the High level");
        let high = make_app(1, Priority::High, 2);
        bank.admit(&high, &view_at(SimTime::from_secs(crossed), &apps, &[]));
        let cands = bank.candidates(SimTime::from_secs(crossed));
        assert!(
            cands.contains(&low.id()) && cands.contains(&high.id()),
            "both must be candidates once Low degrades past the top weight"
        );
    }
}
