//! Queue-based round-robin scheduling, adapted from Coyote (paper §5.1).

use std::collections::{BTreeSet, VecDeque};

use nimblock_app::{Priority, TaskId};

use crate::{AppId, Reconfig, SchedView, Scheduler};

/// The Coyote-style queue-based round-robin scheduler.
///
/// Ready tasks from all pending applications are issued to *per-slot
/// priority queues*: each task goes to the queue of the slot with the
/// fewest waiting tasks, and within a queue tasks sort by priority level
/// (FIFO among equals). Each slot serves its own queue head; there is no
/// preemption and no cross-batch pipelining.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinScheduler {
    queues: Vec<VecDeque<(AppId, TaskId, Priority)>>,
    enqueued: BTreeSet<(AppId, TaskId)>,
}

impl RoundRobinScheduler {
    /// Creates the round-robin scheduler.
    pub fn new() -> Self {
        RoundRobinScheduler::default()
    }

    /// Returns the number of tasks currently waiting in slot queues.
    pub fn waiting_tasks(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn ensure_queues(&mut self, slot_count: usize) {
        if self.queues.len() != slot_count {
            self.queues.resize_with(slot_count, VecDeque::new);
        }
    }

    /// Issues every newly ready task to the slot with the fewest waiting
    /// tasks (a currently bound task counts as waiting, so free slots are
    /// preferred), keeping each queue sorted by priority (stable for equal
    /// priorities).
    fn issue_ready_tasks(&mut self, view: &SchedView<'_>) {
        for (app, runtime) in view.apps.iter() {
            for task in runtime.unplaced_ready_iter() {
                if !self.enqueued.insert((app, task)) {
                    continue;
                }
                let priority = runtime.priority();
                let needs = *runtime.spec().graph().task(task).resources();
                // Only queues of slots the task fits are eligible.
                let target = self
                    .queues
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| needs.fits_within(&view.slots[*i].resources))
                    .min_by_key(|(i, q)| {
                        let occupied = usize::from(view.slots[*i].bound.is_some());
                        (q.len() + occupied, *i)
                    })
                    .map(|(i, _)| i);
                let Some(target) = target else {
                    self.enqueued.remove(&(app, task));
                    continue; // fits no slot on this device
                };
                let queue = &mut self.queues[target];
                // Insert after the last entry of >= priority.
                let pos = queue
                    .iter()
                    .position(|&(_, _, p)| p < priority)
                    .unwrap_or(queue.len());
                queue.insert(pos, (app, task, priority));
            }
        }
    }
}

impl Scheduler for RoundRobinScheduler {
    fn name(&self) -> String {
        "RR".to_owned()
    }

    fn on_retire(&mut self, _view: &SchedView<'_>, app: AppId) {
        for queue in &mut self.queues {
            queue.retain(|&(a, _, _)| a != app);
        }
        self.enqueued.retain(|&(a, _)| a != app);
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        self.ensure_queues(view.slot_count());
        self.issue_ready_tasks(view);
        // Serve the lowest-indexed free slot whose queue has work.
        for binding in view.slots {
            if !binding.is_free() {
                continue;
            }
            let queue = &mut self.queues[binding.slot.index()];
            while let Some(&(app, task, _)) = queue.front() {
                let live = view
                    .app(app)
                    .is_some_and(|rt| rt.phase(task) == crate::TaskPhase::Unplaced);
                if live {
                    queue.pop_front();
                    self.enqueued.remove(&(app, task));
                    return Some(Reconfig {
                        app,
                        task,
                        slot: binding.slot,
                    });
                }
                queue.pop_front();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use nimblock_app::benchmarks;
    use nimblock_sim::SimTime;
    use nimblock_workload::{ArrivalEvent, EventSequence};

    #[test]
    fn all_apps_complete_under_round_robin() {
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::lenet(), 3, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::image_compression(), 2, Priority::High, SimTime::from_millis(50)),
            ArrivalEvent::new(benchmarks::rendering_3d(), 4, Priority::Medium, SimTime::from_millis(100)),
        ]);
        let report = Testbed::new(RoundRobinScheduler::new()).run(&events);
        assert_eq!(report.records().len(), 3);
    }

    #[test]
    fn priority_sorts_within_a_queue() {
        let mut rr = RoundRobinScheduler::new();
        rr.ensure_queues(1);
        let entries = [
            (AppId::new(0), TaskId::new(0), Priority::Low),
            (AppId::new(1), TaskId::new(0), Priority::High),
            (AppId::new(2), TaskId::new(0), Priority::Medium),
            (AppId::new(3), TaskId::new(0), Priority::High),
        ];
        for (app, task, priority) in entries {
            let queue = &mut rr.queues[0];
            let pos = queue
                .iter()
                .position(|&(_, _, p)| p < priority)
                .unwrap_or(queue.len());
            queue.insert(pos, (app, task, priority));
        }
        let order: Vec<u64> = rr.queues[0].iter().map(|&(a, _, _)| a.raw()).collect();
        // High (1, then 3 FIFO), then medium (2), then low (0).
        assert_eq!(order, vec![1, 3, 2, 0]);
    }
}
