//! First-come, first-served task scheduling (paper §5.1).

use std::collections::{BTreeSet, VecDeque};

use nimblock_app::TaskId;
use nimblock_obs::nb_debug;

use crate::scheduler::SchedMetrics;
use crate::{AppId, Reconfig, SchedView, Scheduler, TaskPhase};

/// The naive sharing scheduler: "all tasks that are ready to execute from
/// all applications are selected in the order that they arrived" (§5.1).
///
/// Tasks enter a single FIFO queue *when they become ready* (all
/// predecessors have finished the whole batch). A task that becomes ready
/// later — for example the next stage of a chain — queues behind every task
/// that was already waiting, which is what makes FCFS degrade under
/// congestion. Applications share the board and may execute parallel
/// branches simultaneously, but batches are bulk-processed, priorities are
/// ignored, and nothing is preempted.
#[derive(Debug, Clone, Default)]
pub struct FcfsScheduler {
    ready: VecDeque<(AppId, TaskId)>,
    enqueued: BTreeSet<(AppId, TaskId)>,
    metrics: SchedMetrics,
}

impl FcfsScheduler {
    /// Creates the FCFS scheduler.
    pub fn new() -> Self {
        FcfsScheduler::default()
    }

    /// Returns the number of ready tasks waiting for a slot.
    pub fn waiting_tasks(&self) -> usize {
        self.ready.len()
    }
}

impl Scheduler for FcfsScheduler {
    fn name(&self) -> String {
        "FCFS".to_owned()
    }

    fn on_retire(&mut self, _view: &SchedView<'_>, app: AppId) {
        self.ready.retain(|&(a, _)| a != app);
        self.enqueued.retain(|&(a, _)| a != app);
    }

    fn attach_metrics(&mut self, registry: &nimblock_obs::Registry) {
        self.metrics.register(registry);
    }

    fn next_reconfig(&mut self, view: &SchedView<'_>) -> Option<Reconfig> {
        self.metrics.decisions.inc();
        // Enqueue tasks that have just become ready. Tasks becoming ready
        // at the same scheduling point order by application age.
        for (app, runtime) in view.apps.iter() {
            for task in runtime.unplaced_ready_iter() {
                if self.enqueued.insert((app, task)) {
                    // Ready-queue growth is bounded by live tasks and
                    // amortized. nimblock: allow(hot-path-no-alloc)
                    self.ready.push_back((app, task));
                }
            }
        }
        self.metrics.ready_depth.set(self.ready.len() as i64);
        view.first_free_slot()?;
        while let Some(&(app, task)) = self.ready.front() {
            let placeable = view
                .app(app)
                .is_some_and(|rt| rt.phase(task) == TaskPhase::Unplaced);
            if placeable {
                // The head waits for a slot it fits; FCFS does not reorder.
                let slot = view.first_free_slot_fitting(app, task)?;
                self.ready.pop_front();
                self.enqueued.remove(&(app, task));
                self.metrics.directives.inc();
                self.metrics.ready_depth.add(-1);
                nb_debug!("sched.fcfs", "place {app} {task} -> {slot}");
                return Some(Reconfig { app, task, slot });
            }
            self.ready.pop_front();
            self.enqueued.remove(&(app, task));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Testbed;
    use nimblock_app::{benchmarks, Priority};
    use nimblock_sim::SimTime;
    use nimblock_workload::{ArrivalEvent, EventSequence};

    #[test]
    fn independent_apps_share_the_board() {
        // Two LeNets arriving together finish almost concurrently under
        // FCFS, unlike the serializing baseline.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::lenet(), 5, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 5, Priority::Low, SimTime::ZERO),
        ]);
        let report = Testbed::new(FcfsScheduler::new()).run(&events);
        let a = report.records()[0].response_time().as_secs_f64();
        let b = report.records()[1].response_time().as_secs_f64();
        assert!((a - b).abs() / a.max(b) < 0.5, "responses {a} vs {b} should overlap");
    }

    #[test]
    fn later_ready_stages_requeue_behind_waiting_tasks() {
        // Eleven single-priority apps saturate the ten slots; a chain's
        // second stage must requeue and wait rather than re-claiming a slot
        // immediately. All apps must still complete.
        let mut events = Vec::new();
        for i in 0..11 {
            events.push(ArrivalEvent::new(
                benchmarks::rendering_3d(),
                5,
                Priority::Low,
                SimTime::from_millis(i * 10),
            ));
        }
        let report = Testbed::new(FcfsScheduler::new()).run(&EventSequence::new(events));
        assert_eq!(report.records().len(), 11);
    }

    #[test]
    fn priority_is_ignored() {
        // A high-priority late arrival does not overtake earlier tasks that
        // are already ready: arrival order rules.
        let events = EventSequence::new(vec![
            ArrivalEvent::new(benchmarks::digit_recognition(), 2, Priority::Low, SimTime::ZERO),
            ArrivalEvent::new(benchmarks::lenet(), 2, Priority::High, SimTime::from_millis(10)),
        ]);
        let report = Testbed::new(FcfsScheduler::new()).run(&events);
        // Both still complete (board has ten slots, so LeNet is not starved).
        assert_eq!(report.records().len(), 2);
    }
}
